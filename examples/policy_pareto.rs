//! Charts the latency–energy policy space for the paper's two cluster
//! configurations: the 10-SBC MicroFaaS prototype and a 12-VM
//! conventional cluster, both under sparse open-loop arrivals.
//!
//! ```bash
//! cargo run --release --example policy_pareto
//! ```
//!
//! The SBC cluster gets the full 7 placements × 5 governors sweep and a
//! Pareto front; the VM cluster — no per-node power gating, a 60 W host
//! floor — only distinguishes whether VMs reboot between jobs, which is
//! the point: the policy space the paper's hardware opens up simply
//! does not exist on the conventional side. See docs/SCHEDULING.md.

use microfaas::experiment::policy_sweep;
use microfaas::openloop::{run_open_loop_conventional, ArrivalProcess, OpenLoopConfig};
use microfaas_sched::GovernorKind;
use microfaas_sim::SimDuration;

const RATE: f64 = 0.1;
const DURATION_SECS: u64 = 1200;
const SEED: u64 = 1;

fn main() {
    // --- The 10-SBC cluster: the full placement x governor space. ---
    println!("MicroFaaS (10 SBCs), {RATE} jobs/s for {DURATION_SECS} s, seed {SEED}:\n");
    println!(
        "{:<20} {:<15} {:>9} {:>8} {:>8} {:>7}",
        "placement", "governor", "mean lat", "J/func", "cycles", "pareto"
    );
    let points = policy_sweep(RATE, SimDuration::from_secs(DURATION_SECS), 10, SEED);
    for p in &points {
        println!(
            "{:<20} {:<15} {:>8.2}s {:>8.2} {:>8} {:>7}",
            p.placement.label(),
            p.governor.label(),
            p.mean_latency_s,
            p.joules_per_function,
            p.power_cycles,
            if p.pareto { "*" } else { "" }
        );
    }
    println!("\nlatency-energy Pareto front:");
    for p in points.iter().filter(|p| p.pareto) {
        println!(
            "  {} / {} — {:.2} s at {:.2} J/func",
            p.placement.label(),
            p.governor.label(),
            p.mean_latency_s,
            p.joules_per_function
        );
    }

    // --- The 12-VM conventional cluster has no knobs to turn. ---
    println!(
        "\nConventional (12 VMs), same load — governors only control the\n\
         between-jobs VM reboot; the 60 W host floor swamps everything:\n"
    );
    println!(
        "{:<15} {:>9} {:>9} {:>8}",
        "governor", "mean lat", "watts", "J/func"
    );
    for governor in GovernorKind::ALL {
        let mut config =
            OpenLoopConfig::paper_arrangement(1, SimDuration::from_secs(DURATION_SECS), SEED);
        config.arrival = ArrivalProcess::Poisson { per_second: RATE };
        config.governor = governor;
        let run = run_open_loop_conventional(&config, 12);
        println!(
            "{:<15} {:>8.2}s {:>9.2} {:>8.2}",
            governor.label(),
            run.mean_latency_s,
            run.mean_power_w,
            run.joules_per_function
        );
    }
    println!(
        "\nthe best VM point burns an order of magnitude more energy per\n\
         function than the worst SBC point — the Pareto frontier lives\n\
         entirely on the power-gated cluster."
    );
}
