//! Capacity planning with the TCO model (paper §III-c and Table II):
//! size a MicroFaaS deployment for a target concurrency and compare its
//! 5-year cost against the conventional rack it replaces.
//!
//! ```bash
//! cargo run --release --example capacity_planning
//! ```

use microfaas_tco::{savings_percent, ClusterSpec, Conditions, CostModel};

fn main() {
    let model = CostModel::benchmark_datacenter();

    println!("5-year single-rack comparison (paper Table II):\n");
    for (label, conditions) in [
        ("ideal (100% util, 100% online)", Conditions::ideal()),
        ("realistic (50% util, 95% online)", Conditions::realistic()),
    ] {
        let conv = model.evaluate(&ClusterSpec::conventional_rack(), conditions);
        let micro = model.evaluate(&ClusterSpec::microfaas_rack(), conditions);
        println!("{label}:");
        println!("  {conv}");
        println!("  {micro}");
        println!("  savings: {:.1}%\n", savings_percent(&conv, &micro));
    }

    // The §III-c pitch: MicroFaaS cost scales *linearly* with capacity,
    // so a provider can quote a tight per-node cost for any target size.
    println!("scaling a MicroFaaS deployment (realistic conditions):");
    println!(
        "{:>10} {:>10} {:>14} {:>16}",
        "SBCs", "switches", "5-year cost", "$ per node"
    );
    for servers_replaced in [10u64, 41, 100, 500] {
        let spec = ClusterSpec::microfaas_sized(servers_replaced, 989.0 / 41.0);
        let cost = model.evaluate(&spec, Conditions::realistic());
        println!(
            "{:>10} {:>10} {:>13.0}$ {:>15.2}$",
            spec.node_count,
            spec.switch_count(),
            cost.total(),
            cost.total() / spec.node_count as f64
        );
    }
    println!("\nper-node cost stays flat: the tightly-bounded estimate of §III-c.");
}
