//! Quickstart: stand up both clusters, run a scaled-down version of the
//! paper's evaluation, and print the headline comparison.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use microfaas::config::WorkloadMix;
use microfaas::conventional::{run_conventional, ConventionalConfig};
use microfaas::micro::{run_microfaas, MicroFaasConfig};

fn main() {
    // 50 invocations of each of the 17 Table-I functions.
    let mix = WorkloadMix::quick();

    println!("Simulating the MicroFaaS cluster (10 BeagleBone Black SBCs)...");
    let micro = run_microfaas(&MicroFaasConfig::paper_prototype(mix.clone(), 42));
    println!("  {micro}");

    println!("Simulating the conventional cluster (6 microVMs on one rack server)...");
    let conventional = run_conventional(&ConventionalConfig::paper_baseline(mix, 42));
    println!("  {conventional}");

    let micro_jpf = micro.joules_per_function().expect("jobs completed");
    let conv_jpf = conventional.joules_per_function().expect("jobs completed");
    println!();
    println!("energy efficiency:");
    println!("  MicroFaaS     {micro_jpf:>6.2} J/function   (paper: 5.7)");
    println!("  Conventional  {conv_jpf:>6.2} J/function   (paper: 32.0)");
    println!(
        "  -> MicroFaaS is {:.1}x more energy-efficient (paper: 5.6x)",
        conv_jpf / micro_jpf
    );
}
