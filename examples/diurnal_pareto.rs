//! The per-regime winner table: runs the standard five-scenario traffic
//! suite (steady / bursty / diurnal / flash-crowd / heavy-tail) through
//! the full placement × governor cross product and names each regime's
//! energy-delay-product winner.
//!
//! ```bash
//! cargo run --release --example diurnal_pareto
//! ```
//!
//! The point of the exercise: the ~23 s standby-vs-reboot break-even in
//! docs/SCHEDULING.md is a *property of steady Poisson arrivals*, not
//! of the hardware. Change the traffic shape and the winning policy
//! moves — a diurnal trough stretches idle gaps past the break-even
//! while the peak compresses them, and a flash crowd rewards governors
//! that can ride the spike without paying a boot per job. This is the
//! same table the `scenarios` CLI subcommand prints; see
//! docs/WORKLOADS.md for the worked walk-through.

use microfaas::arrivals::Scenario;
use microfaas::experiment::scenario_sweep;
use microfaas_sim::SimDuration;

const DURATION_SECS: u64 = 1200;
const WORKERS: usize = 10;
const SEED: u64 = 1;

fn main() {
    let suite = Scenario::standard_suite();
    println!(
        "Per-regime EDP winners: {} regimes x 24 policy pairs, {WORKERS} SBCs,\n\
         {DURATION_SECS} s per run, seed {SEED}.\n",
        suite.len()
    );

    let outcomes = scenario_sweep(&suite, SimDuration::from_secs(DURATION_SECS), WORKERS, SEED);

    println!(
        "{:<12} {:<13} {:<20} {:<15} {:>9} {:>8} {:>8} {:>9}",
        "regime", "arrivals", "placement", "governor", "mean lat", "J/func", "front", "worst SLO"
    );
    for outcome in &outcomes {
        let p = outcome.winning_point();
        let front = outcome.points.iter().filter(|p| p.pareto).count();
        let attainment = outcome.slo_attainment[outcome.winner];
        println!(
            "{:<12} {:<13} {:<20} {:<15} {:>8.2}s {:>8.2} {:>8} {:>9}",
            outcome.scenario.name,
            outcome.scenario.arrival.label(),
            p.placement.label(),
            p.governor.label(),
            p.mean_latency_s,
            p.joules_per_function,
            front,
            if attainment.is_nan() {
                "-".to_string()
            } else {
                format!("{:.1}%", attainment * 100.0)
            }
        );
    }

    println!("\nwinner = lowest energy-delay product (mean latency x J/function)");
    println!("within each regime; `front` counts that regime's Pareto points.");
    println!("\nEvery number above is deterministic: rerun this example (or the");
    println!("`scenarios` subcommand, at any --jobs count) and the table is");
    println!("byte-identical. docs/WORKLOADS.md walks through why the winners");
    println!("differ regime to regime.");
}
