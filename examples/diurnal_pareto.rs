//! The per-regime winner table: runs the standard five-scenario traffic
//! suite (steady / bursty / diurnal / flash-crowd / heavy-tail) through
//! the full placement × governor cross product — once without and once
//! with the content-addressed result cache — and names each regime's
//! energy-delay-product winner under both configurations.
//!
//! ```bash
//! cargo run --release --example diurnal_pareto
//! ```
//!
//! The point of the exercise: the ~23 s standby-vs-reboot break-even in
//! docs/SCHEDULING.md is a *property of steady Poisson arrivals*, not
//! of the hardware. Change the traffic shape and the winning policy
//! moves — a diurnal trough stretches idle gaps past the break-even
//! while the peak compresses them, and a flash crowd rewards governors
//! that can ride the spike without paying a boot per job. The result
//! cache (docs/CACHING.md) warps the same trade-off a second time: a
//! hit completes with zero boot and zero execution energy, so regimes
//! with repetitive traffic can flip their winner once caching is on.
//! This is the same table the `scenarios` CLI subcommand prints with
//! and without `--cache`; see docs/WORKLOADS.md for the worked
//! walk-through.

use microfaas::arrivals::Scenario;
use microfaas::cache::{CacheConfig, DEFAULT_CACHE_SPEC};
use microfaas::experiment::{scenario_sweep, scenario_sweep_cached_jobs};
use microfaas_sim::{Jobs, SimDuration};

const DURATION_SECS: u64 = 1200;
const WORKERS: usize = 10;
const SEED: u64 = 1;

fn main() {
    let suite = Scenario::standard_suite();
    let duration = SimDuration::from_secs(DURATION_SECS);
    println!(
        "Per-regime EDP winners: {} regimes x 35 policy pairs, {WORKERS} SBCs,\n\
         {DURATION_SECS} s per run, seed {SEED}, cache off vs {DEFAULT_CACHE_SPEC}.\n",
        suite.len()
    );

    let plain = scenario_sweep(&suite, duration, WORKERS, SEED);
    let cache = CacheConfig::parse(DEFAULT_CACHE_SPEC).expect("valid default spec");
    let cached = scenario_sweep_cached_jobs(&suite, duration, WORKERS, SEED, &cache, Jobs::auto());

    println!(
        "{:<12} {:<13} {:<20} {:<15} {:>9} {:>8} {:>8} {:>9}",
        "regime", "arrivals", "placement", "governor", "mean lat", "J/func", "front", "worst SLO"
    );
    for outcome in &plain {
        let p = outcome.winning_point();
        let front = outcome.points.iter().filter(|p| p.pareto).count();
        let attainment = outcome.slo_attainment[outcome.winner];
        println!(
            "{:<12} {:<13} {:<20} {:<15} {:>8.2}s {:>8.2} {:>8} {:>9}",
            outcome.scenario.name,
            outcome.scenario.arrival.label(),
            p.placement.label(),
            p.governor.label(),
            p.mean_latency_s,
            p.joules_per_function,
            front,
            if attainment.is_nan() {
                "-".to_string()
            } else {
                format!("{:.1}%", attainment * 100.0)
            }
        );
    }

    println!("\nSame suite with the result cache on ({DEFAULT_CACHE_SPEC}):\n");
    println!(
        "{:<12} {:<20} {:<15} {:>9} {:>8} {:>7} {:>9} {:>6}",
        "regime", "placement", "governor", "mean lat", "J/func", "hit%", "J saved", "flip?"
    );
    let mut flips = 0;
    for (before, after) in plain.iter().zip(&cached) {
        let old = before.winning_point();
        let new = after.winning_point();
        let flipped = old.placement != new.placement || old.governor != new.governor;
        flips += usize::from(flipped);
        println!(
            "{:<12} {:<20} {:<15} {:>8.2}s {:>8.2} {:>6.1}% {:>8.1}J {:>6}",
            after.scenario.name,
            new.placement.label(),
            new.governor.label(),
            new.mean_latency_s,
            new.joules_per_function,
            new.hit_rate * 100.0,
            new.joules_saved,
            if flipped { "  *" } else { "" }
        );
    }

    println!("\nwinner = lowest energy-delay product (mean latency x J/function)");
    println!(
        "within each regime; {flips} of {} regimes changed their winner once",
        plain.len()
    );
    println!("the zero-energy fast path started absorbing repeat invocations.");
    println!("\nEvery number above is deterministic: rerun this example (or the");
    println!("`scenarios` subcommand, at any --jobs count, with or without");
    println!("--cache) and the tables are byte-identical. docs/WORKLOADS.md and");
    println!("docs/CACHING.md walk through why the winners differ.");
}
