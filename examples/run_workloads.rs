//! Runs every Table-I workload function *for real* — the actual
//! from-scratch SHA-256 / MD5 / AES-128 / DEFLATE / regex / matmul
//! kernels and the in-memory Redis/SQL/object-store/queue services —
//! and prints what each returned.
//!
//! ```bash
//! cargo run --release --example run_workloads
//! ```

use std::error::Error;
use std::time::Instant;

use microfaas_sim::Rng;
use microfaas_workloads::suite::{run_function, FunctionId, ServiceBackends};

fn main() -> Result<(), Box<dyn Error>> {
    let mut backends = ServiceBackends::seeded();
    let mut rng = Rng::new(7);

    println!("{:<13} {:>10}  result", "function", "native");
    for function in FunctionId::ALL {
        let start = Instant::now();
        let output = run_function(function, 1, &mut rng, &mut backends)?;
        println!(
            "{:<13} {:>8.1}ms  {}",
            function.name(),
            start.elapsed().as_secs_f64() * 1e3,
            output.summary
        );
    }

    println!("\nbacking-service state after the run:");
    println!("  kv store keys:      {}", backends.kv.len());
    println!(
        "  sql rows:           {}",
        backends.sql.row_count("records").unwrap_or(0)
    );
    println!("  object-store bytes: {}", backends.cos.total_bytes());
    Ok(())
}
