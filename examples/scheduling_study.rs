//! Compares the orchestration plane's scheduling policies under
//! arrival-driven load, and visualizes a small run as an ASCII timeline.
//!
//! ```bash
//! cargo run --release --example scheduling_study
//! ```

use microfaas::config::{Jitter, WorkloadMix};
use microfaas::micro::{run_microfaas, MicroFaasConfig};
use microfaas::openloop::{run_open_loop, ArrivalProcess, OpenLoopConfig, SchedulerPolicy};
use microfaas::timeline::Timeline;
use microfaas_sched::GovernorKind;
use microfaas_sim::SimDuration;
use microfaas_workloads::FunctionId;

fn main() {
    // --- Part 1: placement policies under 2 jobs/s of Poisson arrivals. ---
    println!("placement policies at 2.0 jobs/s over 10 minutes:\n");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>13} {:>13}",
        "policy", "mean lat", "p95 lat", "J/func", "mean powered", "power cycles"
    );
    for (name, policy) in [
        ("random", SchedulerPolicy::RandomStatic),
        ("least-loaded", SchedulerPolicy::LeastLoaded),
        ("jsq", SchedulerPolicy::JoinShortestQueue),
        ("warm-first", SchedulerPolicy::WarmFirst),
        ("power-aware", SchedulerPolicy::PowerAware),
    ] {
        let run = run_open_loop(&OpenLoopConfig {
            workers: 10,
            seed: 2022,
            duration: SimDuration::from_secs(600),
            arrival: ArrivalProcess::Poisson { per_second: 2.0 },
            scheduler: policy,
            governor: GovernorKind::RebootPerJob,
            jitter: Jitter::default_run_to_run(),
            functions: FunctionId::ALL.to_vec(),
            popularity: microfaas::Popularity::Uniform,
            tenants: Vec::new(),
            faults: microfaas::FaultsConfig::none(),
            cache: microfaas::cache::CacheConfig::Off,
        });
        println!(
            "{name:<14} {:>8.2}s {:>8.2}s {:>9.2} {:>13.2} {:>13}",
            run.mean_latency_s,
            run.p95_latency_s,
            run.joules_per_function,
            run.mean_powered_on,
            run.power_cycles
        );
    }
    println!(
        "\nleast-loaded/jsq buy latency; power-aware packing buys fewer\n\
         cold boots; warm-first collapses at this load (it funnels every\n\
         job to the one warm node rather than pay a 1.51 s boot); energy\n\
         per function barely moves — power gating already makes the\n\
         cluster energy-proportional regardless of placement. Power\n\
         *governors* (keep-alive, warm-pool, always-on) do move energy:\n\
         see examples/policy_pareto.rs and docs/SCHEDULING.md."
    );

    // --- Part 2: what a saturated run looks like, worker by worker. ---
    println!("\nworker timeline of a small saturated run ('#' executing):\n");
    let run = run_microfaas(&MicroFaasConfig::paper_prototype(
        WorkloadMix::new(FunctionId::ALL.to_vec(), 8),
        7,
    ));
    let timeline = Timeline::from_run(&run);
    print!("{}", timeline.render(72));
    if let Some(gap) = timeline.mean_gap() {
        println!("\nthe gaps between jobs are the clean-state reboot: mean {gap}");
    }
}
