//! The paper's §V/§VI what-ifs, explored end to end: how close would
//! MicroFaaS get to the conventional cluster's per-function latency with
//! a Gigabit NIC and a crypto accelerator — and what would it do to the
//! energy story?
//!
//! ```bash
//! cargo run --release --example whatif_accelerators
//! ```

use microfaas::config::WorkloadMix;
use microfaas::conventional::{run_conventional, ConventionalConfig};
use microfaas::micro::{run_microfaas, MicroFaasConfig};
use microfaas_workloads::FunctionId;

fn main() {
    let mix = WorkloadMix::new(FunctionId::ALL.to_vec(), 60);
    let seed = 99;

    let stock = run_microfaas(&MicroFaasConfig::paper_prototype(mix.clone(), seed));

    let mut upgraded_config = MicroFaasConfig::paper_prototype(mix.clone(), seed);
    upgraded_config.worker_nic_bits_per_sec = 1_000_000_000; // GigE
    upgraded_config.crypto_exec_scale = 0.35; // crypto accelerator
    let upgraded = run_microfaas(&upgraded_config);

    let conventional = run_conventional(&ConventionalConfig::paper_baseline(mix, seed));

    println!("{:<28} {:>12} {:>10}", "cluster", "func/min", "J/func");
    for (label, run) in [
        ("MicroFaaS (stock)", &stock),
        ("MicroFaaS (GigE + crypto)", &upgraded),
        ("Conventional (6 VMs)", &conventional),
    ] {
        println!(
            "{label:<28} {:>12.1} {:>10.2}",
            run.functions_per_minute(),
            run.joules_per_function().unwrap_or(f64::NAN)
        );
    }

    // Per-function wins after the upgrades.
    let upgraded_stats = upgraded.per_function();
    let conv_stats = conventional.per_function();
    let faster_after: Vec<&str> = FunctionId::ALL
        .iter()
        .filter(|f| upgraded_stats[f].mean_total_ms() < conv_stats[f].mean_total_ms())
        .map(|f| f.name())
        .collect();
    println!(
        "\nfunctions faster on MicroFaaS after upgrades: {} of 17 (stock: 4)",
        faster_after.len()
    );
    println!("  {faster_after:?}");
    println!(
        "\nthe paper's §VI prediction: accelerators \"mitigate such performance\n\
         differences, albeit at the price of increased component costs or energy use\"."
    );
}
