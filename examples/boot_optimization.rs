//! Walks the worker-OS boot-time optimization pipeline (paper Fig. 1),
//! showing how each stage contributes and what a partially optimized OS
//! would cost the cluster in throughput.
//!
//! ```bash
//! cargo run --release --example boot_optimization
//! ```

use microfaas_hw::boot::{BootPlatform, BootProfile};
use microfaas_workloads::calibration::{suite_mean_total, WorkerPlatform};

fn main() {
    println!("Boot-time pipeline on the BeagleBone Black (ARM):\n");
    let mut cumulative_saved = 0.0;
    let baseline = BootProfile::baseline_time(BootPlatform::Arm)
        .real
        .as_secs_f64();
    let mut previous = baseline;
    for (stage, time) in BootProfile::progression(BootPlatform::Arm) {
        let real = time.real.as_secs_f64();
        if let Some(stage) = stage {
            let saved = previous - real;
            cumulative_saved += saved;
            println!("{stage:<48} saved {saved:>5.2}s -> boot {real:>5.2}s");
        } else {
            println!(
                "{:<48} {:>18}",
                "baseline (stock distribution)",
                format!("boot {real:.2}s")
            );
        }
        previous = real;
    }
    println!(
        "\ntotal saved: {cumulative_saved:.2}s of {baseline:.2}s ({:.0}%)",
        cumulative_saved / baseline * 100.0
    );

    // What the boot work buys the cluster: since workers reboot between
    // jobs, boot time is paid on *every* invocation.
    let mean_job = suite_mean_total(WorkerPlatform::ArmSbc).as_secs_f64();
    let optimized_boot = BootProfile::fully_optimized(BootPlatform::Arm)
        .boot_time()
        .real
        .as_secs_f64();
    let optimized_rate = 10.0 * 60.0 / (mean_job + optimized_boot);
    let stock_rate = 10.0 * 60.0 / (mean_job + baseline);
    println!("\nbecause every job pays one reboot:");
    println!("  10-SBC throughput with the stock OS:     {stock_rate:>6.1} func/min");
    println!("  10-SBC throughput with the optimized OS: {optimized_rate:>6.1} func/min");
    println!(
        "  -> the Fig. 1 engineering is worth {:.1}x in throughput",
        optimized_rate / stock_rate
    );
}
