//! Drives the platform's HTTP front door: deploy functions, list them,
//! and invoke a few over parsed HTTP/1.1 — the request path a real
//! client of the platform would exercise.
//!
//! ```bash
//! cargo run --release --example http_gateway
//! ```

use std::error::Error;

use microfaas::gateway::Gateway;
use microfaas::registry::{FunctionRegistry, FunctionSpec};
use microfaas_sim::SimDuration;
use microfaas_workloads::FunctionId;

fn main() -> Result<(), Box<dyn Error>> {
    // Deploy the paper suite plus one custom function with a timeout.
    let mut registry = FunctionRegistry::paper_suite();
    registry.deploy(
        "log-archiver",
        FunctionSpec {
            handler: FunctionId::Decompress,
            memory_mb: 256,
            timeout: Some(SimDuration::from_secs(30)),
        },
    )?;
    let mut gateway = Gateway::new(registry, 2022);

    // Deploy a user-authored handler in the platform's scripting
    // language (the MicroPython stand-in), then invoke it like any other.
    let script = r#"
        let payload = "order-7431";
        let fingerprint = sha256_hex(payload);
        return "receipt:" + fingerprint;
    "#;
    let deploy = format!(
        "POST /deploy/receipt-maker HTTP/1.1\r\ncontent-length: {}\r\n\r\n{script}",
        script.len()
    );

    let requests: &[&str] = &[
        "GET /healthz HTTP/1.1\r\n\r\n",
        "GET /functions HTTP/1.1\r\n\r\n",
        "POST /invoke/RegExSearch HTTP/1.1\r\n\r\n",
        "POST /invoke/RedisInsert HTTP/1.1\r\n\r\n",
        "POST /invoke/log-archiver HTTP/1.1\r\n\r\n",
        &deploy,
        "POST /invoke/receipt-maker HTTP/1.1\r\n\r\n",
        "POST /invoke/NoSuchFunction HTTP/1.1\r\n\r\n",
    ];
    for raw in requests {
        let request_line = raw.lines().next().unwrap_or_default();
        let response = gateway.handle(raw.as_bytes());
        let body = String::from_utf8_lossy(&response.body);
        let preview: String = body
            .lines()
            .next()
            .unwrap_or_default()
            .chars()
            .take(60)
            .collect();
        println!("{request_line:<44} -> {} {preview}", response.status);
    }
    println!("\nserved {} successful invocations", gateway.invocations());

    // The gateway meters itself; scrape the Prometheus exposition.
    let scrape = gateway.handle(b"GET /metrics HTTP/1.1\r\n\r\n");
    println!("\nGET /metrics ->");
    for line in String::from_utf8_lossy(&scrape.body)
        .lines()
        .filter(|l| !l.starts_with('#'))
    {
        println!("  {line}");
    }
    Ok(())
}
