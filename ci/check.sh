#!/usr/bin/env bash
# The full pre-merge gate. Everything here runs offline (the two
# external dev-dependencies are vendored shims — see README "Offline
# workflow").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "All checks passed."
