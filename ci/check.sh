#!/usr/bin/env bash
# The full pre-merge gate. Everything here runs offline (the two
# external dev-dependencies are vendored shims — see README "Offline
# workflow").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> fault-injection smoke run (examples/faults_crash.json)"
out="$(cargo run --release -q -p microfaas-cli -- faults \
    --plan examples/faults_crash.json --invocations 2 --seed 7)"
echo "$out" | grep -q "faults injected" || {
    echo "faults subcommand printed no fault summary"; exit 1; }
echo "$out" | grep -q "faults injected:   0" && {
    echo "checked-in plan injected no faults"; exit 1; }
echo "$out" | grep -q "accounted:         34 of 34 submitted" || {
    echo "faulted run lost jobs"; exit 1; }

echo "==> every docs/*.md handbook must be doctested"
for doc in docs/*.md; do
    grep -q "include_str!(\"../../../$doc\")" crates/cli/src/lib.rs || {
        echo "$doc has no doctest hook in crates/cli/src/lib.rs"; exit 1; }
done
cargo test -q --doc -p microfaas-cli

echo "==> event-queue differential equivalence (tests/queue_equiv.rs)"
cargo test -q -p microfaas-sim --test queue_equiv

echo "==> event-queue throughput floor (cancel mix >= 4.2 Melem/s pre-rewrite baseline)"
bench_out="$(cargo bench -p microfaas-bench --bench core_scale 2>/dev/null)"
echo "$bench_out"
rate="$(echo "$bench_out" | grep "wheel_cancel_timeout_mix/10000 " \
    | sed -n 's/.*(\([0-9.]*\) Melem\/s).*/\1/p')"
[ -n "$rate" ] || { echo "core_scale bench printed no cancel-mix rate"; exit 1; }
awk -v r="$rate" 'BEGIN { exit !(r >= 4.2) }' || {
    echo "cancel-mix throughput $rate Melem/s fell below the 4.2 Melem/s floor"; exit 1; }

echo "==> every BENCH_*.json matches the benchmark-record schema"
python3 -c "
import glob, json
files = sorted(glob.glob('BENCH_*.json'))
assert files, 'no BENCH_*.json records found'
for path in files:
    with open(path) as f:
        record = json.load(f)
    for key in ('bench', 'command', 'date', 'host'):
        assert key in record, f'{path} missing required key {key!r}'
    expected = path[len('BENCH_'):-len('.json')]
    assert record['bench'] == expected, (path, record['bench'])
    assert record['command'].startswith('cargo '), (path, record['command'])
print('validated:', ', '.join(files))
"

echo "==> BENCH_core_scale.json is valid and names the core_scale bench"
python3 -c "
import json
with open('BENCH_core_scale.json') as f:
    record = json.load(f)
assert record['bench'] == 'core_scale', record['bench']
assert record['ten_million_job_recipe']['completed'] == 10_000_000
"

echo "==> result-cache throughput floor (hot-hit lookups >= 20 Melem/s)"
cache_bench_out="$(cargo bench -p microfaas-bench --bench result_cache 2>/dev/null)"
echo "$cache_bench_out"
cache_rate="$(echo "$cache_bench_out" | grep "cache_lookup/hot_hit/4096 " \
    | sed -n 's/.*(\([0-9.]*\) Melem\/s).*/\1/p')"
[ -n "$cache_rate" ] || { echo "result_cache bench printed no hot-hit rate"; exit 1; }
awk -v r="$cache_rate" 'BEGIN { exit !(r >= 20) }' || {
    echo "cache hot-hit throughput $cache_rate Melem/s fell below the 20 Melem/s floor"; exit 1; }
echo "$cache_bench_out" | grep -q "flash_crowd_zipf: cache off vs" || {
    echo "result_cache bench printed no flash-crowd comparison"; exit 1; }

echo "==> serial/parallel determinism parity (tests/parallel_exec.rs)"
cargo test -q --test parallel_exec

echo "==> parallel sweep smoke: --jobs 2 CSV must be byte-identical to --jobs 1"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release -q -p microfaas-cli -- sweep \
    --max-vms 4 --invocations 2 --seed 7 --jobs 1 --csv "$tmpdir/serial.csv"
cargo run --release -q -p microfaas-cli -- sweep \
    --max-vms 4 --invocations 2 --seed 7 --jobs 2 --csv "$tmpdir/parallel.csv"
cmp "$tmpdir/serial.csv" "$tmpdir/parallel.csv" || {
    echo "parallel sweep diverged from serial"; exit 1; }

echo "==> policy sweep smoke: sched --jobs 2 Pareto CSV must be byte-identical to --jobs 1"
cargo run --release -q -p microfaas-cli -- sched \
    --rate 0.5 --duration-secs 120 --workers 4 --seed 7 \
    --jobs 1 --csv "$tmpdir/sched_serial.csv"
cargo run --release -q -p microfaas-cli -- sched \
    --rate 0.5 --duration-secs 120 --workers 4 --seed 7 \
    --jobs 2 --csv "$tmpdir/sched_parallel.csv"
cmp "$tmpdir/sched_serial.csv" "$tmpdir/sched_parallel.csv" || {
    echo "parallel policy sweep diverged from serial"; exit 1; }
grep -q ",1$" "$tmpdir/sched_serial.csv" || {
    echo "policy sweep flagged no Pareto-front points"; exit 1; }

echo "==> scenarios smoke: per-regime winners, --jobs 2 CSV byte-identical to --jobs 1"
cat > "$tmpdir/scenarios.json" <<'EOF'
{"scenarios": [
  {"name": "spiky", "arrivals": "flash:0.2,60,60,2"},
  {"name": "skewed", "arrivals": "poisson:0.5", "popularity": "zipf:1.1",
   "tenants": [{"name": "paid", "weight": 1.0, "slo_latency_s": 5.0}]}
]}
EOF
cargo run --release -q -p microfaas-cli -- scenarios \
    --spec "$tmpdir/scenarios.json" --duration-secs 180 --workers 4 --seed 7 \
    --jobs 1 --csv "$tmpdir/scenarios_serial.csv"
cargo run --release -q -p microfaas-cli -- scenarios \
    --spec "$tmpdir/scenarios.json" --duration-secs 180 --workers 4 --seed 7 \
    --jobs 2 --csv "$tmpdir/scenarios_parallel.csv"
cmp "$tmpdir/scenarios_serial.csv" "$tmpdir/scenarios_parallel.csv" || {
    echo "parallel scenario sweep diverged from serial"; exit 1; }
[ "$(grep -c ",1$" "$tmpdir/scenarios_serial.csv")" -eq 2 ] || {
    echo "scenario sweep did not name exactly one winner per regime"; exit 1; }
grep -q "^skewed," "$tmpdir/scenarios_serial.csv" || {
    echo "scenario CSV missing a spec-file regime"; exit 1; }

echo "==> cached scenarios smoke: --cache lru:1024, --jobs 2 CSV byte-identical to --jobs 1"
cargo run --release -q -p microfaas-cli -- scenarios \
    --spec "$tmpdir/scenarios.json" --duration-secs 180 --workers 4 --seed 7 \
    --cache lru:1024 --jobs 1 --csv "$tmpdir/scenarios_cached_serial.csv"
cargo run --release -q -p microfaas-cli -- scenarios \
    --spec "$tmpdir/scenarios.json" --duration-secs 180 --workers 4 --seed 7 \
    --cache lru:1024 --jobs 2 --csv "$tmpdir/scenarios_cached_parallel.csv"
cmp "$tmpdir/scenarios_cached_serial.csv" "$tmpdir/scenarios_cached_parallel.csv" || {
    echo "cached parallel scenario sweep diverged from serial"; exit 1; }
awk -F, 'NR > 1 && $11 > 0 { hits++ } END { exit !(hits > 0) }' \
    "$tmpdir/scenarios_cached_serial.csv" || {
    echo "cached scenario sweep recorded no cache hits"; exit 1; }

echo "==> energy conservation property tests (tests/energy_conservation.rs)"
cargo test -q -p microfaas --test energy_conservation

echo "==> energy smoke: --breakdown conserves, --jobs 2 ledger CSV byte-identical to --jobs 1"
out="$(cargo run --release -q -p microfaas-cli -- energy \
    --rate 2 --duration-secs 120 --workers 4 --seed 7 --breakdown)"
echo "$out" | grep -q "conservation:     attributed + idle == total" || {
    echo "energy run failed its conservation cross-check"; exit 1; }
echo "$out" | grep -q "queue_j" || {
    echo "energy --breakdown printed no five-phase table"; exit 1; }
cargo run --release -q -p microfaas-cli -- energy \
    --rate 2 --duration-secs 120 --workers 4 --seed 7 \
    --budget 0.5,burst=5,action=shed --idle usage-weighted \
    --jobs 1 --csv "$tmpdir/energy_serial.csv"
cargo run --release -q -p microfaas-cli -- energy \
    --rate 2 --duration-secs 120 --workers 4 --seed 7 \
    --budget 0.5,burst=5,action=shed --idle usage-weighted \
    --jobs 2 --csv "$tmpdir/energy_parallel.csv"
cmp "$tmpdir/energy_serial.csv" "$tmpdir/energy_parallel.csv" || {
    echo "parallel energy ledger diverged from serial"; exit 1; }
grep -q ",(idle)," "$tmpdir/energy_serial.csv" || {
    echo "energy ledger CSV missing the idle remainder row"; exit 1; }

echo "==> monitor smoke: inertness cross-check, burn-rate alerts, --jobs 2 CSV byte-identical to --jobs 1"
monitor_flags=(--arrivals flash:0.2,120,60,40 --duration-secs 600 --workers 12
    --governor keep-alive --tenants paid:1:2.5,free:4:30 --seed 2022)
out="$(cargo run --release -q -p microfaas-cli -- monitor \
    "${monitor_flags[@]}" --jobs 1 --csv "$tmpdir/monitor_serial.csv")"
echo "$out" | grep -q "verified inert" || {
    echo "monitor skipped its telemetry-inertness cross-check"; exit 1; }
echo "$out" | grep -q "burn-rate" || {
    echo "flash crowd raised no burn-rate alert"; exit 1; }
cargo run --release -q -p microfaas-cli -- monitor \
    "${monitor_flags[@]}" --jobs 2 --csv "$tmpdir/monitor_parallel.csv" > /dev/null
cmp "$tmpdir/monitor_serial.csv" "$tmpdir/monitor_parallel.csv" || {
    echo "monitored time series diverged across --jobs"; exit 1; }

echo "==> BENCH_telemetry.json records the <= 10% monitored-run budget"
python3 -c "
import json
with open('BENCH_telemetry.json') as f:
    record = json.load(f)
assert record['bench'] == 'telemetry', record['bench']
delta = record['capacity_recipe_10m']['overhead_pct']
assert delta <= 10.0, f'recorded telemetry overhead {delta}% blows the 10% budget'
"

echo "==> analyze smoke: span derivation, phase-sum check, Perfetto round-trip"
out="$(cargo run --release -q -p microfaas-cli -- analyze \
    --invocations 2 --seed 7 --perfetto "$tmpdir/spans.json")"
echo "$out" | grep -q "phase decomposition check" || {
    echo "analyze skipped the phase-sum verification"; exit 1; }
echo "$out" | grep -q "critical-path phase breakdown" || {
    echo "analyze printed no critical-path table"; exit 1; }
# export_chrome_trace self-validates with the hand-rolled parser before
# writing; re-run the round-trip here on the bytes that reached disk.
cargo test -q --test span_parity perfetto_export_round_trips_the_parser
grep -q '"ph":"X"' "$tmpdir/spans.json" || {
    echo "perfetto export contains no complete slices"; exit 1; }
grep -q '"traceEvents"' "$tmpdir/spans.json" || {
    echo "perfetto export missing traceEvents envelope"; exit 1; }

echo "==> analyze smoke: --jobs 2 phase CSV must be byte-identical to --jobs 1"
cargo run --release -q -p microfaas-cli -- analyze \
    --invocations 2 --seed 7 --jobs 1 --csv "$tmpdir/spans_serial.csv"
cargo run --release -q -p microfaas-cli -- analyze \
    --invocations 2 --seed 7 --jobs 2 --csv "$tmpdir/spans_parallel.csv"
cmp "$tmpdir/spans_serial.csv" "$tmpdir/spans_parallel.csv" || {
    echo "parallel analyze diverged from serial"; exit 1; }

echo "All checks passed."
