//! Offline shim for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The reproduction workspace must build and test on machines with **no
//! network and no crates.io registry cache** (see `README.md`, "Offline
//! workflow"). Cargo resolves every dependency in the graph against the
//! registry index even when a dependency is unused, so the only way to
//! keep property tests runnable offline is to vendor the dependency.
//!
//! This crate implements the *subset* of the proptest API the workspace
//! uses, with real random generation (a seeded SplitMix64 generator, so
//! runs are reproducible) but **no shrinking**: on failure the offending
//! inputs are printed verbatim instead of being minimized. Supported
//! surface:
//!
//! - [`proptest!`] with an optional `#![proptest_config(..)]` header
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`]
//! - [`strategy::Strategy`] with `prop_map` and `boxed`
//! - [`arbitrary::any`] for the primitive types and byte arrays
//! - integer / float range strategies (`0u64..100`, `b'a'..=b'e'`, ...)
//! - [`collection::vec`], [`collection::btree_set`], [`option::of`],
//!   [`strategy::Just`], tuple strategies up to arity 8
//! - `&str` regex-shaped string strategies for the pattern subset
//!   `atom{m,n}` where `atom` is `.` or a `[...]` class (e.g. `".{0,80}"`,
//!   `"[a-z/]{1,12}"`)
//!
//! The number of cases per property comes from `ProptestConfig::cases`
//! and can be overridden globally with the `PROPTEST_CASES` environment
//! variable, exactly like upstream.
//!
//! # Examples
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!
//!     // In a real test file this would carry `#[test]`; omitted here so
//!     // the doctest can invoke the expanded function directly.
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//!
//! addition_commutes();
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;

pub mod test_runner {
    //! The execution machinery behind the [`proptest!`](crate::proptest) macro.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected by [`prop_assume!`](crate::prop_assume);
        /// it does not count towards the target case count.
        Reject,
        /// An assertion failed with the given message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// Builds a rejection (assume-style filtering).
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Deterministic SplitMix64 generator used to drive all strategies.
    ///
    /// Each property gets a generator seeded from its module path and
    /// name, so a failing case reproduces on every run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary label (FNV-1a).
        pub fn deterministic(label: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in label.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "below(0) has no valid output");
            // Multiply-shift keeps the bias negligible for test purposes.
            let wide = u128::from(self.next_u64()) * u128::from(bound);
            (wide >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies: the [`Strategy`] trait and the
    //! combinators the workspace uses.

    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike upstream proptest there is no value tree and no shrinking:
    /// `generate` produces a finished value directly.
    ///
    /// # Examples
    ///
    /// ```
    /// use proptest::prelude::*;
    /// use proptest::test_runner::TestRng;
    ///
    /// let strategy = (0u32..10).prop_map(|n| n * 2);
    /// let mut rng = TestRng::deterministic("doc");
    /// let value = strategy.generate(&mut rng);
    /// assert!(value < 20 && value % 2 == 0);
    /// ```
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy so heterogeneous strategies with the
        /// same `Value` can live in one collection (see
        /// [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased strategy producing `V`.
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V> Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The combinator behind [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between type-erased alternatives
    /// (the engine behind [`prop_oneof!`](crate::prop_oneof)).
    #[derive(Debug)]
    pub struct OneOf<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        /// Builds from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let index = rng.below(self.options.len() as u64) as usize;
            self.options[index].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let width = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    if width > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (*self.start() as i128 + rng.below(width as u64) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// `&str` patterns act as string strategies over a regex subset:
    /// a sequence of `.`/`[class]`/literal atoms, each with an optional
    /// `{m,n}`, `{m}`, `*`, `+` or `?` quantifier.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let pieces = crate::pattern::parse(self);
            crate::pattern::generate(&pieces, rng)
        }
    }

    /// Strategy returned by [`any`](crate::arbitrary::any).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace fuzzes with.

    use std::marker::PhantomData;

    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical "uniform over the whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy for any [`Arbitrary`] type.
    ///
    /// # Examples
    ///
    /// ```
    /// use proptest::prelude::*;
    /// use proptest::test_runner::TestRng;
    ///
    /// let mut rng = TestRng::deterministic("doc");
    /// let _word: u64 = any::<u64>().generate(&mut rng);
    /// let _flag: bool = any::<bool>().generate(&mut rng);
    /// ```
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-balanced, spanning many magnitudes.
            rng.unit_f64() * 2e12 - 1e12
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for byte in &mut out {
                *byte = rng.next_u64() as u8;
            }
            out
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::*`).

    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with a length in `size`.
    ///
    /// # Examples
    ///
    /// ```
    /// use proptest::prelude::*;
    /// use proptest::test_runner::TestRng;
    ///
    /// let strategy = prop::collection::vec(any::<u8>(), 1..10);
    /// let bytes = strategy.generate(&mut TestRng::deterministic("doc"));
    /// assert!((1..10).contains(&bytes.len()));
    /// ```
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for ordered sets with a target size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `BTreeSet<S::Value>` aiming for a size in `size`.
    ///
    /// If the element domain is too small to reach the drawn size the set
    /// is returned at its achievable size (mirroring upstream's bounded
    /// rejection behaviour without the failure mode).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 50 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod option {
    //! Optional-value strategies (`prop::option::*`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option<S::Value>`, `None` half the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Wraps `inner` in an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

mod pattern {
    //! The regex subset used by `&str` string strategies.

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    pub(crate) enum Atom {
        AnyChar,
        /// Inclusive character ranges; single characters are `(c, c)`.
        Class(Vec<(char, char)>),
        Literal(char),
    }

    #[derive(Debug, Clone)]
    pub(crate) struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Parses the supported subset; panics (with the pattern) on anything
    /// fancier, because a silently-wrong generator is worse than a loud
    /// one.
    pub(crate) fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::AnyChar
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "unterminated class in string strategy pattern {pattern:?}"
                    );
                    i += 1; // closing ']'
                    assert!(
                        !ranges.is_empty(),
                        "empty class in string strategy pattern {pattern:?}"
                    );
                    Atom::Class(ranges)
                }
                '\\' => {
                    assert!(
                        i + 1 < chars.len(),
                        "dangling escape in string strategy pattern {pattern:?}"
                    );
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    assert!(
                        !"(){}|?*+".contains(c),
                        "unsupported pattern feature {c:?} in string strategy {pattern:?} \
                         (offline proptest shim supports only `.`/`[class]`/literal atoms \
                         with {{m,n}} quantifiers)"
                    );
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pattern);
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                *i += 1;
                let min = parse_number(chars, i, pattern);
                let max = match chars.get(*i) {
                    Some(',') => {
                        *i += 1;
                        parse_number(chars, i, pattern)
                    }
                    _ => min,
                };
                assert_eq!(
                    chars.get(*i),
                    Some(&'}'),
                    "malformed quantifier in string strategy pattern {pattern:?}"
                );
                *i += 1;
                assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
                (min, max)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn parse_number(chars: &[char], i: &mut usize, pattern: &str) -> usize {
        let start = *i;
        while chars.get(*i).is_some_and(|c| c.is_ascii_digit()) {
            *i += 1;
        }
        assert!(
            *i > start,
            "expected a number in string strategy pattern {pattern:?}"
        );
        chars[start..*i]
            .iter()
            .collect::<String>()
            .parse()
            .expect("digits")
    }

    pub(crate) fn generate(pieces: &[Piece], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in pieces {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(generate_atom(&piece.atom, rng));
            }
        }
        out
    }

    fn generate_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::AnyChar => {
                // Mostly printable ASCII with an occasional arbitrary
                // scalar so parsers still see non-ASCII input.
                if rng.below(10) < 9 {
                    char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ascii")
                } else {
                    crate::arbitrary::Arbitrary::arbitrary(rng)
                }
            }
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                    .sum();
                let mut pick = rng.below(total);
                for &(lo, hi) in ranges {
                    let span = hi as u64 - lo as u64 + 1;
                    if pick < span {
                        return char::from_u32(lo as u32 + pick as u32).expect("valid scalar");
                    }
                    pick -= span;
                }
                unreachable!("pick < total by construction")
            }
        }
    }
}

/// Per-property run configuration, normally set through
/// `#![proptest_config(ProptestConfig::with_cases(N))]`.
///
/// # Examples
///
/// ```
/// use proptest::prelude::*;
///
/// let config = ProptestConfig::with_cases(48);
/// assert_eq!(config.cases, 48);
/// ```
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of *accepted* cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases to actually run: the `PROPTEST_CASES` environment variable
    /// overrides the configured count when set.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(value) => value.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[doc(hidden)]
pub fn __format_input(name: &str, value: &dyn Debug, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(out, "{name} = {value:?}; ");
}

/// Defines property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a plain
/// `#[test]` function that draws inputs from the strategies and runs the
/// body once per case. `prop_assert*` failures abort the test and print
/// the generated inputs (no shrinking in this offline shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __cases: u32 = __config.effective_cases();
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)*
                let mut __inputs = ::std::string::String::new();
                $($crate::__format_input(stringify!($arg), &$arg, &mut __inputs);)*
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {
                        __passed += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        __rejected += 1;
                        ::std::assert!(
                            __rejected <= __cases.saturating_mul(16).saturating_add(1024),
                            "too many rejected inputs ({} rejects while targeting {} cases)",
                            __rejected,
                            __cases,
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__message)) => {
                        ::std::panic!(
                            "proptest case failed after {} passing case(s): {}\n    inputs: {}",
                            __passed,
                            __message,
                            __inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body; failure aborts the
/// current case with the generated inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n     left: {:?}\n    right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left,
                    __right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "{}\nassertion failed: `{} == {}`\n     left: {:?}\n    right: {:?}",
                    ::std::format!($($fmt)+),
                    stringify!($left),
                    stringify!($right),
                    __left,
                    __right,
                ),
            ));
        }
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if *__left == *__right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n     both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if *__left == *__right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "{}\nassertion failed: `{} != {}`\n     both: {:?}",
                    ::std::format!($($fmt)+),
                    stringify!($left),
                    stringify!($right),
                    __left,
                ),
            ));
        }
    }};
}

/// Discards the current case (it does not count towards the target case
/// count) when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies that produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// `prop::collection::vec`, `prop::option::of`, ... — upstream
    /// proptest aliases the crate root as `prop` in its prelude.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1_000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let b = (b'a'..=b'e').generate(&mut rng);
            assert!((b'a'..=b'e').contains(&b));
            let f = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_their_own_shape() {
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..500 {
            let s = "[a-z/]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars().all(|c| c == '/' || c.is_ascii_lowercase()),
                "{s:?}"
            );

            let t = ".{0,80}".generate(&mut rng);
            assert!(t.chars().count() <= 80);
        }
    }

    #[test]
    fn btree_set_respects_target_when_domain_allows() {
        let mut rng = TestRng::deterministic("sets");
        for _ in 0..200 {
            let s = crate::collection::btree_set(0usize..17, 1..17).generate(&mut rng);
            assert!((1..17).contains(&s.len()));
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let a: Vec<u64> = {
            let mut rng = TestRng::deterministic("same");
            (0..32).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::deterministic("same");
            (0..32).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_expansion_runs(xs in prop::collection::vec(any::<u8>(), 0..8), flip in any::<bool>()) {
            prop_assume!(xs.len() != 7);
            prop_assert!(xs.len() < 8);
            if flip {
                prop_assert_eq!(xs.len(), xs.iter().map(|_| 1usize).sum::<usize>());
            } else {
                prop_assert_ne!(xs.len(), usize::MAX);
            }
        }
    }
}
