//! Offline shim for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! Like the vendored `proptest`, this exists so the workspace builds and
//! benches with **no network and no crates.io registry cache** (see
//! `README.md`, "Offline workflow"). It implements the API subset the
//! `microfaas-bench` targets use — groups, throughput annotation,
//! parameterized benchmarks, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery.
//!
//! Behaviour:
//!
//! - `cargo bench` runs each benchmark for ~80 ms after a short warm-up
//!   and prints mean time per iteration (plus MB/s when a byte
//!   throughput is set).
//! - `cargo test` invokes bench executables with `--test`; in that mode
//!   each benchmark body runs exactly once as a smoke test, mirroring
//!   upstream criterion.
//!
//! # Examples
//!
//! ```
//! use criterion::{Bencher, Criterion};
//!
//! let mut c = Criterion::test_mode();
//! c.bench_function("add", |b: &mut Bencher| b.iter(|| 1 + 1));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark (after warm-up).
const MEASURE_TARGET: Duration = Duration::from_millis(80);

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter, e.g. `sha256/4096`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Work-per-iteration annotation used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration (reported as MB/s).
    Bytes(u64),
    /// Logical elements processed per iteration (reported as Melem/s).
    Elements(u64),
}

/// Times closures; handed to benchmark bodies.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    mean_ns: f64,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean wall-clock time
    /// per call. In test mode the routine runs exactly once.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.mean_ns = 0.0;
            return;
        }
        // Warm-up: one call, which also sizes the first batch.
        let warm = Instant::now();
        std::hint::black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(20));

        let mut batch = (MEASURE_TARGET.as_nanos() / 8 / once.as_nanos()).clamp(1, 1 << 20) as u64;
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        while total < MEASURE_TARGET {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iterations += batch;
            batch = batch.saturating_mul(2).min(1 << 22);
        }
        self.mean_ns = total.as_nanos() as f64 / iterations as f64;
    }
}

/// The benchmark driver. One instance is shared by every target listed
/// in [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Inspects the command line the way upstream criterion does:
    /// `--test` (passed by `cargo test` to `harness = false` bench
    /// executables) switches to run-once smoke mode.
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// A driver that runs every benchmark body exactly once (used by
    /// doctests and smoke tests).
    pub fn test_mode() -> Self {
        Criterion { test_mode: true }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.test_mode, name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing a throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion.test_mode, &label, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Runs a plain benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(self.criterion.test_mode, &label, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is
    /// per-benchmark in this shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    test_mode: bool,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        test_mode,
        mean_ns: f64::NAN,
    };
    f(&mut bencher);
    if test_mode {
        println!("test bench {label} ... ok (ran once)");
        return;
    }
    let mean_ns = bencher.mean_ns;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if mean_ns > 0.0 => {
            format!("  ({:.1} MB/s)", bytes as f64 / mean_ns * 1e9 / 1e6)
        }
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            format!("  ({:.2} Melem/s)", n as f64 / mean_ns * 1e9 / 1e6)
        }
        _ => String::new(),
    };
    println!("{label:<48} {}{rate}", format_time(mean_ns));
}

fn format_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} us/iter", ns / 1e3)
    } else {
        format!("{ns:>10.1} ns/iter")
    }
}

/// Declares a callable group of benchmark functions.
///
/// Only the positional form `criterion_group!(name, target, ...)` is
/// supported (which is the only form this workspace uses).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut calls = 0u32;
        let mut c = Criterion::test_mode();
        c.bench_function("counted", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::test_mode();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::new("id", 7), &vec![1u8; 8], |b, data| {
            b.iter(|| data.iter().map(|&x| x as u64).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| 2 + 2));
        group.finish();
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(format_time(12.0).contains("ns/iter"));
        assert!(format_time(12_000.0).contains("us/iter"));
        assert!(format_time(12_000_000.0).contains("ms/iter"));
        assert!(format_time(2e9).contains("s/iter"));
    }
}
