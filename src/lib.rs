//! # microfaas-repro
//!
//! Facade crate for the MicroFaaS reproduction. Re-exports every
//! subsystem under one roof so the examples and workspace-level
//! integration tests have a single dependency:
//!
//! * [`sim`] — deterministic discrete-event kernel;
//! * [`net`] — switched-Ethernet network model;
//! * [`hw`] — SBC / rack-server / boot-pipeline / power models;
//! * [`services`] — KV store, SQL engine, object store, message queue;
//! * [`workloads`] — the 17 Table-I functions and their calibration;
//! * [`energy`] — power metering;
//! * [`tco`] — the Cui et al. cost model (Table II);
//! * [`platform`] — the MicroFaaS core: clusters, orchestration,
//!   experiment drivers.
//!
//! # Examples
//!
//! ```
//! use microfaas_repro::platform::config::WorkloadMix;
//! use microfaas_repro::platform::micro::{run_microfaas, MicroFaasConfig};
//!
//! let run = run_microfaas(&MicroFaasConfig::paper_prototype(
//!     WorkloadMix::quick(),
//!     1,
//! ));
//! assert!(run.functions_per_minute() > 150.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use microfaas as platform;
pub use microfaas_energy as energy;
pub use microfaas_hw as hw;
pub use microfaas_net as net;
pub use microfaas_services as services;
pub use microfaas_sim as sim;
pub use microfaas_tco as tco;
pub use microfaas_workloads as workloads;
