//! Experiment configuration shared by both cluster simulators.

use microfaas_sched::PlacementKind;
use microfaas_sim::Rng;
use microfaas_workloads::FunctionId;

use crate::job::Job;

/// Which functions to run and how many invocations of each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadMix {
    functions: Vec<FunctionId>,
    invocations_per_function: u32,
}

impl WorkloadMix {
    /// The paper's evaluation mix: 1,000 invocations of each of the 17
    /// functions.
    pub fn paper_evaluation() -> Self {
        WorkloadMix {
            functions: FunctionId::ALL.to_vec(),
            invocations_per_function: 1_000,
        }
    }

    /// A smaller mix for quick runs and tests.
    pub fn quick() -> Self {
        WorkloadMix {
            functions: FunctionId::ALL.to_vec(),
            invocations_per_function: 50,
        }
    }

    /// A custom mix.
    ///
    /// # Panics
    ///
    /// Panics if `functions` is empty or `invocations_per_function` is 0.
    pub fn new(functions: Vec<FunctionId>, invocations_per_function: u32) -> Self {
        assert!(!functions.is_empty(), "mix needs at least one function");
        assert!(invocations_per_function > 0, "need at least one invocation");
        WorkloadMix {
            functions,
            invocations_per_function,
        }
    }

    /// Functions in the mix.
    pub fn functions(&self) -> &[FunctionId] {
        &self.functions
    }

    /// Invocations per function.
    pub fn invocations_per_function(&self) -> u32 {
        self.invocations_per_function
    }

    /// Total job count.
    pub fn total_jobs(&self) -> u64 {
        self.functions.len() as u64 * self.invocations_per_function as u64
    }

    /// Materializes the shuffled job list (deterministic for a given
    /// generator state) — the order the orchestrator issues invocations.
    pub fn jobs(&self, rng: &mut Rng) -> Vec<Job> {
        let mut jobs: Vec<Job> = Vec::with_capacity(self.total_jobs() as usize);
        let mut id = 0;
        for _ in 0..self.invocations_per_function {
            for &function in &self.functions {
                jobs.push(Job { id, function });
                id += 1;
            }
        }
        // Fisher–Yates shuffle for a random issue order.
        for i in (1..jobs.len()).rev() {
            let j = rng.index(i + 1);
            jobs.swap(i, j);
        }
        jobs
    }
}

/// How the orchestration plane maps jobs to worker queues.
///
/// Since the scheduling subsystem landed this is the full
/// [`PlacementKind`] policy family from `microfaas-sched`; the alias
/// keeps the historical `Assignment::WorkConserving` /
/// `Assignment::RandomStatic` spellings working. `WorkConserving` is
/// one shared FIFO measuring saturated cluster *capacity* (the
/// "capable of N func/min" numbers the paper reports); `RandomStatic`
/// is the paper's literal mechanism — every job lands in one uniformly
/// random per-worker queue up front, and queue-length imbalance then
/// stretches the makespan. See `docs/SCHEDULING.md` for the other four
/// policies.
pub type Assignment = PlacementKind;

/// Multiplicative runtime jitter: real systems never repeat a measurement
/// exactly, and the percentile columns of the reports need spread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jitter {
    /// Relative standard deviation (e.g. 0.04 for ±4%).
    pub relative_std: f64,
}

impl Jitter {
    /// The default ±4% used for all headline experiments.
    pub fn default_run_to_run() -> Self {
        Jitter { relative_std: 0.04 }
    }

    /// No jitter (fully deterministic service times).
    pub fn none() -> Self {
        Jitter { relative_std: 0.0 }
    }

    /// Draws a multiplicative factor around 1.0, clamped to [0.8, 1.3]
    /// so a single outlier cannot distort a mean of thousands.
    pub fn factor(&self, rng: &mut Rng) -> f64 {
        if self.relative_std == 0.0 {
            return 1.0;
        }
        rng.normal(1.0, self.relative_std).clamp(0.8, 1.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_is_17000_jobs() {
        let mix = WorkloadMix::paper_evaluation();
        assert_eq!(mix.total_jobs(), 17_000);
        assert_eq!(mix.functions().len(), 17);
    }

    #[test]
    fn jobs_cover_every_function_equally() {
        let mix = WorkloadMix::new(FunctionId::ALL.to_vec(), 5);
        let mut rng = Rng::new(1);
        let jobs = mix.jobs(&mut rng);
        assert_eq!(jobs.len(), 85);
        for function in FunctionId::ALL {
            let count = jobs.iter().filter(|j| j.function == function).count();
            assert_eq!(count, 5, "{function} should appear 5 times");
        }
        // Ids are unique.
        let mut ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 85);
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let mix = WorkloadMix::quick();
        let a = mix.jobs(&mut Rng::new(7));
        let b = mix.jobs(&mut Rng::new(7));
        assert_eq!(a, b);
        let c = mix.jobs(&mut Rng::new(8));
        assert_ne!(a, c, "different seeds should shuffle differently");
    }

    #[test]
    fn jitter_stays_clamped_and_centered() {
        let jitter = Jitter::default_run_to_run();
        let mut rng = Rng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = jitter.factor(&mut rng);
            assert!((0.8..=1.3).contains(&f));
            sum += f;
        }
        assert!((sum / 10_000.0 - 1.0).abs() < 0.01);
    }

    #[test]
    fn zero_jitter_is_exactly_one() {
        let mut rng = Rng::new(3);
        assert_eq!(Jitter::none().factor(&mut rng), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn empty_mix_panics() {
        WorkloadMix::new(vec![], 1);
    }
}
