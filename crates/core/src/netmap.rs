//! The network topology both evaluation clusters share: workers behind
//! their NIC link, the orchestrator on GigE, and the four backing
//! services (kvstore, sqldb, objstore, mqueue) that network-bound
//! functions talk to.

use microfaas_net::{LinkSpec, Network, NodeId};
use microfaas_sim::trace::Endpoint;
use microfaas_sim::SimTime;
use microfaas_workloads::FunctionId;

/// A cluster's switch plus the node roster: `count` workers named
/// `{prefix}{w}`, the orchestrator, and one host per backing service.
pub(crate) struct ClusterNet {
    net: Network,
    workers: Vec<NodeId>,
    orchestrator: NodeId,
    kv: NodeId,
    sql: NodeId,
    cos: NodeId,
    mq: NodeId,
}

impl ClusterNet {
    /// Builds the topology on a GigE backbone. The orchestrator always
    /// sits on GigE; workers and services use the links the config asks
    /// for (Fast Ethernet SBCs, GigE VMs, SBC-hosted services, ...).
    pub fn new(prefix: &str, count: usize, worker_link: LinkSpec, service_link: LinkSpec) -> Self {
        let mut net = Network::new(LinkSpec::gigabit());
        let workers = (0..count)
            .map(|w| net.add_node(format!("{prefix}{w}"), worker_link))
            .collect();
        let orchestrator = net.add_node("orchestrator", LinkSpec::gigabit());
        let kv = net.add_node("kvstore", service_link);
        let sql = net.add_node("sqldb", service_link);
        let cos = net.add_node("objstore", service_link);
        let mq = net.add_node("mqueue", service_link);
        ClusterNet {
            net,
            workers,
            orchestrator,
            kv,
            sql,
            cos,
            mq,
        }
    }

    /// The node `function`'s result transfer talks to.
    pub fn peer_of(&self, function: FunctionId) -> NodeId {
        match function {
            FunctionId::RedisInsert | FunctionId::RedisUpdate => self.kv,
            FunctionId::SqlSelect | FunctionId::SqlUpdate => self.sql,
            FunctionId::CosGet | FunctionId::CosPut => self.cos,
            FunctionId::MqProduce | FunctionId::MqConsume => self.mq,
            _ => self.orchestrator,
        }
    }

    /// The trace-level endpoint label for `function`'s peer.
    pub fn endpoint_of(function: FunctionId) -> Endpoint {
        match function {
            FunctionId::RedisInsert | FunctionId::RedisUpdate => Endpoint::Service("kvstore"),
            FunctionId::SqlSelect | FunctionId::SqlUpdate => Endpoint::Service("sqldb"),
            FunctionId::CosGet | FunctionId::CosPut => Endpoint::Service("objstore"),
            FunctionId::MqProduce | FunctionId::MqConsume => Endpoint::Service("mqueue"),
            _ => Endpoint::Orchestrator,
        }
    }

    /// Runs the result transfer for `function` on worker `w` through the
    /// switch, returning the delivery time and the trace endpoints.
    /// COSGet downloads, so its bytes flow service → worker; everything
    /// else uploads. A `lost` transfer occupies the wire identically but
    /// never arrives (the payload is counted as lost by the network).
    pub fn transfer(
        &mut self,
        now: SimTime,
        w: usize,
        function: FunctionId,
        bytes: u64,
        lost: bool,
    ) -> (SimTime, Endpoint, Endpoint) {
        let peer = self.peer_of(function);
        let (from, to, src, dst) = if function == FunctionId::CosGet {
            (
                peer,
                self.workers[w],
                Self::endpoint_of(function),
                Endpoint::Worker(w),
            )
        } else {
            (
                self.workers[w],
                peer,
                Endpoint::Worker(w),
                Self::endpoint_of(function),
            )
        };
        let delivered = if lost {
            self.net.send_lost(now, from, to, bytes)
        } else {
            self.net.send(now, from, to, bytes)
        };
        (delivered, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnet() -> ClusterNet {
        ClusterNet::new("sbc-", 4, LinkSpec::fast_ethernet(), LinkSpec::gigabit())
    }

    #[test]
    fn network_bound_functions_map_to_their_service() {
        let cnet = cnet();
        assert_eq!(cnet.peer_of(FunctionId::RedisInsert), cnet.kv);
        assert_eq!(cnet.peer_of(FunctionId::SqlUpdate), cnet.sql);
        assert_eq!(cnet.peer_of(FunctionId::CosPut), cnet.cos);
        assert_eq!(cnet.peer_of(FunctionId::MqConsume), cnet.mq);
        assert_eq!(cnet.peer_of(FunctionId::MatMul), cnet.orchestrator);
        assert_eq!(
            ClusterNet::endpoint_of(FunctionId::CosGet),
            Endpoint::Service("objstore")
        );
        assert_eq!(
            ClusterNet::endpoint_of(FunctionId::FloatOps),
            Endpoint::Orchestrator
        );
    }

    #[test]
    fn cosget_downloads_everything_else_uploads() {
        let mut cnet = cnet();
        let (_, src, dst) = cnet.transfer(SimTime::ZERO, 2, FunctionId::CosGet, 1_000, false);
        assert_eq!(src, Endpoint::Service("objstore"));
        assert_eq!(dst, Endpoint::Worker(2));
        let (_, src, dst) = cnet.transfer(SimTime::ZERO, 1, FunctionId::RedisInsert, 100, false);
        assert_eq!(src, Endpoint::Worker(1));
        assert_eq!(dst, Endpoint::Service("kvstore"));
    }

    #[test]
    fn lost_transfers_take_wire_time_but_count_as_lost() {
        let mut cnet = cnet();
        let (delivered, _, _) = cnet.transfer(SimTime::ZERO, 0, FunctionId::CosPut, 100_000, true);
        assert!(delivered > SimTime::ZERO);
        assert_eq!(cnet.net.lost_count(), 1);
    }
}
