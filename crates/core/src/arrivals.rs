//! Production traffic shapes for the open-loop driver: composable
//! arrival processes, per-function popularity skew, and multi-tenant
//! request classes with SLO targets.
//!
//! The paper evaluates MicroFaaS under two synthetic arrivals (a fixed
//! per-second batch and a Poisson stream). Real FaaS traffic is
//! bursty, diurnal, and heavy-tailed in which functions get called —
//! the taxonomy SeBS formalizes for serverless benchmarking — and
//! policies that look equivalent under steady load separate sharply
//! under those shapes (see `docs/WORKLOADS.md` for each generative
//! model and `docs/SCHEDULING.md` for the break-even that flips).
//!
//! Everything here draws from the caller-provided simulation [`Rng`]
//! at fixed sites, so runs remain bit-for-bit deterministic per seed
//! and identical across `--jobs` settings. The legacy processes
//! ([`ArrivalProcess::Poisson`], [`ArrivalProcess::EverySecond`]) with
//! [`Popularity::Uniform`] and no tenants reproduce the historical
//! draw sequence exactly — the `sched_compat` goldens pin this.
//!
//! # Examples
//!
//! Generate inter-arrival gaps directly (the open-loop engine does the
//! same thing per [`ArrivalProcess::batch`] of jobs):
//!
//! ```
//! use microfaas::arrivals::{ArrivalProcess, ArrivalState};
//! use microfaas_sim::{Rng, SimTime};
//!
//! let process = ArrivalProcess::Mmpp {
//!     calm_per_second: 0.1,
//!     burst_per_second: 5.0,
//!     mean_calm_s: 120.0,
//!     mean_burst_s: 15.0,
//! };
//! let mut rng = Rng::new(7);
//! let mut state = ArrivalState::default();
//! let mut now = SimTime::ZERO;
//! for _ in 0..100 {
//!     now = now + process.next_gap(now, &mut rng, &mut state);
//! }
//! assert!(now > SimTime::ZERO);
//! ```

use microfaas_sim::{json, OnlineStats, Rng, SimDuration, SimTime};

/// How invocations arrive at the orchestration plane.
///
/// Each variant is a seeded generative model; [`ArrivalProcess::next_gap`]
/// draws the time to the next arrival event from the simulation RNG.
/// Parse CLI spec strings with [`ArrivalProcess::parse`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals at the given mean rate.
    Poisson {
        /// Mean arrivals per second.
        per_second: f64,
    },
    /// The paper's literal description: a fixed batch of jobs added
    /// every second.
    EverySecond {
        /// Jobs added per one-second tick.
        jobs_per_tick: usize,
    },
    /// Markov-modulated Poisson process with two states — a calm
    /// baseline and a burst regime — switching after exponentially
    /// distributed dwell times. The classic bursty-traffic model:
    /// inter-arrival gaps have coefficient of variation above 1.
    Mmpp {
        /// Mean arrivals per second while calm.
        calm_per_second: f64,
        /// Mean arrivals per second while bursting.
        burst_per_second: f64,
        /// Mean dwell in the calm state, seconds.
        mean_calm_s: f64,
        /// Mean dwell in the burst state, seconds.
        mean_burst_s: f64,
    },
    /// Sinusoidal rate modulation around a mean — the day/night cycle:
    /// `rate(t) = mean · (1 + amplitude · sin(2πt / period))`, sampled
    /// by Lewis–Shedler thinning against the peak rate.
    Diurnal {
        /// Long-run mean arrivals per second.
        mean_per_second: f64,
        /// Relative swing in `[0, 1]`: 0 is steady Poisson, 1 touches
        /// zero at the trough.
        relative_amplitude: f64,
        /// Cycle length, seconds.
        period_s: f64,
    },
    /// A piecewise-constant rate step: baseline traffic with one spike
    /// window (a launch, a retweet, a cache stampede), sampled by
    /// thinning against the higher of the two rates.
    FlashCrowd {
        /// Mean arrivals per second outside the spike.
        base_per_second: f64,
        /// Spike onset, seconds from run start.
        spike_at_s: f64,
        /// Spike length, seconds.
        spike_duration_s: f64,
        /// Mean arrivals per second inside the spike.
        spike_per_second: f64,
    },
}

/// Mutable per-run generator state ([`ArrivalProcess::Mmpp`]'s current
/// regime). Every run starts calm; the engine keeps one value per run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArrivalState {
    in_burst: bool,
}

impl ArrivalState {
    /// Whether the MMPP generator is currently in its burst regime.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }
}

impl ArrivalProcess {
    /// Checks the parameters, panicking with a description of the first
    /// problem. Called once at run start by the open-loop engines.
    ///
    /// # Panics
    ///
    /// Panics on non-positive rates, amplitude outside `[0, 1]`, or
    /// non-positive dwell/period/duration parameters.
    pub fn validate(&self) {
        if let Err(problem) = self.try_validate() {
            panic!("{problem}");
        }
    }

    /// Non-panicking form of [`ArrivalProcess::validate`], used by the
    /// spec parsers to report bad parameters instead of aborting.
    ///
    /// # Errors
    ///
    /// Returns the message [`ArrivalProcess::validate`] would panic
    /// with.
    pub fn try_validate(&self) -> Result<(), String> {
        let positive = |value: f64, what: &str| {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(format!("{what} must be positive, got {value}"))
            }
        };
        match *self {
            ArrivalProcess::Poisson { per_second } => {
                if !(per_second.is_finite() && per_second > 0.0) {
                    // Keep the historical panic message verbatim — a
                    // compat test pins it.
                    return Err("arrival rate must be positive".to_string());
                }
                Ok(())
            }
            ArrivalProcess::EverySecond { .. } => Ok(()),
            ArrivalProcess::Mmpp {
                calm_per_second,
                burst_per_second,
                mean_calm_s,
                mean_burst_s,
            } => {
                positive(calm_per_second, "mmpp calm rate")?;
                positive(burst_per_second, "mmpp burst rate")?;
                positive(mean_calm_s, "mmpp calm dwell")?;
                positive(mean_burst_s, "mmpp burst dwell")
            }
            ArrivalProcess::Diurnal {
                mean_per_second,
                relative_amplitude,
                period_s,
            } => {
                positive(mean_per_second, "diurnal mean rate")?;
                if !(0.0..=1.0).contains(&relative_amplitude) {
                    return Err(format!(
                        "diurnal amplitude must be in [0, 1], got {relative_amplitude}"
                    ));
                }
                positive(period_s, "diurnal period")
            }
            ArrivalProcess::FlashCrowd {
                base_per_second,
                spike_at_s,
                spike_duration_s,
                spike_per_second,
            } => {
                positive(base_per_second, "flash-crowd base rate")?;
                positive(spike_per_second, "flash-crowd spike rate")?;
                positive(spike_duration_s, "flash-crowd spike duration")?;
                if !(spike_at_s.is_finite() && spike_at_s >= 0.0) {
                    return Err(format!(
                        "flash-crowd spike onset must be non-negative, got {spike_at_s}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// Jobs injected per arrival event: the tick batch for
    /// [`ArrivalProcess::EverySecond`], one for every other process.
    pub fn batch(&self) -> usize {
        match *self {
            ArrivalProcess::EverySecond { jobs_per_tick } => jobs_per_tick,
            _ => 1,
        }
    }

    /// Lower-case label used in CSV output and spec strings.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::EverySecond { .. } => "every-second",
            ArrivalProcess::Mmpp { .. } => "mmpp",
            ArrivalProcess::Diurnal { .. } => "diurnal",
            ArrivalProcess::FlashCrowd { .. } => "flash-crowd",
        }
    }

    /// Instantaneous rate at `t` seconds from run start, jobs/s.
    /// Time-invariant processes report their stationary rate; the MMPP
    /// reports its long-run (dwell-weighted) mean since the regime at
    /// `t` is random.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { per_second } => per_second,
            ArrivalProcess::EverySecond { jobs_per_tick } => jobs_per_tick as f64,
            ArrivalProcess::Mmpp {
                calm_per_second,
                burst_per_second,
                mean_calm_s,
                mean_burst_s,
            } => {
                (calm_per_second * mean_calm_s + burst_per_second * mean_burst_s)
                    / (mean_calm_s + mean_burst_s)
            }
            ArrivalProcess::Diurnal {
                mean_per_second,
                relative_amplitude,
                period_s,
            } => {
                mean_per_second
                    * (1.0 + relative_amplitude * (std::f64::consts::TAU * t_s / period_s).sin())
            }
            ArrivalProcess::FlashCrowd {
                base_per_second,
                spike_at_s,
                spike_duration_s,
                spike_per_second,
            } => {
                if t_s >= spike_at_s && t_s < spike_at_s + spike_duration_s {
                    spike_per_second
                } else {
                    base_per_second
                }
            }
        }
    }

    /// Expected arrivals per second averaged over a run of
    /// `duration_s` seconds — the convergence target the determinism
    /// tests check empirical rates against.
    pub fn mean_per_second(&self, duration_s: f64) -> f64 {
        match *self {
            ArrivalProcess::FlashCrowd {
                base_per_second,
                spike_at_s,
                spike_duration_s,
                spike_per_second,
            } => {
                let spike_seen = (duration_s - spike_at_s).clamp(0.0, spike_duration_s);
                (base_per_second * (duration_s - spike_seen) + spike_per_second * spike_seen)
                    / duration_s
            }
            // Diurnal averages to its mean over whole periods; the
            // other processes are time-invariant.
            ArrivalProcess::Diurnal {
                mean_per_second, ..
            } => mean_per_second,
            _ => self.rate_at(0.0),
        }
    }

    /// The peak instantaneous rate, the thinning envelope for the
    /// time-varying processes.
    fn peak_per_second(&self) -> f64 {
        match *self {
            ArrivalProcess::Diurnal {
                mean_per_second,
                relative_amplitude,
                ..
            } => mean_per_second * (1.0 + relative_amplitude),
            ArrivalProcess::FlashCrowd {
                base_per_second,
                spike_per_second,
                ..
            } => base_per_second.max(spike_per_second),
            _ => self.rate_at(0.0),
        }
    }

    /// Draws the gap from the arrival event at `now` to the next one.
    ///
    /// Deterministic given the RNG state: Poisson consumes exactly one
    /// exponential draw and `EverySecond` none (the historical draw
    /// sites), the MMPP consumes one exponential pair per dwell segment
    /// crossed, and the time-varying processes consume one exponential
    /// plus one uniform per thinning proposal.
    pub fn next_gap(&self, now: SimTime, rng: &mut Rng, state: &mut ArrivalState) -> SimDuration {
        match *self {
            ArrivalProcess::Poisson { per_second } => {
                SimDuration::from_secs_f64(rng.exponential(1.0 / per_second))
            }
            ArrivalProcess::EverySecond { .. } => SimDuration::from_secs(1),
            ArrivalProcess::Mmpp {
                calm_per_second,
                burst_per_second,
                mean_calm_s,
                mean_burst_s,
            } => {
                // Competing exponentials: in each regime the next
                // arrival races the next regime switch; crossing a
                // switch accumulates the dwell and re-draws in the
                // other regime (both clocks are memoryless).
                let mut elapsed = 0.0;
                loop {
                    let (rate, dwell) = if state.in_burst {
                        (burst_per_second, mean_burst_s)
                    } else {
                        (calm_per_second, mean_calm_s)
                    };
                    let to_arrival = rng.exponential(1.0 / rate);
                    let to_switch = rng.exponential(dwell);
                    if to_arrival <= to_switch {
                        return SimDuration::from_secs_f64(elapsed + to_arrival);
                    }
                    elapsed += to_switch;
                    state.in_burst = !state.in_burst;
                }
            }
            ArrivalProcess::Diurnal { .. } | ArrivalProcess::FlashCrowd { .. } => {
                // Lewis–Shedler thinning: propose from a Poisson stream
                // at the peak rate, accept with rate(t)/peak.
                let peak = self.peak_per_second();
                let start_s = now.duration_since(SimTime::ZERO).as_secs_f64();
                let mut elapsed = 0.0;
                loop {
                    elapsed += rng.exponential(1.0 / peak);
                    if rng.next_f64() * peak <= self.rate_at(start_s + elapsed) {
                        return SimDuration::from_secs_f64(elapsed);
                    }
                }
            }
        }
    }

    /// Parses a compact spec string, the `--arrivals` CLI format:
    ///
    /// | Spec | Process |
    /// |---|---|
    /// | `poisson:RATE` | [`ArrivalProcess::Poisson`] |
    /// | `every-second:JOBS` | [`ArrivalProcess::EverySecond`] |
    /// | `mmpp:CALM,BURST,CALM_S,BURST_S` | [`ArrivalProcess::Mmpp`] |
    /// | `diurnal:MEAN,AMPLITUDE,PERIOD_S` | [`ArrivalProcess::Diurnal`] |
    /// | `flash:BASE,AT_S,DURATION_S,SPIKE` | [`ArrivalProcess::FlashCrowd`] |
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas::arrivals::ArrivalProcess;
    ///
    /// let process = ArrivalProcess::parse("diurnal:1.5,0.8,86400").unwrap();
    /// assert_eq!(process.label(), "diurnal");
    /// assert!(ArrivalProcess::parse("poisson:fast").is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the problem: unknown process, wrong
    /// argument count, unparseable number, or parameters that fail
    /// [`ArrivalProcess::validate`].
    pub fn parse(spec: &str) -> Result<ArrivalProcess, String> {
        let (kind, args) = spec.split_once(':').unwrap_or((spec, ""));
        let numbers: Vec<f64> = if args.is_empty() {
            Vec::new()
        } else {
            args.split(',')
                .map(|a| {
                    a.trim()
                        .parse::<f64>()
                        .map_err(|_| format!("bad number \"{a}\" in arrival spec \"{spec}\""))
                })
                .collect::<Result<_, _>>()?
        };
        let want = |n: usize| -> Result<(), String> {
            if numbers.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "arrival spec \"{kind}\" takes {n} parameter(s), got {}",
                    numbers.len()
                ))
            }
        };
        let process = match kind {
            "poisson" => {
                want(1)?;
                ArrivalProcess::Poisson {
                    per_second: numbers[0],
                }
            }
            "every-second" => {
                want(1)?;
                if numbers[0].fract() != 0.0 || numbers[0] < 0.0 {
                    return Err(format!(
                        "every-second takes a whole job count, got {}",
                        numbers[0]
                    ));
                }
                ArrivalProcess::EverySecond {
                    jobs_per_tick: numbers[0] as usize,
                }
            }
            "mmpp" => {
                want(4)?;
                ArrivalProcess::Mmpp {
                    calm_per_second: numbers[0],
                    burst_per_second: numbers[1],
                    mean_calm_s: numbers[2],
                    mean_burst_s: numbers[3],
                }
            }
            "diurnal" => {
                want(3)?;
                ArrivalProcess::Diurnal {
                    mean_per_second: numbers[0],
                    relative_amplitude: numbers[1],
                    period_s: numbers[2],
                }
            }
            "flash" | "flash-crowd" => {
                want(4)?;
                ArrivalProcess::FlashCrowd {
                    base_per_second: numbers[0],
                    spike_at_s: numbers[1],
                    spike_duration_s: numbers[2],
                    spike_per_second: numbers[3],
                }
            }
            other => {
                return Err(format!(
                    "unknown arrival process \"{other}\" \
                     (poisson | every-second | mmpp | diurnal | flash)"
                ))
            }
        };
        process.try_validate()?;
        Ok(process)
    }
}

/// How arrivals pick which function to invoke.
///
/// Azure Functions production traces show a handful of hot functions
/// taking most invocations over a long cold tail; [`Popularity::Zipf`]
/// and [`Popularity::HotCold`] model that skew. The engine draws the
/// function per arrival: [`Popularity::Uniform`] keeps the historical
/// one-`index` draw site (bit-compat with the goldens), the skewed
/// distributions consume exactly one `f64` draw against a precomputed
/// cumulative table ([`Rng::cdf_index`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum Popularity {
    /// Every function equally likely (the paper's setup).
    #[default]
    Uniform,
    /// Zipf-distributed: function `i` (0-based rank) drawn with weight
    /// `(i + 1)^-exponent`. Exponent ≈ 1 matches the Azure skew.
    Zipf {
        /// Skew exponent; larger is more head-heavy. Must be positive.
        exponent: f64,
    },
    /// A two-class mix: the first `hot_functions` functions split
    /// `hot_share` of the traffic evenly, the rest split the remainder.
    HotCold {
        /// How many functions form the hot set.
        hot_functions: usize,
        /// Fraction of arrivals hitting the hot set, in `(0, 1]`.
        hot_share: f64,
    },
}

impl Popularity {
    /// Checks the parameters against a catalog of `functions` entries.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive Zipf exponent, an empty or oversized
    /// hot set, or a hot share outside `(0, 1]`.
    pub fn validate(&self, functions: usize) {
        match *self {
            Popularity::Uniform => {}
            Popularity::Zipf { exponent } => {
                assert!(
                    exponent.is_finite() && exponent > 0.0,
                    "zipf exponent must be positive, got {exponent}"
                );
            }
            Popularity::HotCold {
                hot_functions,
                hot_share,
            } => {
                assert!(
                    hot_functions >= 1 && hot_functions <= functions,
                    "hot set must hold 1..={functions} functions, got {hot_functions}"
                );
                assert!(
                    hot_share > 0.0 && hot_share <= 1.0,
                    "hot share must be in (0, 1], got {hot_share}"
                );
            }
        }
    }

    /// Lower-case label used in CSV output and spec strings.
    pub fn label(&self) -> &'static str {
        match self {
            Popularity::Uniform => "uniform",
            Popularity::Zipf { .. } => "zipf",
            Popularity::HotCold { .. } => "hot-cold",
        }
    }

    /// Parses a compact spec string, the `--popularity` CLI format:
    /// `uniform`, `zipf:EXPONENT`, or `hot-cold:HOT_N,HOT_SHARE`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown distribution or malformed
    /// parameter.
    pub fn parse(spec: &str) -> Result<Popularity, String> {
        let (kind, args) = spec.split_once(':').unwrap_or((spec, ""));
        match kind {
            "uniform" => {
                if !args.is_empty() {
                    return Err("uniform takes no parameters".to_string());
                }
                Ok(Popularity::Uniform)
            }
            "zipf" => {
                let exponent: f64 = args
                    .trim()
                    .parse()
                    .map_err(|_| format!("zipf takes one exponent, got \"{args}\""))?;
                if !(exponent.is_finite() && exponent > 0.0) {
                    return Err(format!("zipf exponent must be positive, got {exponent}"));
                }
                Ok(Popularity::Zipf { exponent })
            }
            "hot-cold" => {
                let parts: Vec<&str> = args.split(',').collect();
                if parts.len() != 2 {
                    return Err(format!("hot-cold takes HOT_N,HOT_SHARE, got \"{args}\""));
                }
                let hot_functions: usize = parts[0]
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad hot-set size \"{}\"", parts[0]))?;
                let hot_share: f64 = parts[1]
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad hot share \"{}\"", parts[1]))?;
                if hot_functions == 0 {
                    return Err("hot set must hold at least one function".to_string());
                }
                if !(hot_share > 0.0 && hot_share <= 1.0) {
                    return Err(format!("hot share must be in (0, 1], got {hot_share}"));
                }
                Ok(Popularity::HotCold {
                    hot_functions,
                    hot_share,
                })
            }
            other => Err(format!(
                "unknown popularity \"{other}\" (uniform | zipf | hot-cold)"
            )),
        }
    }
}

/// Per-run function chooser compiled from a [`Popularity`] over a
/// catalog of `n` functions. Built once at run start; picking is O(1)
/// for uniform and O(log n) (one binary search, one RNG draw) for the
/// skewed distributions.
///
/// # Examples
///
/// ```
/// use microfaas::arrivals::{FunctionPicker, Popularity};
/// use microfaas_sim::Rng;
///
/// let picker = FunctionPicker::new(&Popularity::Zipf { exponent: 1.2 }, 17);
/// let mut rng = Rng::new(3);
/// let mut head = 0;
/// for _ in 0..1_000 {
///     if picker.pick(&mut rng) == 0 {
///         head += 1;
///     }
/// }
/// assert!(head > 200, "rank 0 should take well over 1/17th: {head}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionPicker {
    n: usize,
    /// Cumulative weights for the skewed distributions; `None` keeps
    /// the historical uniform `index` draw.
    cdf: Option<Vec<f64>>,
}

impl FunctionPicker {
    /// Compiles `popularity` over a catalog of `n` functions.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the parameters fail
    /// [`Popularity::validate`].
    pub fn new(popularity: &Popularity, n: usize) -> Self {
        assert!(n > 0, "need at least one function");
        popularity.validate(n);
        let cdf = match *popularity {
            Popularity::Uniform => None,
            Popularity::Zipf { exponent } => {
                let mut total = 0.0;
                Some(
                    (0..n)
                        .map(|i| {
                            total += ((i + 1) as f64).powf(-exponent);
                            total
                        })
                        .collect(),
                )
            }
            Popularity::HotCold {
                hot_functions,
                hot_share,
            } => {
                let cold = n - hot_functions;
                let hot_each = hot_share / hot_functions as f64;
                let cold_each = if cold == 0 {
                    0.0
                } else {
                    (1.0 - hot_share) / cold as f64
                };
                let mut total = 0.0;
                Some(
                    (0..n)
                        .map(|i| {
                            total += if i < hot_functions {
                                hot_each
                            } else {
                                cold_each
                            };
                            total
                        })
                        .collect(),
                )
            }
        };
        FunctionPicker { n, cdf }
    }

    /// Draws one function index in `[0, n)`.
    pub fn pick(&self, rng: &mut Rng) -> usize {
        match &self.cdf {
            // The historical draw site: exactly one uniform index.
            None => rng.index(self.n),
            Some(cdf) => rng.cdf_index(cdf),
        }
    }
}

/// One tenant class in a multi-tenant mix: a share of the traffic and
/// the latency SLO that share is sold against.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantClass {
    /// Display name (CSV column, report rows).
    pub name: String,
    /// Relative traffic share; weights need not sum to 1.
    pub weight: f64,
    /// End-to-end latency target, seconds. A completion at or under
    /// this latency counts as an SLO hit.
    pub slo_latency_s: f64,
}

impl TenantClass {
    /// Checks the parameters.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive weight or SLO target.
    pub fn validate(&self) {
        assert!(
            self.weight.is_finite() && self.weight > 0.0,
            "tenant \"{}\" weight must be positive, got {}",
            self.name,
            self.weight
        );
        assert!(
            self.slo_latency_s.is_finite() && self.slo_latency_s > 0.0,
            "tenant \"{}\" SLO must be positive, got {}",
            self.name,
            self.slo_latency_s
        );
    }
}

/// Per-tenant results of a run: completions, latency, and SLO
/// attainment against the class target.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// The class name.
    pub name: String,
    /// The class SLO target, seconds.
    pub slo_latency_s: f64,
    /// Completions attributed to this tenant.
    pub completed: u64,
    /// Mean end-to-end latency over those completions, seconds.
    pub mean_latency_s: f64,
    /// Completions at or under the SLO target.
    pub slo_hits: u64,
}

impl TenantSummary {
    /// Fraction of completions meeting the SLO (`NaN` if none
    /// completed).
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            f64::NAN
        } else {
            self.slo_hits as f64 / self.completed as f64
        }
    }
}

/// Streams arrivals into tenant classes and folds per-tenant latency —
/// O(tenants) memory, so the million-job streaming path carries it for
/// free. With no classes configured it draws nothing and reports
/// nothing, keeping legacy runs bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantTracker {
    classes: Vec<TenantClass>,
    cdf: Vec<f64>,
    completed: Vec<u64>,
    slo_hits: Vec<u64>,
    latency: Vec<OnlineStats>,
}

impl TenantTracker {
    /// Builds a tracker over `classes` (empty is the single-tenant
    /// no-op).
    ///
    /// # Panics
    ///
    /// Panics if any class fails [`TenantClass::validate`].
    pub fn new(classes: &[TenantClass]) -> Self {
        let mut total = 0.0;
        let cdf = classes
            .iter()
            .map(|class| {
                class.validate();
                total += class.weight;
                total
            })
            .collect();
        TenantTracker {
            classes: classes.to_vec(),
            cdf,
            completed: vec![0; classes.len()],
            slo_hits: vec![0; classes.len()],
            latency: vec![OnlineStats::new(); classes.len()],
        }
    }

    /// Draws the tenant for a new arrival: one `f64` from the
    /// simulation stream when classes are configured, **zero draws**
    /// otherwise (every job then reports tenant 0).
    pub fn draw(&self, rng: &mut Rng) -> u16 {
        if self.classes.is_empty() {
            0
        } else {
            rng.cdf_index(&self.cdf) as u16
        }
    }

    /// Folds one completion into tenant `tenant`'s aggregates. A no-op
    /// when no classes are configured.
    pub fn record(&mut self, tenant: u16, latency_s: f64) {
        if self.classes.is_empty() {
            return;
        }
        let t = tenant as usize;
        self.completed[t] += 1;
        self.latency[t].record(latency_s);
        if latency_s <= self.classes[t].slo_latency_s {
            self.slo_hits[t] += 1;
        }
    }

    /// Per-tenant summaries in class order (empty when no classes are
    /// configured).
    pub fn summaries(&self) -> Vec<TenantSummary> {
        self.classes
            .iter()
            .enumerate()
            .map(|(t, class)| TenantSummary {
                name: class.name.clone(),
                slo_latency_s: class.slo_latency_s,
                completed: self.completed[t],
                mean_latency_s: self.latency[t].mean(),
                slo_hits: self.slo_hits[t],
            })
            .collect()
    }
}

/// A named traffic shape: an arrival process plus the popularity skew
/// and tenant mix to run it with. The unit the `scenarios` subcommand
/// and [`crate::experiment::scenario_sweep`] iterate over.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name (CSV `scenario` column).
    pub name: String,
    /// The arrival process.
    pub arrival: ArrivalProcess,
    /// Per-function popularity skew.
    pub popularity: Popularity,
    /// Tenant classes; empty runs single-tenant.
    pub tenants: Vec<TenantClass>,
}

impl Scenario {
    /// A scenario with uniform popularity and no tenant classes.
    pub fn new(name: &str, arrival: ArrivalProcess) -> Self {
        Scenario {
            name: name.to_string(),
            arrival,
            popularity: Popularity::Uniform,
            tenants: Vec::new(),
        }
    }

    /// The standard five-regime suite the `scenarios` subcommand runs
    /// by default, sized for a 10-worker sparse-load sweep (long-run
    /// means near 0.25–0.4 jobs/s, the regime where governors
    /// genuinely trade latency against energy):
    ///
    /// * `steady` — Poisson at 0.25 jobs/s (the SCHEDULING.md regime);
    /// * `bursty` — MMPP, 0.05 jobs/s calm / 2.0 bursting;
    /// * `diurnal` — sinusoid, mean 0.25, amplitude 0.9, 600 s period;
    /// * `flash-crowd` — 0.1 jobs/s base with a 120 s spike at 3.0;
    /// * `heavy-tail` — Poisson at 0.25 with Zipf(1.1) popularity and
    ///   a paid/free tenant mix (5 s and 60 s SLOs).
    pub fn standard_suite() -> Vec<Scenario> {
        vec![
            Scenario::new("steady", ArrivalProcess::Poisson { per_second: 0.25 }),
            Scenario::new(
                "bursty",
                ArrivalProcess::Mmpp {
                    calm_per_second: 0.05,
                    burst_per_second: 2.0,
                    mean_calm_s: 240.0,
                    mean_burst_s: 30.0,
                },
            ),
            Scenario::new(
                "diurnal",
                ArrivalProcess::Diurnal {
                    mean_per_second: 0.25,
                    relative_amplitude: 0.9,
                    period_s: 600.0,
                },
            ),
            Scenario::new(
                "flash-crowd",
                ArrivalProcess::FlashCrowd {
                    base_per_second: 0.1,
                    spike_at_s: 300.0,
                    spike_duration_s: 120.0,
                    spike_per_second: 3.0,
                },
            ),
            Scenario {
                name: "heavy-tail".to_string(),
                arrival: ArrivalProcess::Poisson { per_second: 0.25 },
                popularity: Popularity::Zipf { exponent: 1.1 },
                tenants: vec![
                    TenantClass {
                        name: "paid".to_string(),
                        weight: 0.2,
                        slo_latency_s: 5.0,
                    },
                    TenantClass {
                        name: "free".to_string(),
                        weight: 0.8,
                        slo_latency_s: 60.0,
                    },
                ],
            },
        ]
    }

    /// Parses scenario specs from JSON: either one scenario object or
    /// `{"scenarios": [...]}`. Each object takes:
    ///
    /// ```json
    /// {
    ///   "name": "launch-day",
    ///   "arrivals": "flash:0.5,300,120,10",
    ///   "popularity": "zipf:1.1",
    ///   "tenants": [
    ///     {"name": "paid", "weight": 0.2, "slo_latency_s": 5.0},
    ///     {"name": "free", "weight": 0.8, "slo_latency_s": 60.0}
    ///   ]
    /// }
    /// ```
    ///
    /// `popularity` defaults to uniform and `tenants` to none; unknown
    /// keys are rejected so typos cannot silently change a regime.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn from_json(text: &str) -> Result<Vec<Scenario>, String> {
        let value = json::parse(text)?;
        let object = value
            .as_object()
            .ok_or_else(|| "top level must be an object".to_string())?;
        if object.len() == 1 && object[0].0 == "scenarios" {
            let list = object[0]
                .1
                .as_array()
                .ok_or_else(|| "\"scenarios\" must be an array".to_string())?;
            if list.is_empty() {
                return Err("\"scenarios\" must not be empty".to_string());
            }
            return list.iter().map(parse_scenario).collect();
        }
        Ok(vec![parse_scenario(&value)?])
    }
}

fn parse_scenario(value: &json::Value) -> Result<Scenario, String> {
    let object = value
        .as_object()
        .ok_or_else(|| "each scenario must be an object".to_string())?;
    let mut name = None;
    let mut arrival = None;
    let mut popularity = Popularity::Uniform;
    let mut tenants = Vec::new();
    for (key, value) in object {
        match key.as_str() {
            "name" => {
                name = Some(
                    value
                        .as_str()
                        .ok_or_else(|| "\"name\" must be a string".to_string())?
                        .to_string(),
                );
            }
            "arrivals" => {
                let spec = value
                    .as_str()
                    .ok_or_else(|| "\"arrivals\" must be a spec string".to_string())?;
                arrival = Some(ArrivalProcess::parse(spec)?);
            }
            "popularity" => {
                let spec = value
                    .as_str()
                    .ok_or_else(|| "\"popularity\" must be a spec string".to_string())?;
                popularity = Popularity::parse(spec)?;
            }
            "tenants" => {
                let list = value
                    .as_array()
                    .ok_or_else(|| "\"tenants\" must be an array".to_string())?;
                for (i, entry) in list.iter().enumerate() {
                    tenants.push(parse_tenant(i, entry)?);
                }
            }
            other => {
                return Err(format!(
                    "unknown scenario key \"{other}\" \
                     (name | arrivals | popularity | tenants)"
                ));
            }
        }
    }
    Ok(Scenario {
        name: name.ok_or_else(|| "scenario missing \"name\"".to_string())?,
        arrival: arrival.ok_or_else(|| "scenario missing \"arrivals\"".to_string())?,
        popularity,
        tenants,
    })
}

fn parse_tenant(i: usize, value: &json::Value) -> Result<TenantClass, String> {
    let object = value
        .as_object()
        .ok_or_else(|| format!("tenant {i} must be an object"))?;
    let mut name = None;
    let mut weight = None;
    let mut slo = None;
    for (key, value) in object {
        match key.as_str() {
            "name" => {
                name = Some(
                    value
                        .as_str()
                        .ok_or_else(|| format!("tenant {i}: \"name\" must be a string"))?
                        .to_string(),
                );
            }
            "weight" => {
                weight = Some(
                    value
                        .as_f64()
                        .filter(|w| w.is_finite() && *w > 0.0)
                        .ok_or_else(|| format!("tenant {i}: \"weight\" must be positive"))?,
                );
            }
            "slo_latency_s" => {
                slo = Some(
                    value
                        .as_f64()
                        .filter(|s| s.is_finite() && *s > 0.0)
                        .ok_or_else(|| format!("tenant {i}: \"slo_latency_s\" must be positive"))?,
                );
            }
            other => {
                return Err(format!(
                    "tenant {i}: unknown key \"{other}\" (name | weight | slo_latency_s)"
                ));
            }
        }
    }
    Ok(TenantClass {
        name: name.ok_or_else(|| format!("tenant {i}: missing \"name\""))?,
        weight: weight.ok_or_else(|| format!("tenant {i}: missing \"weight\""))?,
        slo_latency_s: slo.ok_or_else(|| format!("tenant {i}: missing \"slo_latency_s\""))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean_rate(process: ArrivalProcess, seed: u64, arrivals: usize) -> f64 {
        let mut rng = Rng::new(seed);
        let mut state = ArrivalState::default();
        let mut now = SimTime::ZERO;
        for _ in 0..arrivals {
            now = now + process.next_gap(now, &mut rng, &mut state);
        }
        arrivals as f64 * process.batch().max(1) as f64
            / now.duration_since(SimTime::ZERO).as_secs_f64()
    }

    #[test]
    fn poisson_gap_matches_legacy_draw_site() {
        // Bit-compat guard: one exponential draw with mean 1/rate.
        let process = ArrivalProcess::Poisson { per_second: 2.0 };
        let mut rng = Rng::new(9);
        let gap = process.next_gap(SimTime::ZERO, &mut rng, &mut ArrivalState::default());
        let mut legacy = Rng::new(9);
        let expected = SimDuration::from_secs_f64(legacy.exponential(1.0 / 2.0));
        assert_eq!(gap, expected);
        assert_eq!(rng, legacy, "exactly one draw consumed");
    }

    #[test]
    fn every_second_consumes_no_draws() {
        let process = ArrivalProcess::EverySecond { jobs_per_tick: 3 };
        let mut rng = Rng::new(9);
        let gap = process.next_gap(SimTime::ZERO, &mut rng, &mut ArrivalState::default());
        assert_eq!(gap, SimDuration::from_secs(1));
        assert_eq!(rng, Rng::new(9), "zero draws consumed");
        assert_eq!(process.batch(), 3);
    }

    #[test]
    fn mmpp_rate_converges_to_dwell_weighted_mean() {
        let process = ArrivalProcess::Mmpp {
            calm_per_second: 0.2,
            burst_per_second: 4.0,
            mean_calm_s: 90.0,
            mean_burst_s: 30.0,
        };
        // Long-run mean: (0.2*90 + 4*30) / 120 = 1.15 jobs/s.
        let expected = process.mean_per_second(1e9);
        assert!((expected - 1.15).abs() < 1e-12);
        let rate = empirical_mean_rate(process, 5, 200_000);
        assert!(
            (rate / expected - 1.0).abs() < 0.05,
            "empirical {rate:.3} vs expected {expected:.3}"
        );
    }

    #[test]
    fn mmpp_gaps_are_burstier_than_poisson() {
        let mmpp = ArrivalProcess::Mmpp {
            calm_per_second: 0.05,
            burst_per_second: 5.0,
            mean_calm_s: 200.0,
            mean_burst_s: 20.0,
        };
        let mut rng = Rng::new(11);
        let mut state = ArrivalState::default();
        let mut stats = OnlineStats::new();
        let mut now = SimTime::ZERO;
        for _ in 0..100_000 {
            let gap = mmpp.next_gap(now, &mut rng, &mut state);
            stats.record(gap.as_secs_f64());
            now += gap;
        }
        assert!(
            stats.coefficient_of_variation() > 1.5,
            "MMPP CV {:.2} should exceed the Poisson CV of 1",
            stats.coefficient_of_variation()
        );
    }

    #[test]
    fn diurnal_rate_peaks_and_troughs() {
        let process = ArrivalProcess::Diurnal {
            mean_per_second: 1.0,
            relative_amplitude: 0.5,
            period_s: 100.0,
        };
        assert!((process.rate_at(25.0) - 1.5).abs() < 1e-12, "peak at T/4");
        assert!(
            (process.rate_at(75.0) - 0.5).abs() < 1e-12,
            "trough at 3T/4"
        );
        let rate = empirical_mean_rate(process, 7, 200_000);
        assert!(
            (rate / 1.0 - 1.0).abs() < 0.05,
            "empirical {rate:.3} vs mean 1.0"
        );
    }

    #[test]
    fn flash_crowd_rate_steps_inside_the_window() {
        let process = ArrivalProcess::FlashCrowd {
            base_per_second: 0.5,
            spike_at_s: 100.0,
            spike_duration_s: 50.0,
            spike_per_second: 8.0,
        };
        assert_eq!(process.rate_at(99.9), 0.5);
        assert_eq!(process.rate_at(100.0), 8.0);
        assert_eq!(process.rate_at(149.9), 8.0);
        assert_eq!(process.rate_at(150.0), 0.5);
        // Mean over 200 s: (0.5*150 + 8*50) / 200 = 2.375.
        assert!((process.mean_per_second(200.0) - 2.375).abs() < 1e-12);
    }

    #[test]
    fn spec_strings_round_trip_every_process() {
        for (spec, label) in [
            ("poisson:1.5", "poisson"),
            ("every-second:4", "every-second"),
            ("mmpp:0.1,5,120,15", "mmpp"),
            ("diurnal:1,0.8,86400", "diurnal"),
            ("flash:0.5,300,120,10", "flash-crowd"),
            ("flash-crowd:0.5,300,120,10", "flash-crowd"),
        ] {
            assert_eq!(
                ArrivalProcess::parse(spec).unwrap().label(),
                label,
                "{spec}"
            );
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        for (spec, needle) in [
            ("warp:1", "unknown arrival process"),
            ("poisson:1,2", "takes 1 parameter"),
            ("poisson:-3", "arrival rate must be positive"),
            ("poisson:zoom", "bad number"),
            ("mmpp:1,2,3", "takes 4 parameter"),
            ("diurnal:1,1.5,60", "amplitude must be in [0, 1]"),
            ("every-second:1.5", "whole job count"),
        ] {
            let err = ArrivalProcess::parse(spec).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn uniform_picker_matches_legacy_index_draw() {
        let picker = FunctionPicker::new(&Popularity::Uniform, 17);
        let mut rng = Rng::new(23);
        let picked = picker.pick(&mut rng);
        let mut legacy = Rng::new(23);
        assert_eq!(picked, legacy.index(17));
        assert_eq!(rng, legacy, "identical stream consumption");
    }

    #[test]
    fn zipf_concentrates_on_the_head() {
        let picker = FunctionPicker::new(&Popularity::Zipf { exponent: 1.1 }, 17);
        let mut rng = Rng::new(29);
        let mut counts = [0u32; 17];
        for _ in 0..20_000 {
            counts[picker.pick(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[8] && counts[8] > 0, "{counts:?}");
        let head: u32 = counts[..3].iter().sum();
        assert!(
            head > 10_000,
            "top 3 of 17 should take over half the draws, got {head}"
        );
    }

    #[test]
    fn hot_cold_split_matches_the_share() {
        let picker = FunctionPicker::new(
            &Popularity::HotCold {
                hot_functions: 2,
                hot_share: 0.9,
            },
            10,
        );
        let mut rng = Rng::new(31);
        let hot = (0..20_000).filter(|_| picker.pick(&mut rng) < 2).count();
        assert!((17_500..18_500).contains(&hot), "hot draws: {hot}");
    }

    #[test]
    fn popularity_specs_parse() {
        assert_eq!(Popularity::parse("uniform").unwrap(), Popularity::Uniform);
        assert_eq!(
            Popularity::parse("zipf:0.9").unwrap(),
            Popularity::Zipf { exponent: 0.9 }
        );
        assert_eq!(
            Popularity::parse("hot-cold:3,0.8").unwrap(),
            Popularity::HotCold {
                hot_functions: 3,
                hot_share: 0.8
            }
        );
        assert!(Popularity::parse("pareto:1").is_err());
        assert!(Popularity::parse("hot-cold:0,0.5").is_err());
        assert!(Popularity::parse("zipf:-1").is_err());
    }

    #[test]
    fn tenant_tracker_draws_nothing_without_classes() {
        let tracker = TenantTracker::new(&[]);
        let mut rng = Rng::new(37);
        assert_eq!(tracker.draw(&mut rng), 0);
        assert_eq!(rng, Rng::new(37), "zero draws consumed");
        assert!(tracker.summaries().is_empty());
    }

    #[test]
    fn tenant_tracker_attributes_slo_hits() {
        let classes = [
            TenantClass {
                name: "paid".to_string(),
                weight: 1.0,
                slo_latency_s: 5.0,
            },
            TenantClass {
                name: "free".to_string(),
                weight: 3.0,
                slo_latency_s: 60.0,
            },
        ];
        let mut tracker = TenantTracker::new(&classes);
        let mut rng = Rng::new(41);
        let mut shares = [0u32; 2];
        for _ in 0..10_000 {
            shares[tracker.draw(&mut rng) as usize] += 1;
        }
        assert!((2_200..2_800).contains(&shares[0]), "{shares:?}");
        tracker.record(0, 4.0);
        tracker.record(0, 6.0);
        tracker.record(1, 30.0);
        let summaries = tracker.summaries();
        assert_eq!(summaries[0].completed, 2);
        assert_eq!(summaries[0].slo_hits, 1);
        assert_eq!(summaries[0].attainment(), 0.5);
        assert_eq!(summaries[0].mean_latency_s, 5.0);
        assert_eq!(summaries[1].attainment(), 1.0);
    }

    #[test]
    fn scenario_json_round_trips() {
        let scenarios = Scenario::from_json(
            r#"{
                "name": "launch-day",
                "arrivals": "flash:0.5,300,120,10",
                "popularity": "zipf:1.1",
                "tenants": [
                    {"name": "paid", "weight": 0.2, "slo_latency_s": 5.0},
                    {"name": "free", "weight": 0.8, "slo_latency_s": 60.0}
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(scenarios.len(), 1);
        let s = &scenarios[0];
        assert_eq!(s.name, "launch-day");
        assert_eq!(s.arrival.label(), "flash-crowd");
        assert_eq!(s.popularity, Popularity::Zipf { exponent: 1.1 });
        assert_eq!(s.tenants.len(), 2);
        assert_eq!(s.tenants[1].slo_latency_s, 60.0);
    }

    #[test]
    fn scenario_json_accepts_a_list() {
        let scenarios = Scenario::from_json(
            r#"{"scenarios": [
                {"name": "a", "arrivals": "poisson:0.5"},
                {"name": "b", "arrivals": "mmpp:0.1,2,100,20"}
            ]}"#,
        )
        .unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].popularity, Popularity::Uniform);
        assert!(scenarios[1].tenants.is_empty());
    }

    #[test]
    fn scenario_json_rejects_typos_and_omissions() {
        for (text, needle) in [
            (r#"{"name": "x"}"#, "missing \"arrivals\""),
            (r#"{"arrivals": "poisson:1"}"#, "missing \"name\""),
            (
                r#"{"name": "x", "arrivals": "poisson:1", "popularty": "uniform"}"#,
                "unknown scenario key",
            ),
            (
                r#"{"name": "x", "arrivals": "poisson:1", "tenants": [{"name": "t", "weight": 1}]}"#,
                "missing \"slo_latency_s\"",
            ),
            (r#"{"scenarios": []}"#, "must not be empty"),
        ] {
            let err = Scenario::from_json(text).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn standard_suite_covers_every_process_shape() {
        let suite = Scenario::standard_suite();
        assert_eq!(suite.len(), 5);
        let labels: Vec<&str> = suite.iter().map(|s| s.arrival.label()).collect();
        for label in ["poisson", "mmpp", "diurnal", "flash-crowd"] {
            assert!(labels.contains(&label), "suite missing {label}");
        }
        assert!(
            suite
                .iter()
                .any(|s| s.popularity != Popularity::Uniform && !s.tenants.is_empty()),
            "one regime must exercise popularity skew and tenants"
        );
        for s in &suite {
            s.arrival.validate();
        }
    }
}
