//! Results of one cluster run — throughput, energy, and per-function
//! timing breakdowns.

use std::collections::BTreeMap;
use std::fmt;

use microfaas_energy::EnergyReport;
use microfaas_sim::span::{JobSpan, Phase};
use microfaas_sim::SimDuration;
use microfaas_workloads::FunctionId;

use crate::job::{aggregate, FunctionStats, Job, JobTable};

/// Why an invocation did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Killed by the per-invocation timeout (terminal: not retried).
    TimedOut,
    /// Shed from the queue to protect degraded capacity.
    Shed,
    /// Lost to faults after exhausting the retry budget.
    Failed,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::TimedOut => "timed_out",
            Outcome::Shed => "shed",
            Outcome::Failed => "failed",
        })
    }
}

/// One invocation that did not complete, with its typed [`Outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DroppedJob {
    /// The invocation.
    pub job: Job,
    /// Why it was dropped.
    pub outcome: Outcome,
    /// Retry attempts consumed before the drop.
    pub attempts: u32,
}

/// Counters for the fault-injection and recovery machinery
/// (see `docs/FAILURE_MODEL.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Faults fired from the active plan.
    pub injected: u64,
    /// In-flight jobs pulled back off failed workers.
    pub requeued: u64,
    /// Backoff retries scheduled by the orchestrator.
    pub retries: u64,
}

/// Everything measured during one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Human-readable label ("MicroFaaS (10 SBCs)", "Conventional (6 VMs)").
    pub label: String,
    /// Worker count (SBCs or VMs).
    pub workers: usize,
    /// Energy metering over the run.
    pub energy: EnergyReport,
    /// Wall-clock span from the first event to the last completion.
    pub makespan: SimDuration,
    /// Raw per-job records (successful invocations only), stored
    /// column-wise — see [`JobTable`].
    pub records: JobTable,
    /// Invocations that did not complete, each with a typed [`Outcome`].
    pub dropped: Vec<DroppedJob>,
    /// Fault-injection and recovery counters (all zero without a plan).
    pub faults: FaultSummary,
}

impl ClusterRun {
    /// Jobs completed.
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas::config::WorkloadMix;
    /// use microfaas::micro::{run_microfaas, MicroFaasConfig};
    ///
    /// let run = run_microfaas(&MicroFaasConfig::paper_prototype(WorkloadMix::quick(), 42));
    /// assert_eq!(run.jobs_completed(), run.records.len() as u64);
    /// assert!(run.jobs_completed() > 0);
    /// ```
    pub fn jobs_completed(&self) -> u64 {
        self.records.len() as u64
    }

    /// Invocations killed by the per-invocation timeout.
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas::config::WorkloadMix;
    /// use microfaas::micro::{run_microfaas, MicroFaasConfig};
    ///
    /// let run = run_microfaas(&MicroFaasConfig::paper_prototype(WorkloadMix::quick(), 42));
    /// assert_eq!(run.timed_out(), 0, "no timeout configured, no kills");
    /// ```
    pub fn timed_out(&self) -> u64 {
        self.count_outcome(Outcome::TimedOut)
    }

    /// Queued invocations shed under degraded capacity.
    pub fn shed(&self) -> u64 {
        self.count_outcome(Outcome::Shed)
    }

    /// Invocations lost to faults after exhausting their retry budget.
    pub fn failed(&self) -> u64 {
        self.count_outcome(Outcome::Failed)
    }

    fn count_outcome(&self, outcome: Outcome) -> u64 {
        self.dropped.iter().filter(|d| d.outcome == outcome).count() as u64
    }

    /// Every submitted invocation reached exactly one terminal state,
    /// so completions plus drops account for the whole workload.
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas::config::WorkloadMix;
    /// use microfaas::micro::{run_microfaas, MicroFaasConfig};
    ///
    /// let mix = WorkloadMix::quick();
    /// let submitted = mix.total_jobs();
    /// let run = run_microfaas(&MicroFaasConfig::paper_prototype(mix, 42));
    /// assert_eq!(run.jobs_accounted(), submitted);
    /// ```
    pub fn jobs_accounted(&self) -> u64 {
        self.jobs_completed() + self.dropped.len() as u64
    }

    /// Cluster throughput in functions per minute.
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas::config::WorkloadMix;
    /// use microfaas::micro::{run_microfaas, MicroFaasConfig};
    ///
    /// let run = run_microfaas(&MicroFaasConfig::paper_prototype(WorkloadMix::quick(), 42));
    /// let expected = run.jobs_completed() as f64 * 60.0 / run.makespan.as_secs_f64();
    /// assert_eq!(run.functions_per_minute(), expected);
    /// ```
    pub fn functions_per_minute(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.jobs_completed() as f64 * 60.0 / self.makespan.as_secs_f64()
    }

    /// Energy per function in joules.
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas::config::WorkloadMix;
    /// use microfaas::micro::{run_microfaas, MicroFaasConfig};
    ///
    /// let run = run_microfaas(&MicroFaasConfig::paper_prototype(WorkloadMix::quick(), 42));
    /// let jpf = run.joules_per_function().expect("jobs completed");
    /// // The paper's SBC cluster lands near 5.7 J per function.
    /// assert!((1.0..20.0).contains(&jpf));
    /// ```
    pub fn joules_per_function(&self) -> Option<f64> {
        self.energy.joules_per_function()
    }

    /// Per-function aggregation (the Fig. 3 bars).
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas::config::WorkloadMix;
    /// use microfaas::micro::{run_microfaas, MicroFaasConfig};
    /// use microfaas_workloads::FunctionId;
    ///
    /// let mix = WorkloadMix::new(vec![FunctionId::CascSha], 5);
    /// let run = run_microfaas(&MicroFaasConfig::paper_prototype(mix, 42));
    /// let stats = run.per_function();
    /// assert_eq!(stats.len(), 1);
    /// assert_eq!(stats[&FunctionId::CascSha].exec_ms.count(), 5);
    /// ```
    pub fn per_function(&self) -> BTreeMap<FunctionId, FunctionStats> {
        aggregate(&self.records)
    }

    /// Worker-visible job-time percentiles (exec + overhead) in
    /// milliseconds: `(p50, p95, p99)`. Returns `None` for an empty run.
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas::config::WorkloadMix;
    /// use microfaas::micro::{run_microfaas, MicroFaasConfig};
    ///
    /// let run = run_microfaas(&MicroFaasConfig::paper_prototype(WorkloadMix::quick(), 42));
    /// let (p50, p95, p99) = run.latency_percentiles_ms().expect("jobs completed");
    /// assert!(p50 <= p95 && p95 <= p99);
    /// ```
    pub fn latency_percentiles_ms(&self) -> Option<(f64, f64, f64)> {
        if self.records.is_empty() {
            return None;
        }
        let mut samples: microfaas_sim::Samples = self
            .records
            .iter()
            .map(|r| r.total().as_millis_f64())
            .collect();
        Some((
            samples.percentile(50.0).expect("non-empty"),
            samples.percentile(95.0).expect("non-empty"),
            samples.percentile(99.0).expect("non-empty"),
        ))
    }
}

/// Mean per-phase latency columns derived from causal [`JobSpan`]s
/// (see `docs/TRACING.md`), ready to append to a report table or CSV.
///
/// # Examples
///
/// ```
/// use microfaas::report::PhaseColumns;
/// use microfaas_sim::span::SpanTree;
/// use microfaas_sim::trace::{TraceBuffer, TraceEvent, TraceSink};
/// use microfaas_sim::{SimDuration, SimTime};
///
/// let mut t = TraceBuffer::new(16);
/// let us = SimTime::from_micros;
/// t.record(us(0), TraceEvent::JobEnqueued { job: 1, function: "CascSHA" });
/// t.record(us(100), TraceEvent::JobStarted { job: 1, function: "CascSHA", worker: 0 });
/// t.record(us(300), TraceEvent::ResponseSent { job: 1, function: "CascSHA", worker: 0 });
/// t.record(
///     us(320),
///     TraceEvent::JobCompleted {
///         job: 1,
///         function: "CascSHA",
///         worker: 0,
///         exec: SimDuration::from_micros(180),
///         overhead: SimDuration::from_micros(20),
///     },
/// );
///
/// let tree = SpanTree::from_buffer(&t);
/// let columns = PhaseColumns::from_spans(tree.jobs());
/// assert_eq!(columns.jobs, 1);
/// assert_eq!(columns.mean_ms, [0.1, 0.0, 0.18, 0.02, 0.02]);
/// assert!((columns.total_ms() - 0.32).abs() < 1e-12);
/// assert!(columns.to_string().contains("exec 0.180 ms"));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseColumns {
    /// Spans aggregated.
    pub jobs: u64,
    /// Mean milliseconds per phase, in [`Phase::ALL`] order
    /// (queue, boot, exec, overhead, response).
    pub mean_ms: [f64; 5],
}

impl PhaseColumns {
    /// Aggregates mean phase latencies over `spans` (all zero when
    /// empty).
    pub fn from_spans(spans: &[JobSpan]) -> PhaseColumns {
        let mut columns = PhaseColumns {
            jobs: spans.len() as u64,
            mean_ms: [0.0; 5],
        };
        if spans.is_empty() {
            return columns;
        }
        for span in spans {
            for (slot, duration) in columns.mean_ms.iter_mut().zip(span.phases()) {
                *slot += duration.as_millis_f64();
            }
        }
        for slot in &mut columns.mean_ms {
            *slot /= spans.len() as f64;
        }
        columns
    }

    /// Sum of the per-phase means — the mean end-to-end latency, since
    /// each span's phases sum exactly to its end-to-end time.
    pub fn total_ms(&self) -> f64 {
        self.mean_ms.iter().sum()
    }
}

impl fmt::Display for PhaseColumns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phase means over {} jobs:", self.jobs)?;
        for (phase, mean) in Phase::ALL.iter().zip(self.mean_ms) {
            write!(f, " {} {mean:.3} ms", phase.label())?;
        }
        write!(f, " (end-to-end {:.3} ms)", self.total_ms())
    }
}

impl fmt::Display for ClusterRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} jobs in {} ({:.1} func/min",
            self.label,
            self.jobs_completed(),
            self.makespan,
            self.functions_per_minute()
        )?;
        if let Some(jpf) = self.joules_per_function() {
            write!(f, ", {jpf:.2} J/func")?;
        }
        // Only faulted/timed-out runs mention drops, so fault-free
        // output stays byte-identical to builds without fault support.
        if !self.dropped.is_empty() {
            write!(f, ", {} dropped", self.dropped.len())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobRecord};
    use microfaas_sim::SimTime;

    fn run_with(records: Vec<JobRecord>, makespan_secs: u64, joules: f64) -> ClusterRun {
        let n = records.len() as u64;
        let records: JobTable = records.into_iter().collect();
        ClusterRun {
            label: "test".to_string(),
            workers: 2,
            energy: EnergyReport {
                total_joules: joules,
                elapsed_seconds: makespan_secs as f64,
                average_watts: joules / makespan_secs as f64,
                functions_completed: n,
            },
            makespan: SimDuration::from_secs(makespan_secs),
            records,
            dropped: vec![],
            faults: FaultSummary::default(),
        }
    }

    #[test]
    fn throughput_and_energy_math() {
        let records: Vec<JobRecord> = (0..120)
            .map(|i| JobRecord {
                job: Job {
                    id: i,
                    function: FunctionId::FloatOps,
                },
                worker: 0,
                started: SimTime::ZERO,
                exec: SimDuration::from_millis(100),
                overhead: SimDuration::from_millis(10),
            })
            .collect();
        let run = run_with(records, 60, 600.0);
        assert_eq!(run.functions_per_minute(), 120.0);
        assert_eq!(run.joules_per_function(), Some(5.0));
        assert!(run.to_string().contains("120.0 func/min"));
    }

    #[test]
    fn empty_run_is_safe() {
        let run = run_with(vec![], 1, 0.0);
        assert_eq!(run.jobs_completed(), 0);
        assert_eq!(run.joules_per_function(), None);
        assert_eq!(run.latency_percentiles_ms(), None);
    }

    #[test]
    fn latency_percentiles_ordered() {
        let records: Vec<JobRecord> = (1..=100)
            .map(|i| JobRecord {
                job: Job {
                    id: i,
                    function: FunctionId::FloatOps,
                },
                worker: 0,
                started: SimTime::ZERO,
                exec: SimDuration::from_millis(i * 10),
                overhead: SimDuration::ZERO,
            })
            .collect();
        let run = run_with(records, 60, 100.0);
        let (p50, p95, p99) = run.latency_percentiles_ms().expect("non-empty");
        assert_eq!((p50, p95, p99), (500.0, 950.0, 990.0));
    }

    #[test]
    fn phase_columns_handle_empty_span_sets() {
        let columns = PhaseColumns::from_spans(&[]);
        assert_eq!(columns.jobs, 0);
        assert_eq!(columns.total_ms(), 0.0);
        assert!(columns.to_string().starts_with("phase means over 0 jobs"));
    }

    #[test]
    fn dropped_jobs_split_by_outcome() {
        let mut run = run_with(vec![], 1, 0.0);
        for (id, outcome) in [
            (0, Outcome::TimedOut),
            (1, Outcome::TimedOut),
            (2, Outcome::Shed),
            (3, Outcome::Failed),
        ] {
            run.dropped.push(DroppedJob {
                job: Job {
                    id,
                    function: FunctionId::CascSha,
                },
                outcome,
                attempts: if outcome == Outcome::Failed { 3 } else { 0 },
            });
        }
        assert_eq!(run.timed_out(), 2);
        assert_eq!(run.shed(), 1);
        assert_eq!(run.failed(), 1);
        assert_eq!(run.jobs_accounted(), 4);
        assert!(run.to_string().contains("4 dropped"));
        assert_eq!(Outcome::TimedOut.to_string(), "timed_out");
    }
}
