//! The platform's front door: a minimal HTTP/1.1 layer that accepts
//! `POST /invoke/<function>` requests, resolves them through the
//! [`crate::registry::FunctionRegistry`], executes the handler for real,
//! and renders an HTTP response.
//!
//! The paper's orchestration plane speaks an ad-hoc protocol; a platform
//! a user would adopt exposes HTTP like every commercial FaaS. The
//! parser is hand-rolled (request line, headers, fixed-length body) to
//! keep the workspace dependency-free.

use std::collections::BTreeMap;
use std::fmt;

use microfaas_sim::{MetricsRegistry, Rng};
use microfaas_workloads::interp::Script;
use microfaas_workloads::suite::{run_function, ServiceBackends};

use crate::cache::{fnv1a, fnv1a_extend, CacheConfig, ResultCache};
use crate::registry::FunctionRegistry;

/// Fuel budget for one scripted invocation — the interpreter-level
/// analog of the platform timeout.
const SCRIPT_FUEL: u64 = 10_000_000;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method (`GET`, `POST`, …), uppercase.
    pub method: String,
    /// Request target (`/invoke/CascSHA`).
    pub path: String,
    /// Header map, keys lowercase.
    pub headers: BTreeMap<String, String>,
    /// Body bytes (per `content-length`).
    pub body: Vec<u8>,
}

/// Errors from parsing an HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseHttpError {
    /// The data ended before the request was complete.
    Incomplete,
    /// The request violates HTTP/1.1 framing.
    Malformed(String),
    /// The HTTP version is not 1.0/1.1.
    UnsupportedVersion(String),
}

impl fmt::Display for ParseHttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseHttpError::Incomplete => write!(f, "incomplete http request"),
            ParseHttpError::Malformed(why) => write!(f, "malformed http request: {why}"),
            ParseHttpError::UnsupportedVersion(v) => write!(f, "unsupported version '{v}'"),
        }
    }
}

impl std::error::Error for ParseHttpError {}

impl HttpRequest {
    /// Parses one request from `input`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseHttpError`] for truncated or malformed requests.
    pub fn parse(input: &[u8]) -> Result<HttpRequest, ParseHttpError> {
        let header_end = find_subsequence(input, b"\r\n\r\n").ok_or(ParseHttpError::Incomplete)?;
        let head = std::str::from_utf8(&input[..header_end])
            .map_err(|_| ParseHttpError::Malformed("non-utf8 header block".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or(ParseHttpError::Incomplete)?;
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| ParseHttpError::Malformed("missing method".into()))?
            .to_ascii_uppercase();
        let path = parts
            .next()
            .ok_or_else(|| ParseHttpError::Malformed("missing path".into()))?
            .to_string();
        let version = parts
            .next()
            .ok_or_else(|| ParseHttpError::Malformed("missing version".into()))?;
        if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
            return Err(ParseHttpError::UnsupportedVersion(version.to_string()));
        }
        if parts.next().is_some() {
            return Err(ParseHttpError::Malformed(
                "extra tokens in request line".into(),
            ));
        }

        let mut headers = BTreeMap::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| ParseHttpError::Malformed(format!("bad header '{line}'")))?;
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }

        let body_start = header_end + 4;
        let content_length: usize = match headers.get("content-length") {
            None => 0,
            Some(raw) => raw
                .parse()
                .map_err(|_| ParseHttpError::Malformed(format!("bad content-length '{raw}'")))?,
        };
        if input.len() < body_start + content_length {
            return Err(ParseHttpError::Incomplete);
        }
        Ok(HttpRequest {
            method,
            path,
            headers,
            body: input[body_start..body_start + content_length].to_vec(),
        })
    }
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Content type of the body.
    pub content_type: String,
}

impl HttpResponse {
    fn new(status: u16, body: impl Into<Vec<u8>>, content_type: &str) -> Self {
        HttpResponse {
            status,
            body: body.into(),
            content_type: content_type.to_string(),
        }
    }

    /// Renders the response as HTTP/1.1 wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            504 => "Gateway Timeout",
            _ => "Unknown",
        };
        let mut out = format!(
            "HTTP/1.1 {} {reason}\r\ncontent-type: {}\r\ncontent-length: {}\r\n\r\n",
            self.status,
            self.content_type,
            self.body.len()
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// The invocation gateway: HTTP in, function execution, HTTP out.
///
/// # Examples
///
/// ```
/// use microfaas::gateway::Gateway;
/// use microfaas::registry::FunctionRegistry;
///
/// let mut gateway = Gateway::new(FunctionRegistry::paper_suite(), 7);
/// let response = gateway.handle(b"POST /invoke/RegExMatch HTTP/1.1\r\n\r\n");
/// assert_eq!(response.status, 200);
/// ```
#[derive(Debug)]
pub struct Gateway {
    registry: FunctionRegistry,
    backends: ServiceBackends,
    scripts: BTreeMap<String, Script>,
    rng: Rng,
    invocations: u64,
    metrics: MetricsRegistry,
    /// Content-addressed response cache (see [`Gateway::with_cache`]);
    /// `None` keeps the gateway byte-identical to pre-cache builds.
    cache: Option<ResultCache<CachedResponse>>,
    /// Monotonic `/invoke/` request counter, doubling as the cache's
    /// TTL clock: the gateway has no simulated time, so `ttl=N` means
    /// "valid for the next N invoke requests".
    invoke_ticks: u64,
}

/// The stored value of one cached invocation: everything needed to
/// replay the HTTP 200 without running the handler.
#[derive(Debug, Clone)]
struct CachedResponse {
    body: Vec<u8>,
    content_type: String,
}

impl Gateway {
    /// Creates a gateway over `registry`, with freshly seeded backends
    /// and no result cache.
    pub fn new(registry: FunctionRegistry, seed: u64) -> Self {
        Gateway::with_cache(registry, seed, CacheConfig::Off)
    }

    /// [`Gateway::new`] with a content-addressed result cache in front
    /// of the handlers. Responses are keyed on the FNV-1a hash of the
    /// function name plus the canonical request body, so only an
    /// identical invocation replays a stored 200 — without calling
    /// [`run_function`] at all. TTLs count `/invoke/` requests (the
    /// gateway has no simulated clock).
    ///
    /// # Panics
    ///
    /// Panics if `cache` fails [`CacheConfig::try_validate`].
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas::cache::CacheConfig;
    /// use microfaas::gateway::Gateway;
    /// use microfaas::registry::FunctionRegistry;
    ///
    /// let cache = CacheConfig::parse("lru:256,ttl=100").expect("valid spec");
    /// let mut gw = Gateway::with_cache(FunctionRegistry::paper_suite(), 7, cache);
    /// let first = gw.handle(b"POST /invoke/CascSHA HTTP/1.1\r\n\r\n");
    /// let repeat = gw.handle(b"POST /invoke/CascSHA HTTP/1.1\r\n\r\n");
    /// assert_eq!(first.body, repeat.body);
    /// assert_eq!(gw.invocations(), 1, "the repeat never executed");
    /// ```
    pub fn with_cache(registry: FunctionRegistry, seed: u64, cache: CacheConfig) -> Self {
        cache.try_validate().expect("invalid cache config");
        // The spec's `ttl=N` is parsed as N seconds of simulated time,
        // but the gateway's clock is the invoke counter — so re-read the
        // TTL as N ticks rather than going through `from_config`, whose
        // microsecond conversion only fits the simulation engines.
        let cache = match cache {
            CacheConfig::Off => None,
            CacheConfig::Lru { capacity, ttl, .. } => Some(ResultCache::new(
                capacity,
                ttl.map(|t| t.as_micros() / 1_000_000),
            )),
        };
        Gateway {
            registry,
            backends: ServiceBackends::seeded(),
            scripts: BTreeMap::new(),
            rng: Rng::new(seed),
            invocations: 0,
            metrics: MetricsRegistry::new(),
            cache,
            invoke_ticks: 0,
        }
    }

    /// Total successful invocations served.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// The gateway's own operational metrics (`gateway_*`), also served
    /// over HTTP at `GET /metrics`.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn bump(&mut self, name: &str) {
        let counter = self.metrics.counter(name);
        self.metrics.inc(counter);
    }

    /// Handles one raw HTTP request and produces the response.
    ///
    /// Routes:
    /// * `POST /invoke/<name>` — execute a built-in or scripted function;
    /// * `POST /deploy/<name>` — deploy the request body as a script
    ///   (the MicroPython-style user-authored handler);
    /// * `GET /functions` — list deployments, one name per line;
    /// * `GET /metrics` — Prometheus text exposition of `gateway_*`;
    /// * `GET /healthz` — liveness probe.
    pub fn handle(&mut self, raw: &[u8]) -> HttpResponse {
        let response = self.route(raw);
        let counter = self.metrics.counter(&format!(
            "gateway_responses_total{{status=\"{}\"}}",
            response.status
        ));
        self.metrics.inc(counter);
        if response.status == 200 {
            // The gateway-side counterpart of the simulators'
            // `response_sent` trace anchor (see docs/TRACING.md): a
            // successful response left for the caller.
            self.bump("gateway_responses_sent_total");
        }
        response
    }

    fn route(&mut self, raw: &[u8]) -> HttpResponse {
        let request = match HttpRequest::parse(raw) {
            Ok(request) => request,
            Err(e) => return HttpResponse::new(400, e.to_string(), "text/plain"),
        };
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => HttpResponse::new(200, "ok", "text/plain"),
            ("GET", "/metrics") => HttpResponse::new(
                200,
                self.metrics.render_prometheus(),
                "text/plain; version=0.0.4",
            ),
            ("GET", "/functions") => {
                let mut names: Vec<&str> = self.registry.names();
                names.extend(self.scripts.keys().map(String::as_str));
                names.sort_unstable();
                HttpResponse::new(200, names.join("\n"), "text/plain")
            }
            ("POST", path) if path.starts_with("/deploy/") => {
                let name = path["/deploy/".len()..].to_string();
                if name.is_empty() {
                    return HttpResponse::new(400, "missing function name", "text/plain");
                }
                if self.registry.resolve(&name).is_ok() || self.scripts.contains_key(&name) {
                    return HttpResponse::new(
                        400,
                        format!("'{name}' already deployed"),
                        "text/plain",
                    );
                }
                let source = match std::str::from_utf8(&request.body) {
                    Ok(source) => source,
                    Err(_) => return HttpResponse::new(400, "script must be utf-8", "text/plain"),
                };
                match Script::compile(source) {
                    Ok(script) => {
                        self.scripts.insert(name.clone(), script);
                        self.bump("gateway_deploys_total");
                        HttpResponse::new(200, format!("deployed {name}"), "text/plain")
                    }
                    Err(e) => HttpResponse::new(400, e.to_string(), "text/plain"),
                }
            }
            ("POST", path) if path.starts_with("/invoke/") => {
                let name = path["/invoke/".len()..].to_string();
                // The content key: function name plus canonical request
                // body, so only a byte-identical invocation can replay
                // a stored response.
                let key = fnv1a_extend(fnv1a(name.as_bytes()), &request.body);
                self.invoke_ticks += 1;
                let now = self.invoke_ticks;
                let cached = match self.cache.as_mut() {
                    Some(cache) => cache
                        .lookup(key, now)
                        .map(|hit| HttpResponse::new(200, hit.body.clone(), &hit.content_type)),
                    None => None,
                };
                if let Some(response) = cached {
                    // Served straight from the store: `run_function` is
                    // never called and `invocations` does not move.
                    self.bump("gateway_cache_hits_total");
                    return response;
                }
                if self.cache.is_some() {
                    self.bump("gateway_cache_misses_total");
                }
                let response = self.execute_invoke(&name);
                if response.status == 200 {
                    if let Some(cache) = self.cache.as_mut() {
                        cache.insert(
                            key,
                            CachedResponse {
                                body: response.body.clone(),
                                content_type: response.content_type.clone(),
                            },
                            now,
                        );
                    }
                }
                response
            }
            ("POST" | "GET", _) => HttpResponse::new(404, "no such route", "text/plain"),
            _ => HttpResponse::new(405, "method not allowed", "text/plain"),
        }
    }

    /// Runs one `/invoke/<name>` for real — scripted handlers first,
    /// then registry builtins — and renders the response.
    fn execute_invoke(&mut self, name: &str) -> HttpResponse {
        if let Some(script) = self.scripts.get(name) {
            return match script.run(SCRIPT_FUEL) {
                Ok(value) => {
                    self.invocations += 1;
                    self.bump("gateway_invocations_total");
                    HttpResponse::new(200, value.to_string(), "text/plain")
                }
                // Fuel exhaustion is the interpreter-level
                // invocation timeout, so it maps to 504 like any
                // upstream that never answered, not to a 500.
                Err(e @ microfaas_workloads::interp::ScriptError::OutOfFuel) => {
                    self.bump("gateway_timeouts_total");
                    HttpResponse::new(504, e.to_string(), "text/plain")
                }
                Err(e) => HttpResponse::new(500, e.to_string(), "text/plain"),
            };
        }
        match self.registry.resolve(name) {
            Err(e) => HttpResponse::new(404, e.to_string(), "text/plain"),
            Ok(spec) => {
                let handler = spec.handler;
                match run_function(handler, 1, &mut self.rng, &mut self.backends) {
                    Ok(output) => {
                        self.invocations += 1;
                        self.bump("gateway_invocations_total");
                        HttpResponse::new(200, output.summary, "text/plain")
                    }
                    Err(e) => HttpResponse::new(500, e.to_string(), "text/plain"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gateway() -> Gateway {
        Gateway::new(FunctionRegistry::paper_suite(), 42)
    }

    #[test]
    fn parse_post_with_body() {
        let raw = b"POST /invoke/CascSHA HTTP/1.1\r\ncontent-length: 5\r\nx-id: 7\r\n\r\nhello";
        let request = HttpRequest::parse(raw).expect("valid");
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/invoke/CascSHA");
        assert_eq!(request.headers["content-length"], "5");
        assert_eq!(request.headers["x-id"], "7");
        assert_eq!(request.body, b"hello");
    }

    #[test]
    fn parse_rejects_truncation_and_garbage() {
        assert_eq!(
            HttpRequest::parse(b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort"),
            Err(ParseHttpError::Incomplete)
        );
        assert_eq!(
            HttpRequest::parse(b"GET /x"),
            Err(ParseHttpError::Incomplete)
        );
        assert!(matches!(
            HttpRequest::parse(b"GET /x HTTP/2\r\n\r\n"),
            Err(ParseHttpError::UnsupportedVersion(_))
        ));
        assert!(matches!(
            HttpRequest::parse(b"GET /x HTTP/1.1 extra\r\n\r\n"),
            Err(ParseHttpError::Malformed(_))
        ));
        assert!(matches!(
            HttpRequest::parse(b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n"),
            Err(ParseHttpError::Malformed(_))
        ));
    }

    #[test]
    fn invoke_route_runs_the_function() {
        let mut gw = gateway();
        let response = gw.handle(b"POST /invoke/RegExMatch HTTP/1.1\r\n\r\n");
        assert_eq!(response.status, 200);
        assert!(String::from_utf8(response.body)
            .expect("utf-8")
            .contains("matched"));
        assert_eq!(gw.invocations(), 1);
    }

    #[test]
    fn unknown_function_is_404() {
        let mut gw = gateway();
        let response = gw.handle(b"POST /invoke/Nope HTTP/1.1\r\n\r\n");
        assert_eq!(response.status, 404);
        assert_eq!(gw.invocations(), 0);
    }

    #[test]
    fn listing_and_health_routes() {
        let mut gw = gateway();
        let response = gw.handle(b"GET /functions HTTP/1.1\r\n\r\n");
        assert_eq!(response.status, 200);
        let listing = String::from_utf8(response.body).expect("utf-8");
        assert_eq!(listing.lines().count(), 17);
        assert!(listing.contains("COSGet"));
        assert_eq!(gw.handle(b"GET /healthz HTTP/1.1\r\n\r\n").status, 200);
    }

    #[test]
    fn wrong_method_and_route() {
        let mut gw = gateway();
        assert_eq!(
            gw.handle(b"GET /invoke/CascSHA HTTP/1.1\r\n\r\n").status,
            404
        );
        assert_eq!(gw.handle(b"DELETE /functions HTTP/1.1\r\n\r\n").status, 405);
        assert_eq!(gw.handle(b"total garbage").status, 400);
    }

    #[test]
    fn response_encoding_is_valid_http() {
        let response = HttpResponse::new(200, "hello", "text/plain");
        let wire = String::from_utf8(response.encode()).expect("utf-8");
        assert!(wire.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(wire.contains("content-length: 5\r\n"));
        assert!(wire.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn content_length_always_tracks_the_final_body() {
        // Regression guard for the classic stale-length bug: the header
        // must be computed from the body at encode time, in one place —
        // mutating the body after construction (as a handler or the
        // cache-replay path may) must never ship the old length.
        let mut response = HttpResponse::new(200, "hello", "text/plain");
        response.body = b"a considerably longer body than before".to_vec();
        let wire = String::from_utf8(response.encode()).expect("utf-8");
        assert!(
            wire.contains(&format!("content-length: {}\r\n", response.body.len())),
            "stale content-length in: {wire}"
        );
        assert!(!wire.contains("content-length: 5\r\n"));

        response.body.clear();
        let wire = String::from_utf8(response.encode()).expect("utf-8");
        assert!(wire.contains("content-length: 0\r\n"));
        assert!(wire.ends_with("\r\n\r\n"), "an empty body follows the CRLF");
    }

    fn cached_gateway(spec: &str) -> Gateway {
        Gateway::with_cache(
            FunctionRegistry::paper_suite(),
            42,
            CacheConfig::parse(spec).expect("valid spec"),
        )
    }

    #[test]
    fn cache_replays_identical_invocations_without_executing() {
        let mut gw = cached_gateway("lru:64");
        let first = gw.handle(b"POST /invoke/CascSHA HTTP/1.1\r\n\r\n");
        assert_eq!(first.status, 200);
        assert_eq!(gw.invocations(), 1);
        let repeat = gw.handle(b"POST /invoke/CascSHA HTTP/1.1\r\n\r\n");
        assert_eq!(repeat.status, 200);
        assert_eq!(repeat.body, first.body, "hits replay the stored body");
        assert_eq!(gw.invocations(), 1, "the repeat never ran the handler");

        // A different body is a different content key.
        let other = gw.handle(b"POST /invoke/CascSHA HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello");
        assert_eq!(other.status, 200);
        assert_eq!(gw.invocations(), 2, "a new payload must execute");

        let metrics = gw.handle(b"GET /metrics HTTP/1.1\r\n\r\n");
        let text = String::from_utf8(metrics.body).expect("utf-8");
        assert!(text.contains("gateway_cache_hits_total 1"));
        assert!(text.contains("gateway_cache_misses_total 2"));
    }

    #[test]
    fn cache_ttl_counts_invoke_requests() {
        // ttl=2: an entry stored at tick N expires once the clock
        // passes N+2, so the third request after it re-executes.
        let mut gw = cached_gateway("lru:64,ttl=2");
        assert_eq!(
            gw.handle(b"POST /invoke/CascSHA HTTP/1.1\r\n\r\n").status,
            200
        );
        assert_eq!(
            gw.handle(b"POST /invoke/CascSHA HTTP/1.1\r\n\r\n").status,
            200
        );
        assert_eq!(gw.invocations(), 1, "tick 2 is still within the TTL");
        assert_eq!(
            gw.handle(b"POST /invoke/RegExMatch HTTP/1.1\r\n\r\n")
                .status,
            200
        );
        assert_eq!(
            gw.handle(b"POST /invoke/CascSHA HTTP/1.1\r\n\r\n").status,
            200
        );
        assert_eq!(gw.invocations(), 3, "tick 4 is past the TTL: re-executed");
    }

    #[test]
    fn default_gateway_exposition_is_cache_free() {
        let mut gw = gateway();
        assert_eq!(
            gw.handle(b"POST /invoke/CascSHA HTTP/1.1\r\n\r\n").status,
            200
        );
        let metrics = gw.handle(b"GET /metrics HTTP/1.1\r\n\r\n");
        let text = String::from_utf8(metrics.body).expect("utf-8");
        assert!(
            !text.contains("cache"),
            "cache-off gateways must not grow cache series"
        );
    }

    #[test]
    fn scripted_functions_deploy_and_invoke() {
        let mut gw = gateway();
        let script = "let total = 0;\nlet i = 1;\nwhile i <= 4 { total = total + i; i = i + 1; }\nreturn total;";
        let deploy = format!(
            "POST /deploy/summer HTTP/1.1\r\ncontent-length: {}\r\n\r\n{script}",
            script.len()
        );
        assert_eq!(gw.handle(deploy.as_bytes()).status, 200);

        let response = gw.handle(b"POST /invoke/summer HTTP/1.1\r\n\r\n");
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"10");
        assert_eq!(gw.invocations(), 1);

        // Listed alongside the builtins.
        let listing = gw.handle(b"GET /functions HTTP/1.1\r\n\r\n");
        let text = String::from_utf8(listing.body).expect("utf-8");
        assert!(text.lines().any(|l| l == "summer"));
        assert_eq!(text.lines().count(), 18);
    }

    #[test]
    fn bad_scripts_and_duplicates_rejected() {
        let mut gw = gateway();
        let bad = "POST /deploy/broken HTTP/1.1\r\ncontent-length: 9\r\n\r\nreturn 1@";
        assert_eq!(gw.handle(bad.as_bytes()).status, 400);
        // Shadowing a builtin is refused.
        let shadow = "POST /deploy/CascSHA HTTP/1.1\r\ncontent-length: 9\r\n\r\nreturn 1;";
        assert_eq!(gw.handle(shadow.as_bytes()).status, 400);
        assert_eq!(gw.handle(b"POST /deploy/ HTTP/1.1\r\n\r\n").status, 400);
    }

    #[test]
    fn runaway_script_is_killed_by_fuel() {
        let mut gw = gateway();
        let script = "while true { let x = 1; }";
        let deploy = format!(
            "POST /deploy/spin HTTP/1.1\r\ncontent-length: {}\r\n\r\n{script}",
            script.len()
        );
        assert_eq!(gw.handle(deploy.as_bytes()).status, 200);
        let response = gw.handle(b"POST /invoke/spin HTTP/1.1\r\n\r\n");
        assert_eq!(response.status, 504, "a runaway invocation times out");
        assert!(String::from_utf8(response.body)
            .expect("utf-8")
            .contains("fuel"));
        assert_eq!(gw.invocations(), 0);
        let metrics = gw.handle(b"GET /metrics HTTP/1.1\r\n\r\n");
        let text = String::from_utf8(metrics.body).expect("utf-8");
        assert!(text.contains("gateway_timeouts_total 1"));
        assert!(text.contains("gateway_responses_total{status=\"504\"} 1"));
    }

    #[test]
    fn metrics_route_exposes_counters() {
        let mut gw = gateway();
        assert_eq!(
            gw.handle(b"POST /invoke/RegExMatch HTTP/1.1\r\n\r\n")
                .status,
            200
        );
        assert_eq!(gw.handle(b"POST /invoke/Nope HTTP/1.1\r\n\r\n").status, 404);

        let response = gw.handle(b"GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(response.status, 200);
        assert_eq!(response.content_type, "text/plain; version=0.0.4");
        let text = String::from_utf8(response.body).expect("utf-8");
        assert!(text.contains("gateway_invocations_total 1"));
        assert!(text.contains("gateway_responses_total{status=\"200\"} 1"));
        assert!(text.contains("gateway_responses_total{status=\"404\"} 1"));
        assert!(text.contains("gateway_responses_sent_total 1"));
        assert!(text.contains("# HELP gateway_responses_sent_total"));
        // The registry view matches the HTTP exposition.
        assert!(gw
            .metrics()
            .render_prometheus()
            .contains("gateway_invocations_total 1"));
    }

    #[test]
    fn every_paper_function_serves_over_http() {
        let mut gw = gateway();
        for name in FunctionRegistry::paper_suite().names() {
            let raw = format!("POST /invoke/{name} HTTP/1.1\r\n\r\n");
            let response = gw.handle(raw.as_bytes());
            assert_eq!(response.status, 200, "{name} must serve");
        }
        assert_eq!(gw.invocations(), 17);
    }
}
