//! The MicroFaaS cluster simulator: SBC workers driven by the
//! orchestration plane through GPIO power control, run-to-completion
//! scheduling, reboots between jobs, and power-gating of idle nodes.

use microfaas_energy::EnergyMeter;
use microfaas_hw::gpio::{PowerAction, PowerController};
use microfaas_hw::sbc::SbcNode;
use microfaas_net::{LinkSpec, Network, NodeId};
use microfaas_sim::trace::{Endpoint, Observer, TraceEvent, WorkerState};
use microfaas_sim::{
    CounterId, EventId, EventQueue, HistogramId, MetricsRegistry, Rng, SimDuration, SimTime,
};
use microfaas_workloads::calibration::{service_time, WorkerPlatform};
use microfaas_workloads::FunctionId;

use crate::config::{Assignment, Jitter, WorkloadMix};
use crate::job::{Dispatcher, Job, JobRecord};
use crate::report::ClusterRun;

/// Configuration of a MicroFaaS cluster run.
#[derive(Debug, Clone)]
pub struct MicroFaasConfig {
    /// Number of SBC worker nodes (the paper's prototype has 10).
    pub workers: usize,
    /// Workload to run.
    pub mix: WorkloadMix,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Run-to-run service-time variation.
    pub jitter: Jitter,
    /// Worker NIC line rate. The BeagleBone's Fast Ethernet is the
    /// default; set 1 Gb/s for the paper's NIC-upgrade what-if.
    pub worker_nic_bits_per_sec: u64,
    /// Reboot to a clean state between jobs (the paper's policy).
    /// Disabling is an ablation that trades isolation for throughput.
    pub reboot_between_jobs: bool,
    /// Power nodes fully off when their queue drains (the paper's
    /// energy-proportionality mechanism). Disabling leaves idle nodes in
    /// 0.128 W standby.
    pub power_gating: bool,
    /// Models the paper's "cryptographic accelerator" what-if: scales
    /// CascSHA/CascMD5/AES128 execution by this factor (1.0 = stock).
    pub crypto_exec_scale: f64,
    /// How the orchestration plane maps jobs to workers.
    pub assignment: Assignment,
    /// NIC line rate of the backing-service hosts. GigE by default; set
    /// 100 Mb/s to model services hosted on SBCs (as the paper's testbed
    /// wires them), which turns the service port into a shared
    /// bottleneck at scale — the effect Gand et al. report for their
    /// 8-Pi cluster.
    pub service_nic_bits_per_sec: u64,
    /// Kill invocations that run longer than this (platform timeout).
    /// `None` is the paper's pure run-to-completion model.
    pub invocation_timeout: Option<SimDuration>,
}

impl MicroFaasConfig {
    /// The paper's prototype: 10 SBCs, Fast Ethernet, reboot + power-gate.
    pub fn paper_prototype(mix: WorkloadMix, seed: u64) -> Self {
        MicroFaasConfig {
            workers: 10,
            mix,
            seed,
            jitter: Jitter::default_run_to_run(),
            worker_nic_bits_per_sec: 100_000_000,
            reboot_between_jobs: true,
            power_gating: true,
            crypto_exec_scale: 1.0,
            assignment: Assignment::WorkConserving,
            service_nic_bits_per_sec: 1_000_000_000,
            invocation_timeout: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// GPIO press registered; the node starts booting.
    PowerEffective(usize),
    /// Worker OS reached the network; node is ready for a job.
    BootDone(usize),
    /// Function body finished; the result/overhead phase begins.
    ExecDone(usize),
    /// Result delivered; the job is complete.
    JobDone(usize),
    /// The platform timeout fired; the invocation is killed.
    TimedOut(usize),
}

struct InFlight {
    job: Job,
    started: SimTime,
    exec: SimDuration,
    /// The next scheduled progress event (ExecDone, then JobDone),
    /// cancelled if the timeout fires first.
    pending: EventId,
    /// The timeout event, cancelled when the job completes in time.
    timeout: Option<EventId>,
}

/// Histogram bucket upper bounds (seconds) shared by the cluster
/// simulators so micro/conventional exec and overhead distributions
/// land in comparable buckets.
pub(crate) const EXEC_BUCKETS: [f64; 9] = [0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0];
/// See [`EXEC_BUCKETS`]; overheads are an order of magnitude smaller.
pub(crate) const OVERHEAD_BUCKETS: [f64; 9] = [0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5];

/// Per-run metric handles for this cluster, all prefixed `micro_`.
struct MicroMetrics {
    jobs_enqueued: CounterId,
    jobs_completed: CounterId,
    jobs_timed_out: CounterId,
    boots: CounterId,
    net_bytes: CounterId,
    exec_seconds: HistogramId,
    overhead_seconds: HistogramId,
}

impl MicroMetrics {
    fn register(metrics: &mut MetricsRegistry) -> Self {
        MicroMetrics {
            jobs_enqueued: metrics.counter("micro_jobs_enqueued_total"),
            jobs_completed: metrics.counter("micro_jobs_completed_total"),
            jobs_timed_out: metrics.counter("micro_jobs_timed_out_total"),
            boots: metrics.counter("micro_worker_boots_total"),
            net_bytes: metrics.counter("micro_net_bytes_total"),
            exec_seconds: metrics.histogram("micro_exec_seconds", &EXEC_BUCKETS),
            overhead_seconds: metrics.histogram("micro_overhead_seconds", &OVERHEAD_BUCKETS),
        }
    }
}

/// Runs the configured cluster to completion and reports the results.
///
/// # Panics
///
/// Panics if `workers` is zero or `crypto_exec_scale` is not in (0, 1].
///
/// # Examples
///
/// ```
/// use microfaas::config::WorkloadMix;
/// use microfaas::micro::{run_microfaas, MicroFaasConfig};
/// use microfaas_workloads::FunctionId;
///
/// let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 20);
/// let run = run_microfaas(&MicroFaasConfig::paper_prototype(mix, 42));
/// assert_eq!(run.jobs_completed(), 20);
/// ```
pub fn run_microfaas(config: &MicroFaasConfig) -> ClusterRun {
    run_microfaas_with(config, &mut Observer::disabled())
}

/// Runs the cluster while reporting trace events and `micro_*` metrics
/// into `observer`. [`run_microfaas`] is this entry point with
/// [`Observer::disabled`]; the simulated results are bit-identical
/// either way because observation never touches the run's RNG.
///
/// # Panics
///
/// Panics under the same conditions as [`run_microfaas`].
///
/// # Examples
///
/// ```
/// use microfaas::config::WorkloadMix;
/// use microfaas::micro::{run_microfaas_with, MicroFaasConfig};
/// use microfaas_sim::trace::{Observer, TraceBuffer};
/// use microfaas_sim::MetricsRegistry;
/// use microfaas_workloads::FunctionId;
///
/// let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 5);
/// let config = MicroFaasConfig::paper_prototype(mix, 42);
/// let mut trace = TraceBuffer::new(4096);
/// let mut metrics = MetricsRegistry::new();
/// let run = run_microfaas_with(&config, &mut Observer::full(&mut trace, &mut metrics));
/// assert_eq!(run.jobs_completed(), 5);
/// assert!(metrics.render_prometheus().contains("micro_jobs_completed_total 5"));
/// assert!(trace.to_json_lines().lines().count() > 5);
/// ```
pub fn run_microfaas_with(config: &MicroFaasConfig, observer: &mut Observer<'_>) -> ClusterRun {
    assert!(config.workers > 0, "cluster needs at least one worker");
    assert!(
        config.crypto_exec_scale > 0.0 && config.crypto_exec_scale <= 1.0,
        "crypto accelerator can only speed execution up"
    );

    let mut rng = Rng::new(config.seed);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut gpio = PowerController::new(config.workers);
    let mut meter = EnergyMeter::new(SimTime::ZERO);

    // Network topology: workers on their (possibly upgraded) NICs; the
    // orchestrator and the four service hosts on GigE so each cluster's
    // own worker NIC is the bottleneck.
    let worker_link = LinkSpec {
        bits_per_sec: config.worker_nic_bits_per_sec,
        latency: LinkSpec::fast_ethernet().latency,
    };
    let mut net = Network::new(LinkSpec::gigabit());
    let worker_nodes: Vec<NodeId> = (0..config.workers)
        .map(|w| net.add_node(format!("sbc-{w}"), worker_link))
        .collect();
    let service_link = LinkSpec {
        bits_per_sec: config.service_nic_bits_per_sec,
        latency: LinkSpec::gigabit().latency,
    };
    let orchestrator = net.add_node("orchestrator", LinkSpec::gigabit());
    let kv_node = net.add_node("kvstore", service_link);
    let sql_node = net.add_node("sqldb", service_link);
    let cos_node = net.add_node("objstore", service_link);
    let mq_node = net.add_node("mqueue", service_link);

    let peer_of = |function: FunctionId| match function {
        FunctionId::RedisInsert | FunctionId::RedisUpdate => kv_node,
        FunctionId::SqlSelect | FunctionId::SqlUpdate => sql_node,
        FunctionId::CosGet | FunctionId::CosPut => cos_node,
        FunctionId::MqProduce | FunctionId::MqConsume => mq_node,
        _ => orchestrator,
    };
    let endpoint_of = |function: FunctionId| match function {
        FunctionId::RedisInsert | FunctionId::RedisUpdate => Endpoint::Service("kvstore"),
        FunctionId::SqlSelect | FunctionId::SqlUpdate => Endpoint::Service("sqldb"),
        FunctionId::CosGet | FunctionId::CosPut => Endpoint::Service("objstore"),
        FunctionId::MqProduce | FunctionId::MqConsume => Endpoint::Service("mqueue"),
        _ => Endpoint::Orchestrator,
    };

    let mut nodes: Vec<SbcNode> = (0..config.workers)
        .map(|w| SbcNode::new(w, SimTime::ZERO))
        .collect();
    let channels: Vec<_> = (0..config.workers)
        .map(|w| meter.add_channel(format!("sbc-{w}")))
        .collect();

    // The orchestration plane queues every invocation up front
    // (paper §IV-D), under the configured assignment policy.
    let jobs = config.mix.jobs(&mut rng);
    let handles = observer.metrics().map(MicroMetrics::register);
    if observer.is_tracing() {
        for job in &jobs {
            observer.emit(
                SimTime::ZERO,
                TraceEvent::JobEnqueued {
                    job: job.id,
                    function: job.function.name(),
                },
            );
        }
    }
    if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
        metrics.add(h.jobs_enqueued, jobs.len() as u64);
    }
    let mut dispatcher = Dispatcher::new(config.assignment, config.workers, jobs, &mut rng);

    // Power on every worker that has work.
    for w in 0..config.workers {
        if dispatcher.has_work(w) {
            let effective = gpio.actuate(SimTime::ZERO, w, PowerAction::On);
            queue.schedule(effective, Event::PowerEffective(w));
        }
    }

    let mut in_flight: Vec<Option<InFlight>> = (0..config.workers).map(|_| None).collect();
    let mut records: Vec<JobRecord> = Vec::with_capacity(config.mix.total_jobs() as usize);
    let mut last_completion = SimTime::ZERO;
    let mut timed_out: u64 = 0;

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::PowerEffective(w) => {
                nodes[w].power_on(now).expect("scheduled only while off");
                let watts = nodes[w].power().value();
                meter.set_power(now, channels[w], watts);
                observer.emit(
                    now,
                    TraceEvent::WorkerStateChange {
                        worker: w,
                        state: WorkerState::Booting,
                    },
                );
                observer.emit(now, TraceEvent::PowerSample { worker: w, watts });
                if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
                    metrics.inc(h.boots);
                }
                queue.schedule(now + nodes[w].boot_duration(), Event::BootDone(w));
            }
            Event::BootDone(w) => {
                nodes[w]
                    .boot_complete(now)
                    .expect("scheduled only while booting");
                let watts = nodes[w].power().value();
                meter.set_power(now, channels[w], watts);
                observer.emit(
                    now,
                    TraceEvent::WorkerStateChange {
                        worker: w,
                        state: WorkerState::Idle,
                    },
                );
                observer.emit(now, TraceEvent::PowerSample { worker: w, watts });
                start_next_job(
                    w,
                    now,
                    config,
                    &mut nodes,
                    &mut dispatcher,
                    &mut in_flight,
                    &mut queue,
                    &mut meter,
                    &channels,
                    &mut gpio,
                    &mut rng,
                    observer,
                );
            }
            Event::ExecDone(w) => {
                let flight = in_flight[w].as_ref().expect("job in flight");
                let st = service_time(flight.job.function);
                let fixed = st
                    .fixed_overhead(WorkerPlatform::ArmSbc)
                    .mul_f64(config.jitter.factor(&mut rng));
                // The byte-proportional part travels the simulated switch,
                // where port contention can stretch it beyond nominal.
                let transfer_start = now + fixed;
                let peer = peer_of(flight.job.function);
                let bytes = st.transfer_bytes();
                let delivered = if flight.job.function == FunctionId::CosGet {
                    net.send(transfer_start, peer, worker_nodes[w], bytes)
                } else {
                    net.send(transfer_start, worker_nodes[w], peer, bytes)
                };
                let (src, dst) = if flight.job.function == FunctionId::CosGet {
                    (endpoint_of(flight.job.function), Endpoint::Worker(w))
                } else {
                    (Endpoint::Worker(w), endpoint_of(flight.job.function))
                };
                observer.emit(transfer_start, TraceEvent::NetTransfer { src, dst, bytes });
                if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
                    metrics.add(h.net_bytes, bytes);
                }
                let pending = queue.schedule(delivered, Event::JobDone(w));
                in_flight[w].as_mut().expect("job in flight").pending = pending;
            }
            Event::JobDone(w) => {
                let flight = in_flight[w].take().expect("job in flight");
                if let Some(timeout_event) = flight.timeout {
                    queue.cancel(timeout_event);
                }
                let overhead = now.duration_since(flight.started + flight.exec);
                observer.emit(
                    now,
                    TraceEvent::JobCompleted {
                        job: flight.job.id,
                        function: flight.job.function.name(),
                        worker: w,
                        exec: flight.exec,
                        overhead,
                    },
                );
                if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
                    metrics.inc(h.jobs_completed);
                    metrics.observe(h.exec_seconds, flight.exec.as_secs_f64());
                    metrics.observe(h.overhead_seconds, overhead.as_secs_f64());
                }
                records.push(JobRecord {
                    job: flight.job,
                    worker: w,
                    started: flight.started,
                    exec: flight.exec,
                    overhead,
                });
                last_completion = now;
                if !dispatcher.has_work(w) {
                    // Queue drained: power fully down (energy
                    // proportionality), or idle in standby if gating is
                    // disabled for the ablation.
                    nodes[w]
                        .finish_job_and_power_off(now)
                        .expect("job was executing");
                    if !config.power_gating {
                        // Model standby as the idle draw without the FSM
                        // round trip: the node is "parked".
                        meter.set_power(now, channels[w], 0.128);
                        observer.emit(
                            now,
                            TraceEvent::WorkerStateChange {
                                worker: w,
                                state: WorkerState::Idle,
                            },
                        );
                        observer.emit(
                            now,
                            TraceEvent::PowerSample {
                                worker: w,
                                watts: 0.128,
                            },
                        );
                    } else {
                        gpio.actuate(now, w, PowerAction::Off);
                        meter.set_power(now, channels[w], 0.0);
                        observer.emit(
                            now,
                            TraceEvent::WorkerStateChange {
                                worker: w,
                                state: WorkerState::Off,
                            },
                        );
                        observer.emit(
                            now,
                            TraceEvent::PowerSample {
                                worker: w,
                                watts: 0.0,
                            },
                        );
                    }
                } else {
                    nodes[w]
                        .finish_job_and_reboot(now)
                        .expect("job was executing");
                    let watts = nodes[w].power().value();
                    meter.set_power(now, channels[w], watts);
                    observer.emit(
                        now,
                        TraceEvent::WorkerStateChange {
                            worker: w,
                            state: WorkerState::Rebooting,
                        },
                    );
                    observer.emit(now, TraceEvent::PowerSample { worker: w, watts });
                    let reboot = if config.reboot_between_jobs {
                        nodes[w].boot_duration()
                    } else {
                        SimDuration::ZERO
                    };
                    queue.schedule(now + reboot, Event::BootDone(w));
                }
            }
            Event::TimedOut(w) => {
                let flight = in_flight[w].take().expect("job in flight");
                queue.cancel(flight.pending);
                timed_out += 1;
                observer.emit(
                    now,
                    TraceEvent::JobTimedOut {
                        job: flight.job.id,
                        function: flight.job.function.name(),
                        worker: w,
                    },
                );
                if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
                    metrics.inc(h.jobs_timed_out);
                }
                // The worker is reset exactly as after a normal job: the
                // reboot restores the clean state the next tenant needs.
                if !dispatcher.has_work(w) {
                    nodes[w]
                        .finish_job_and_power_off(now)
                        .expect("job was executing");
                    gpio.actuate(now, w, PowerAction::Off);
                    meter.set_power(now, channels[w], 0.0);
                    observer.emit(
                        now,
                        TraceEvent::WorkerStateChange {
                            worker: w,
                            state: WorkerState::Off,
                        },
                    );
                    observer.emit(
                        now,
                        TraceEvent::PowerSample {
                            worker: w,
                            watts: 0.0,
                        },
                    );
                } else {
                    nodes[w]
                        .finish_job_and_reboot(now)
                        .expect("job was executing");
                    let watts = nodes[w].power().value();
                    meter.set_power(now, channels[w], watts);
                    observer.emit(
                        now,
                        TraceEvent::WorkerStateChange {
                            worker: w,
                            state: WorkerState::Rebooting,
                        },
                    );
                    observer.emit(now, TraceEvent::PowerSample { worker: w, watts });
                    queue.schedule(now + nodes[w].boot_duration(), Event::BootDone(w));
                }
            }
        }
    }

    // A worker that booted to an already-drained queue may touch the
    // meter after the final completion; report at the later instant.
    let end = queue.now().max(last_completion);
    let energy = meter.report(end, records.len() as u64);
    let run = ClusterRun {
        label: format!("MicroFaaS ({} SBCs)", config.workers),
        workers: config.workers,
        energy,
        makespan: last_completion.duration_since(SimTime::ZERO),
        records,
        timed_out,
    };
    // Headline gauges are computed from the finished run itself, so the
    // exposition agrees bit-for-bit with the `ClusterRun` accessors.
    if let Some(metrics) = observer.metrics() {
        meter.publish_metrics(metrics, "micro", end);
        publish_run_gauges(metrics, "micro", &run);
    }
    run
}

/// Publishes the headline `ClusterRun` aggregates as `{prefix}_*`
/// gauges, identical to the values the accessors return.
pub(crate) fn publish_run_gauges(metrics: &mut MetricsRegistry, prefix: &str, run: &ClusterRun) {
    let pairs = [
        ("makespan_seconds", run.makespan.as_secs_f64()),
        ("total_joules", run.energy.total_joules),
        ("average_watts", run.energy.average_watts),
        (
            "joules_per_function",
            run.joules_per_function().unwrap_or(0.0),
        ),
        ("functions_per_minute", run.functions_per_minute()),
    ];
    for (name, value) in pairs {
        let gauge = metrics.gauge(&format!("{prefix}_{name}"));
        metrics.set_gauge(gauge, value);
    }
}

#[allow(clippy::too_many_arguments)]
fn start_next_job(
    w: usize,
    now: SimTime,
    config: &MicroFaasConfig,
    nodes: &mut [SbcNode],
    dispatcher: &mut Dispatcher,
    in_flight: &mut [Option<InFlight>],
    queue: &mut EventQueue<Event>,
    meter: &mut EnergyMeter,
    channels: &[microfaas_energy::ChannelId],
    gpio: &mut PowerController,
    rng: &mut Rng,
    observer: &mut Observer<'_>,
) {
    match dispatcher.pull(w) {
        Some(job) => {
            nodes[w].start_job(now).expect("node is idle");
            let watts = nodes[w].power().value();
            meter.set_power(now, channels[w], watts);
            observer.emit(
                now,
                TraceEvent::JobStarted {
                    job: job.id,
                    function: job.function.name(),
                    worker: w,
                },
            );
            observer.emit(
                now,
                TraceEvent::WorkerStateChange {
                    worker: w,
                    state: WorkerState::Executing,
                },
            );
            observer.emit(now, TraceEvent::PowerSample { worker: w, watts });
            let st = service_time(job.function);
            let mut exec = st
                .exec(WorkerPlatform::ArmSbc)
                .mul_f64(config.jitter.factor(rng));
            if config.crypto_exec_scale < 1.0 && is_crypto(job.function) {
                exec = exec.mul_f64(config.crypto_exec_scale);
            }
            let pending = queue.schedule(now + exec, Event::ExecDone(w));
            let timeout = config
                .invocation_timeout
                .map(|limit| queue.schedule(now + limit, Event::TimedOut(w)));
            in_flight[w] = Some(InFlight {
                job,
                started: now,
                exec,
                pending,
                timeout,
            });
        }
        None => {
            // Booted with nothing to do (possible when the initial random
            // assignment left this worker a short queue): power back off.
            if config.power_gating {
                nodes[w].power_off(now).expect("node is idle");
                gpio.actuate(now, w, PowerAction::Off);
                meter.set_power(now, channels[w], 0.0);
                observer.emit(
                    now,
                    TraceEvent::WorkerStateChange {
                        worker: w,
                        state: WorkerState::Off,
                    },
                );
                observer.emit(
                    now,
                    TraceEvent::PowerSample {
                        worker: w,
                        watts: 0.0,
                    },
                );
            }
        }
    }
}

fn is_crypto(function: FunctionId) -> bool {
    matches!(
        function,
        FunctionId::CascSha | FunctionId::CascMd5 | FunctionId::Aes128
    )
}

/// Average cluster power with exactly `active` of `total` workers busy —
/// the closed-form behind Fig. 5's SBC line.
pub fn sbc_cluster_power(total: usize, active: usize, power_gating: bool) -> f64 {
    assert!(
        active <= total,
        "cannot have more active workers than workers"
    );
    let idle_draw = if power_gating { 0.0 } else { 0.128 };
    active as f64 * 1.96 + (total - active) as f64 * idle_draw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> MicroFaasConfig {
        MicroFaasConfig::paper_prototype(WorkloadMix::quick(), seed)
    }

    #[test]
    fn completes_every_job_exactly_once() {
        let run = run_microfaas(&quick_config(1));
        assert_eq!(run.jobs_completed(), WorkloadMix::quick().total_jobs());
        let mut ids: Vec<u64> = run.records.iter().map(|r| r.job.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, run.jobs_completed(), "no duplicates");
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        let a = run_microfaas(&quick_config(7));
        let b = run_microfaas(&quick_config(7));
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.energy.total_joules, b.energy.total_joules);
        assert_eq!(a.records.len(), b.records.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_microfaas(&quick_config(1));
        let b = run_microfaas(&quick_config(2));
        assert_ne!(a.makespan, b.makespan);
    }

    #[test]
    fn throughput_near_paper_value() {
        let mut config = MicroFaasConfig::paper_prototype(WorkloadMix::quick(), 3);
        config.mix = WorkloadMix::new(FunctionId::ALL.to_vec(), 100);
        let run = run_microfaas(&config);
        let fpm = run.functions_per_minute();
        assert!(
            (fpm - 200.6).abs() < 8.0,
            "throughput {fpm:.1} f/min vs paper 200.6"
        );
    }

    #[test]
    fn energy_per_function_near_paper_value() {
        let mut config = MicroFaasConfig::paper_prototype(WorkloadMix::quick(), 4);
        config.mix = WorkloadMix::new(FunctionId::ALL.to_vec(), 100);
        let run = run_microfaas(&config);
        let jpf = run.joules_per_function().expect("jobs ran");
        assert!((jpf - 5.7).abs() < 0.6, "{jpf:.2} J/func vs paper 5.7");
    }

    #[test]
    fn gigabit_nic_speeds_up_cosget() {
        let mix = WorkloadMix::new(vec![FunctionId::CosGet], 40);
        let stock = run_microfaas(&MicroFaasConfig::paper_prototype(mix.clone(), 5));
        let mut upgraded_config = MicroFaasConfig::paper_prototype(mix, 5);
        upgraded_config.worker_nic_bits_per_sec = 1_000_000_000;
        let upgraded = run_microfaas(&upgraded_config);
        let stock_ovh = stock.per_function()[&FunctionId::CosGet].overhead_ms.mean();
        let upgraded_ovh = upgraded.per_function()[&FunctionId::CosGet]
            .overhead_ms
            .mean();
        assert!(
            upgraded_ovh < stock_ovh / 2.0,
            "GigE should halve COSGet overhead: {stock_ovh:.0} -> {upgraded_ovh:.0} ms"
        );
    }

    #[test]
    fn skipping_reboots_raises_throughput() {
        let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 200);
        let with = run_microfaas(&MicroFaasConfig::paper_prototype(mix.clone(), 6));
        let mut without_config = MicroFaasConfig::paper_prototype(mix, 6);
        without_config.reboot_between_jobs = false;
        let without = run_microfaas(&without_config);
        assert!(without.functions_per_minute() > with.functions_per_minute() * 1.5);
    }

    #[test]
    fn crypto_accelerator_speeds_up_cascsha() {
        let mix = WorkloadMix::new(vec![FunctionId::CascSha], 50);
        let stock = run_microfaas(&MicroFaasConfig::paper_prototype(mix.clone(), 8));
        let mut accel_config = MicroFaasConfig::paper_prototype(mix, 8);
        accel_config.crypto_exec_scale = 0.35;
        let accel = run_microfaas(&accel_config);
        let stock_exec = stock.per_function()[&FunctionId::CascSha].exec_ms.mean();
        let accel_exec = accel.per_function()[&FunctionId::CascSha].exec_ms.mean();
        assert!((accel_exec / stock_exec - 0.35).abs() < 0.02);
    }

    #[test]
    fn per_function_times_match_calibration() {
        let mut config =
            MicroFaasConfig::paper_prototype(WorkloadMix::new(FunctionId::ALL.to_vec(), 60), 9);
        config.jitter = Jitter::none();
        let run = run_microfaas(&config);
        for (function, stats) in run.per_function() {
            let expected = service_time(function)
                .exec(WorkerPlatform::ArmSbc)
                .as_millis_f64();
            let measured = stats.exec_ms.mean();
            assert!(
                (measured - expected).abs() < 1.0,
                "{function}: exec {measured:.1} vs calibrated {expected:.1}"
            );
            let expected_ovh = service_time(function)
                .overhead(WorkerPlatform::ArmSbc)
                .as_millis_f64();
            let measured_ovh = stats.overhead_ms.mean();
            assert!(
                (measured_ovh - expected_ovh).abs() < expected_ovh * 0.15 + 3.0,
                "{function}: overhead {measured_ovh:.1} vs calibrated {expected_ovh:.1}"
            );
        }
    }

    #[test]
    fn invocation_timeout_kills_long_jobs() {
        // MatMul runs ~4.7 s on the SBC; a 2 s platform timeout kills
        // every MatMul but leaves RegexMatch (~0.5 s) untouched.
        let mix = WorkloadMix::new(vec![FunctionId::MatMul, FunctionId::RegexMatch], 30);
        let mut config = MicroFaasConfig::paper_prototype(mix, 11);
        config.invocation_timeout = Some(SimDuration::from_secs(2));
        let run = run_microfaas(&config);
        assert_eq!(run.timed_out, 30, "every MatMul must be killed");
        assert_eq!(run.jobs_completed(), 30, "every RegexMatch must finish");
        assert!(
            run.per_function()
                .keys()
                .all(|&f| f == FunctionId::RegexMatch),
            "only RegexMatch completions should be recorded"
        );
    }

    #[test]
    fn timeout_cuts_worst_case_occupancy() {
        // With a timeout, the worker is freed at the limit instead of
        // serving the full 4.7 s MatMul: total makespan shrinks.
        let mix = WorkloadMix::new(vec![FunctionId::MatMul], 40);
        let unlimited = run_microfaas(&MicroFaasConfig::paper_prototype(mix.clone(), 12));
        let mut config = MicroFaasConfig::paper_prototype(mix, 12);
        config.invocation_timeout = Some(SimDuration::from_secs(1));
        let limited = run_microfaas(&config);
        assert_eq!(limited.timed_out, 40);
        assert!(limited.makespan < unlimited.makespan);
    }

    #[test]
    fn no_timeout_means_no_kills() {
        let run = run_microfaas(&quick_config(13));
        assert_eq!(run.timed_out, 0);
    }

    #[test]
    fn sbc_hosted_service_bottlenecks_at_scale() {
        // With the object store on a 100 Mb/s SBC, adding workers stops
        // helping a COSGet-heavy workload: the service's TX port is the
        // shared bottleneck (the Gand et al. effect).
        let mix = WorkloadMix::new(vec![FunctionId::CosGet], 120);
        let run_with_workers = |workers: usize| {
            let mut config = MicroFaasConfig::paper_prototype(mix.clone(), 7);
            config.workers = workers;
            config.service_nic_bits_per_sec = 100_000_000;
            run_microfaas(&config).functions_per_minute()
        };
        let five = run_with_workers(5);
        let twenty = run_with_workers(20);
        // A 4x worker increase buys far less than 4x throughput.
        assert!(
            twenty < five * 2.0,
            "service bottleneck should cap scaling: 5 workers {five:.1}, 20 workers {twenty:.1}"
        );
        // With GigE services the same scaling is far better.
        let run_gige = |workers: usize| {
            let mut config = MicroFaasConfig::paper_prototype(mix.clone(), 7);
            config.workers = workers;
            run_microfaas(&config).functions_per_minute()
        };
        let ratio_gige = run_gige(20) / run_gige(5);
        assert!(
            ratio_gige > 3.0,
            "GigE services scale ~linearly, got {ratio_gige:.2}x"
        );
    }

    #[test]
    fn cluster_power_formula_is_linear() {
        assert_eq!(sbc_cluster_power(10, 0, true), 0.0);
        assert_eq!(sbc_cluster_power(10, 5, true), 9.8);
        assert_eq!(sbc_cluster_power(10, 10, true), 19.6);
        let with_standby = sbc_cluster_power(10, 5, false);
        assert!((with_standby - (9.8 + 5.0 * 0.128)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let mut config = quick_config(0);
        config.workers = 0;
        run_microfaas(&config);
    }
}
