//! The MicroFaaS cluster simulator: SBC workers driven by the
//! orchestration plane through GPIO power control, run-to-completion
//! scheduling, reboots between jobs, and power-gating of idle nodes.
//!
//! Fault injection (crashes, boot failures, hangs, lost transfers) and
//! the recovery policies around it are documented in
//! `docs/FAILURE_MODEL.md`; with an empty
//! [`FaultPlan`](microfaas_sim::faults::FaultPlan) the machinery is
//! inert and runs are bit-identical to a build without it.
//!
//! Placement and power-state policy are pluggable through
//! `microfaas-sched` (see `docs/SCHEDULING.md`): the
//! [`MicroFaasConfig::assignment`] placement picks worker queues and the
//! [`MicroFaasConfig::governor`] decides what a drained worker does.
//! The defaults (work-conserving placement,
//! [`GovernorKind::RebootPerJob`]) reproduce the paper's behavior
//! bit-for-bit, including traces and metric expositions.

use std::sync::Arc;

use microfaas_energy::{ChannelId, EnergyMeter};
use microfaas_hw::gpio::{PowerAction, PowerController};
use microfaas_hw::sbc::{SbcNode, SbcState};
use microfaas_net::LinkSpec;
use microfaas_sched::{governor, DrainAction, Governor, GovernorKind};
use microfaas_sim::faults::FaultKind;
use microfaas_sim::trace::{Observer, TraceEvent, WorkerState};
use microfaas_sim::{
    CounterId, EventId, EventQueue, HistogramId, MetricsRegistry, Rng, SimDuration, SimTime,
};
use microfaas_workloads::calibration::{service_time, WorkerPlatform};
use microfaas_workloads::FunctionId;

use crate::cache::{content_key, CacheConfig, ResultCache};
use crate::config::{Assignment, Jitter, WorkloadMix};
use crate::job::{Dispatcher, Job, JobRecord, JobTable};
use crate::netmap::ClusterNet;
use crate::recovery::{priority_of, FaultRuntime, FaultsConfig, Priority};
use crate::registry::FunctionRegistry;
use crate::report::{ClusterRun, DroppedJob, Outcome};

/// Configuration of a MicroFaaS cluster run.
#[derive(Debug, Clone)]
pub struct MicroFaasConfig {
    /// Number of SBC worker nodes (the paper's prototype has 10).
    pub workers: usize,
    /// Workload to run. Shared behind an [`Arc`] so sweeps and
    /// replicates clone configs without copying the function list.
    pub mix: Arc<WorkloadMix>,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Run-to-run service-time variation.
    pub jitter: Jitter,
    /// Worker NIC line rate. The BeagleBone's Fast Ethernet is the
    /// default; set 1 Gb/s for the paper's NIC-upgrade what-if.
    pub worker_nic_bits_per_sec: u64,
    /// Reboot to a clean state between jobs (the paper's policy).
    /// Disabling is an ablation that trades isolation for throughput.
    pub reboot_between_jobs: bool,
    /// Power nodes fully off when their queue drains (the paper's
    /// energy-proportionality mechanism). Disabling leaves idle nodes in
    /// 0.128 W standby.
    pub power_gating: bool,
    /// Models the paper's "cryptographic accelerator" what-if: scales
    /// CascSHA/CascMD5/AES128 execution by this factor (1.0 = stock).
    pub crypto_exec_scale: f64,
    /// How the orchestration plane maps jobs to workers.
    pub assignment: Assignment,
    /// What a worker does between jobs and when its queue drains. The
    /// default [`GovernorKind::RebootPerJob`] is the paper's policy and
    /// the only governor under which the legacy `reboot_between_jobs`
    /// and `power_gating` switches keep their exact historical meaning.
    pub governor: GovernorKind,
    /// NIC line rate of the backing-service hosts. GigE by default; set
    /// 100 Mb/s to model services hosted on SBCs (as the paper's testbed
    /// wires them), which turns the service port into a shared
    /// bottleneck at scale — the effect Gand et al. report for their
    /// 8-Pi cluster.
    pub service_nic_bits_per_sec: u64,
    /// Kill invocations that run longer than this (platform timeout).
    /// `None` is the paper's pure run-to-completion model. Combined with
    /// any per-function timeout from [`MicroFaasConfig::registry`]; the
    /// tighter limit wins.
    pub invocation_timeout: Option<SimDuration>,
    /// Deployed-function metadata; a function's
    /// [`crate::registry::FunctionSpec::timeout`] is enforced per
    /// invocation. The paper suite deploys everything without timeouts.
    pub registry: FunctionRegistry,
    /// Fault plan and recovery policies ([`FaultsConfig::none`] keeps
    /// the run fault-free and bit-identical to earlier builds).
    pub faults: FaultsConfig,
    /// Content-addressed result cache on the orchestration plane. The
    /// closed-loop harness carries no request payloads, so the key
    /// degenerates to one entry per function: after a function's first
    /// real execution, every repeat is served from the orchestrator at
    /// zero boot/exec/energy cost. [`CacheConfig::Off`] (the default)
    /// keeps runs bit-identical to pre-cache builds.
    pub cache: CacheConfig,
}

impl MicroFaasConfig {
    /// The paper's prototype: 10 SBCs, Fast Ethernet, reboot + power-gate.
    /// Accepts the mix owned or pre-shared (`Arc<WorkloadMix>` — both
    /// convert), so sweeps build it once and share it across points.
    pub fn paper_prototype(mix: impl Into<Arc<WorkloadMix>>, seed: u64) -> Self {
        MicroFaasConfig {
            workers: 10,
            mix: mix.into(),
            seed,
            jitter: Jitter::default_run_to_run(),
            worker_nic_bits_per_sec: 100_000_000,
            reboot_between_jobs: true,
            power_gating: true,
            crypto_exec_scale: 1.0,
            assignment: Assignment::WorkConserving,
            governor: GovernorKind::RebootPerJob,
            service_nic_bits_per_sec: 1_000_000_000,
            invocation_timeout: None,
            registry: FunctionRegistry::paper_suite(),
            faults: FaultsConfig::none(),
            cache: CacheConfig::Off,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// GPIO press registered; the node starts booting.
    PowerEffective(usize),
    /// Worker OS reached the network; node is ready for a job.
    BootDone(usize),
    /// Function body finished; the result/overhead phase begins.
    ExecDone(usize),
    /// Result delivered; the job is complete.
    JobDone(usize),
    /// The platform timeout fired; the invocation is killed.
    TimedOut(usize),
    /// An injected crash takes the node down.
    Crash(usize),
    /// The orchestrator's heartbeat notices the crash; recovery begins.
    Recover(usize),
    /// The supervision deadline for a hung or transfer-starved
    /// invocation: kill it, requeue, and reset the worker.
    Watchdog(usize),
    /// The sender retries a result transfer the network lost.
    Retransmit(usize),
    /// Backoff elapsed; the orchestrator requeues the invocation.
    Retry(Job),
    /// A standby worker's governor idle window elapsed; it may gate off.
    IdleGate(usize),
}

struct InFlight {
    job: Job,
    started: SimTime,
    exec: SimDuration,
    /// The next scheduled progress event (ExecDone, then JobDone, or a
    /// Retransmit), cancelled if the timeout or a crash fires first.
    /// `None` while the invocation hangs with only a watchdog armed.
    pending: Option<EventId>,
    /// The timeout event, cancelled when the job completes in time.
    timeout: Option<EventId>,
    /// The supervision deadline for hangs / exhausted retransmits.
    watchdog: Option<EventId>,
    /// Result transfers attempted so far (0 until ExecDone).
    transfer_tries: u32,
}

/// Histogram bucket upper bounds (seconds) shared by the cluster
/// simulators so micro/conventional exec and overhead distributions
/// land in comparable buckets.
pub(crate) const EXEC_BUCKETS: [f64; 9] = [0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0];
/// See [`EXEC_BUCKETS`]; overheads are an order of magnitude smaller.
pub(crate) const OVERHEAD_BUCKETS: [f64; 9] = [0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5];

/// Per-run metric handles for this cluster, all prefixed `micro_`.
struct MicroMetrics {
    jobs_enqueued: CounterId,
    jobs_completed: CounterId,
    jobs_timed_out: CounterId,
    boots: CounterId,
    net_bytes: CounterId,
    faults_injected: CounterId,
    jobs_requeued: CounterId,
    job_retries: CounterId,
    jobs_shed: CounterId,
    jobs_failed: CounterId,
    exec_seconds: HistogramId,
    overhead_seconds: HistogramId,
}

/// Metric handles for the scheduling subsystem, shared by both cluster
/// engines and the open-loop simulator. Registered only when a
/// non-default policy is active, so default expositions keep their
/// historical byte-exact content.
pub(crate) struct SchedMetrics {
    /// Static placement decisions made by the active placement policy.
    pub(crate) placements: CounterId,
    /// Back-to-back job starts that skipped the boot window.
    pub(crate) warm_hits: CounterId,
    /// Job starts that paid the full boot window.
    pub(crate) cold_boots: CounterId,
    /// Governor power-regime moves (standby, gate-off, prewarm).
    pub(crate) governor_transitions: CounterId,
}

impl SchedMetrics {
    pub(crate) fn register(metrics: &mut MetricsRegistry) -> Self {
        SchedMetrics {
            placements: metrics.counter("sched_placements_total"),
            warm_hits: metrics.counter("sched_warm_hits_total"),
            cold_boots: metrics.counter("sched_cold_boots_total"),
            governor_transitions: metrics.counter("sched_governor_transitions_total"),
        }
    }
}

impl MicroMetrics {
    fn register(metrics: &mut MetricsRegistry) -> Self {
        MicroMetrics {
            jobs_enqueued: metrics.counter("micro_jobs_enqueued_total"),
            jobs_completed: metrics.counter("micro_jobs_completed_total"),
            jobs_timed_out: metrics.counter("micro_jobs_timed_out_total"),
            boots: metrics.counter("micro_worker_boots_total"),
            net_bytes: metrics.counter("micro_net_bytes_total"),
            faults_injected: metrics.counter("micro_faults_injected_total"),
            jobs_requeued: metrics.counter("micro_jobs_requeued_total"),
            job_retries: metrics.counter("micro_job_retries_total"),
            jobs_shed: metrics.counter("micro_jobs_shed_total"),
            jobs_failed: metrics.counter("micro_jobs_failed_total"),
            exec_seconds: metrics.histogram("micro_exec_seconds", &EXEC_BUCKETS),
            overhead_seconds: metrics.histogram("micro_overhead_seconds", &OVERHEAD_BUCKETS),
        }
    }
}

/// Runs the configured cluster to completion and reports the results.
///
/// # Panics
///
/// Panics if `workers` is zero, `crypto_exec_scale` is not in (0, 1],
/// or the fault plan fails validation.
///
/// # Examples
///
/// ```
/// use microfaas::config::WorkloadMix;
/// use microfaas::micro::{run_microfaas, MicroFaasConfig};
/// use microfaas_workloads::FunctionId;
///
/// let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 20);
/// let run = run_microfaas(&MicroFaasConfig::paper_prototype(mix, 42));
/// assert_eq!(run.jobs_completed(), 20);
/// ```
pub fn run_microfaas(config: &MicroFaasConfig) -> ClusterRun {
    run_microfaas_with(config, &mut Observer::disabled())
}

/// Runs the cluster while reporting trace events and `micro_*` metrics
/// into `observer`. [`run_microfaas`] is this entry point with
/// [`Observer::disabled`]; the simulated results are bit-identical
/// either way because observation never touches the run's RNG.
///
/// # Panics
///
/// Panics under the same conditions as [`run_microfaas`].
///
/// # Examples
///
/// ```
/// use microfaas::config::WorkloadMix;
/// use microfaas::micro::{run_microfaas_with, MicroFaasConfig};
/// use microfaas_sim::trace::{Observer, TraceBuffer};
/// use microfaas_sim::MetricsRegistry;
/// use microfaas_workloads::FunctionId;
///
/// let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 5);
/// let config = MicroFaasConfig::paper_prototype(mix, 42);
/// let mut trace = TraceBuffer::new(4096);
/// let mut metrics = MetricsRegistry::new();
/// let run = run_microfaas_with(&config, &mut Observer::full(&mut trace, &mut metrics));
/// assert_eq!(run.jobs_completed(), 5);
/// assert!(metrics.render_prometheus().contains("micro_jobs_completed_total 5"));
/// assert!(trace.to_json_lines().lines().count() > 5);
/// ```
pub fn run_microfaas_with(config: &MicroFaasConfig, observer: &mut Observer<'_>) -> ClusterRun {
    assert!(config.workers > 0, "cluster needs at least one worker");
    assert!(
        config.crypto_exec_scale > 0.0 && config.crypto_exec_scale <= 1.0,
        "crypto accelerator can only speed execution up"
    );
    config.cache.try_validate().expect("invalid cache config");
    MicroSim::new(config, observer).run()
}

/// All mutable state of one MicroFaaS run, so the event handlers can be
/// plain methods instead of functions threading a dozen arguments.
struct MicroSim<'a, 'b> {
    config: &'a MicroFaasConfig,
    observer: &'a mut Observer<'b>,
    rng: Rng,
    queue: EventQueue<Event>,
    gpio: PowerController,
    meter: EnergyMeter,
    cnet: ClusterNet,
    nodes: Vec<SbcNode>,
    channels: Vec<ChannelId>,
    dispatcher: Dispatcher,
    in_flight: Vec<Option<InFlight>>,
    /// The pending PowerEffective/BootDone event per worker, cancelled
    /// when a crash interrupts the boot.
    boot_pending: Vec<Option<EventId>>,
    records: JobTable,
    last_completion: SimTime,
    fr: FaultRuntime,
    handles: Option<MicroMetrics>,
    /// The node power governor ([`MicroFaasConfig::governor`]).
    governor: Box<dyn Governor + Send>,
    /// The pending IdleGate event per standby worker, cancelled when a
    /// job start or crash pre-empts the idle window.
    gate_pending: Vec<Option<EventId>>,
    /// Whether a non-default scheduling policy is active; all new
    /// telemetry is gated on this so default runs stay byte-identical.
    sched_active: bool,
    sched_handles: Option<SchedMetrics>,
    /// The orchestrator's result cache; `None` when
    /// [`MicroFaasConfig::cache`] is off, keeping the pull path free of
    /// cache branches.
    cache: Option<ResultCache<()>>,
}

impl<'a, 'b> MicroSim<'a, 'b> {
    fn new(config: &'a MicroFaasConfig, observer: &'a mut Observer<'b>) -> Self {
        let mut rng = Rng::new(config.seed);
        let mut meter = EnergyMeter::new(SimTime::ZERO);

        // Network topology: workers on their (possibly upgraded) NICs;
        // the orchestrator and the four service hosts on GigE so each
        // cluster's own worker NIC is the bottleneck.
        let worker_link = LinkSpec {
            bits_per_sec: config.worker_nic_bits_per_sec,
            latency: LinkSpec::fast_ethernet().latency,
        };
        let service_link = LinkSpec {
            bits_per_sec: config.service_nic_bits_per_sec,
            latency: LinkSpec::gigabit().latency,
        };
        let cnet = ClusterNet::new("sbc-", config.workers, worker_link, service_link);

        let nodes: Vec<SbcNode> = (0..config.workers)
            .map(|w| SbcNode::new(w, SimTime::ZERO))
            .collect();
        let channels: Vec<ChannelId> = (0..config.workers)
            .map(|w| meter.add_channel(format!("sbc-{w}")))
            .collect();

        // The orchestration plane queues every invocation up front
        // (paper §IV-D), under the configured assignment policy.
        let jobs = config.mix.jobs(&mut rng);
        let handles = observer.metrics().map(MicroMetrics::register);
        if observer.is_tracing() {
            for job in &jobs {
                observer.emit(
                    SimTime::ZERO,
                    TraceEvent::JobEnqueued {
                        job: job.id,
                        function: job.function.name(),
                    },
                );
            }
        }
        if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
            metrics.add(h.jobs_enqueued, jobs.len() as u64);
        }
        let fr = FaultRuntime::new(&config.faults.plan, config.workers, jobs.len());
        // LeastLoaded balances expected ARM execution seconds, not job
        // counts, so a queue of MatMuls is not "equal" to one of regexes.
        let dispatcher = Dispatcher::with_weights(
            config.assignment,
            config.workers,
            jobs,
            &mut rng,
            |function| {
                service_time(function)
                    .exec(WorkerPlatform::ArmSbc)
                    .as_secs_f64()
            },
        );

        // Everything below is observation only (no RNG, no events): the
        // legacy defaults keep traces and expositions byte-identical.
        let sched_active = !(config.assignment.is_legacy_assignment()
            && config.governor == GovernorKind::RebootPerJob);
        let sched_handles = if sched_active {
            observer.metrics().map(SchedMetrics::register)
        } else {
            None
        };
        if sched_active {
            let placed: Vec<(usize, u64)> = dispatcher
                .placements()
                .map(|(w, job)| (w, job.id))
                .collect();
            if observer.is_tracing() {
                for &(w, id) in &placed {
                    observer.emit(
                        SimTime::ZERO,
                        TraceEvent::PlacementDecision {
                            job: id,
                            worker: w,
                            policy: config.assignment.label(),
                        },
                    );
                }
            }
            if let (Some(metrics), Some(h)) = (observer.metrics(), sched_handles.as_ref()) {
                metrics.add(h.placements, placed.len() as u64);
            }
        }

        MicroSim {
            config,
            observer,
            rng,
            // Peak outstanding events: one progress event per worker
            // plus timeout/watchdog timers and a handful of planned
            // crashes — sized up front so the hot loop never regrows.
            queue: EventQueue::with_capacity(4 * config.workers + 16),
            gpio: PowerController::new(config.workers),
            meter,
            cnet,
            nodes,
            channels,
            dispatcher,
            in_flight: (0..config.workers).map(|_| None).collect(),
            boot_pending: vec![None; config.workers],
            records: JobTable::with_capacity(config.mix.total_jobs() as usize),
            last_completion: SimTime::ZERO,
            fr,
            handles,
            governor: governor(config.governor),
            gate_pending: vec![None; config.workers],
            sched_active,
            sched_handles,
            cache: ResultCache::from_config(&config.cache),
        }
    }

    fn run(mut self) -> ClusterRun {
        // Planned crashes are ordinary events; an empty plan schedules
        // nothing, keeping the event sequence bit-identical. Crashes
        // aimed past the fleet (a plan written for a larger cluster)
        // are no-ops.
        for (at, w) in self.fr.injector.scheduled_crashes().to_vec() {
            if w < self.config.workers {
                self.queue.schedule(at, Event::Crash(w));
            }
        }

        // Power on every worker that has work.
        for w in 0..self.config.workers {
            if self.dispatcher.has_work(w) {
                self.observer.emit(
                    SimTime::ZERO,
                    TraceEvent::WakeRequested {
                        worker: w,
                        reason: "dispatch",
                    },
                );
                let effective = self.gpio.actuate(SimTime::ZERO, w, PowerAction::On);
                self.boot_pending[w] =
                    Some(self.queue.schedule(effective, Event::PowerEffective(w)));
            }
        }

        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::PowerEffective(w) => self.on_power_effective(w, now),
                Event::BootDone(w) => self.on_boot_done(w, now),
                Event::ExecDone(w) => self.on_exec_done(w, now),
                Event::JobDone(w) => self.on_job_done(w, now),
                Event::TimedOut(w) => self.on_timed_out(w, now),
                Event::Crash(w) => self.on_crash(w, now),
                Event::Recover(w) => self.on_recover(w, now),
                Event::Watchdog(w) => self.on_watchdog(w, now),
                Event::Retransmit(w) => self.on_retransmit(w, now),
                Event::Retry(job) => self.on_retry(job, now),
                Event::IdleGate(w) => self.on_idle_gate(w, now),
            }
        }

        // With every worker dead, queued work has nowhere to go: account
        // each stranded job so completions + drops always equal
        // submissions. Fault-free runs drain their queues and skip this.
        let at_end = self.queue.now();
        for w in 0..self.config.workers {
            while let Some(job) = self.dispatcher.pull(w) {
                self.drop_failed(job, at_end);
            }
            if let Some(flight) = self.in_flight[w].take() {
                self.drop_failed(flight.job, at_end);
            }
        }

        // A worker that booted to an already-drained queue may touch the
        // meter after the final completion; report at the later instant.
        let end = self.queue.now().max(self.last_completion);
        let energy = self.meter.report(end, self.records.len() as u64);
        let run = ClusterRun {
            label: format!("MicroFaaS ({} SBCs)", self.config.workers),
            workers: self.config.workers,
            energy,
            makespan: self.last_completion.duration_since(SimTime::ZERO),
            records: std::mem::take(&mut self.records),
            dropped: std::mem::take(&mut self.fr.dropped),
            faults: self.fr.summary,
        };
        // Headline gauges are computed from the finished run itself, so
        // the exposition agrees bit-for-bit with the `ClusterRun`
        // accessors.
        let cache_stats = self.cache.as_ref().map(|c| c.stats());
        if let Some(metrics) = self.observer.metrics() {
            self.meter.publish_metrics(metrics, "micro", end);
            publish_run_gauges(metrics, "micro", &run);
            // Cache counters only exist when a cache ran: the default
            // exposition must stay byte-identical to pre-cache builds.
            if let Some(stats) = cache_stats.as_ref() {
                publish_cache_counters(metrics, "micro", stats);
            }
        }
        run
    }

    /// Meters `watts` and emits the state-change + power-sample pair.
    fn mark(&mut self, now: SimTime, w: usize, state: WorkerState, watts: f64) {
        self.meter.set_power(now, self.channels[w], watts);
        self.observer
            .emit(now, TraceEvent::WorkerStateChange { worker: w, state });
        self.observer
            .emit(now, TraceEvent::PowerSample { worker: w, watts });
    }

    fn with_metrics(&mut self, apply: impl FnOnce(&mut MetricsRegistry, &MicroMetrics)) {
        if let (Some(metrics), Some(h)) = (self.observer.metrics(), self.handles.as_ref()) {
            apply(metrics, h);
        }
    }

    fn with_sched_metrics(&mut self, apply: impl FnOnce(&mut MetricsRegistry, &SchedMetrics)) {
        if let (Some(metrics), Some(h)) = (self.observer.metrics(), self.sched_handles.as_ref()) {
            apply(metrics, h);
        }
    }

    /// Booted-idle workers right now — the governor's "warm pool".
    fn warm_idle_count(&self) -> usize {
        (0..self.config.workers)
            .filter(|&x| !self.fr.dead[x] && self.nodes[x].state() == SbcState::Idle)
            .count()
    }

    /// Emits the governor-transition trace/metric pair (active policies
    /// only — the default governor never reaches the standby paths).
    fn governor_transition(&mut self, now: SimTime, w: usize, action: &'static str) {
        if !self.sched_active {
            return;
        }
        self.observer
            .emit(now, TraceEvent::GovernorTransition { worker: w, action });
        self.with_sched_metrics(|m, h| m.inc(h.governor_transitions));
    }

    fn fault_injected(&mut self, now: SimTime, w: usize, kind: FaultKind) {
        self.fr.summary.injected += 1;
        self.observer.emit(
            now,
            TraceEvent::FaultInjected {
                worker: w,
                fault: kind.label(),
            },
        );
        self.with_metrics(|m, h| m.inc(h.faults_injected));
    }

    fn drop_failed(&mut self, job: Job, now: SimTime) {
        let attempts = self.fr.attempts[job.id as usize];
        self.observer.emit(
            now,
            TraceEvent::JobFailed {
                job: job.id,
                function: job.function.name(),
                attempts,
            },
        );
        self.fr.dropped.push(DroppedJob {
            job,
            outcome: Outcome::Failed,
            attempts,
        });
        self.with_metrics(|m, h| m.inc(h.jobs_failed));
    }

    /// The effective kill deadline for one invocation: the tighter of
    /// the platform timeout and the function's deployed timeout.
    fn timeout_limit(&self, function: FunctionId) -> Option<SimDuration> {
        let deployed = self
            .config
            .registry
            .resolve(function.name())
            .ok()
            .and_then(|spec| spec.timeout);
        match (self.config.invocation_timeout, deployed) {
            (Some(platform), Some(per_function)) => Some(platform.min(per_function)),
            (platform, per_function) => platform.or(per_function),
        }
    }

    fn on_power_effective(&mut self, w: usize, now: SimTime) {
        self.boot_pending[w] = None;
        self.nodes[w]
            .power_on(now)
            .expect("scheduled only while off");
        let watts = self.nodes[w].power().value();
        self.mark(now, w, WorkerState::Booting, watts);
        self.with_metrics(|m, h| m.inc(h.boots));
        self.boot_pending[w] = Some(
            self.queue
                .schedule(now + self.nodes[w].boot_duration(), Event::BootDone(w)),
        );
    }

    fn on_boot_done(&mut self, w: usize, now: SimTime) {
        self.boot_pending[w] = None;
        if self.fr.injector.boot_fails(w) {
            self.fault_injected(now, w, FaultKind::BootFailure);
            self.fr.boot_failures[w] += 1;
            if self.fr.boot_failures[w] > self.config.faults.max_boot_retries {
                // The node never comes up: declare it dead and move its
                // statically assigned queue to the survivors.
                self.fr.dead[w] = true;
                self.nodes[w].crash(now).expect("node was booting");
                self.mark(now, w, WorkerState::Crashed, 0.0);
                self.redistribute(w, now);
                self.maybe_shed(now);
            } else {
                // The boot wedged; the orchestrator power-cycles and the
                // node spends another boot window at boot power.
                self.with_metrics(|m, h| m.inc(h.boots));
                self.boot_pending[w] = Some(
                    self.queue
                        .schedule(now + self.nodes[w].boot_duration(), Event::BootDone(w)),
                );
            }
            return;
        }
        self.fr.boot_failures[w] = 0;
        self.nodes[w]
            .boot_complete(now)
            .expect("scheduled only while booting");
        let watts = self.nodes[w].power().value();
        self.mark(now, w, WorkerState::Idle, watts);
        self.start_next_job(w, now);
    }

    fn on_exec_done(&mut self, w: usize, now: SimTime) {
        let job = self.in_flight[w].as_ref().expect("job in flight").job;
        let st = service_time(job.function);
        let fixed = st
            .fixed_overhead(WorkerPlatform::ArmSbc)
            .mul_f64(self.config.jitter.factor(&mut self.rng));
        // The byte-proportional part travels the simulated switch, where
        // port contention can stretch it beyond nominal.
        self.attempt_transfer(w, now + fixed);
    }

    /// Pushes the result transfer through the switch; an injected loss
    /// consumes the wire, then either retransmits or hands the job to
    /// the watchdog once the retry budget is spent.
    fn attempt_transfer(&mut self, w: usize, start: SimTime) {
        let job = self.in_flight[w].as_ref().expect("job in flight").job;
        let bytes = service_time(job.function).transfer_bytes();
        let lost = self.fr.injector.transfer_lost(w);
        if lost {
            self.fault_injected(start, w, FaultKind::NetLoss);
        }
        // The response leaves the worker as the transfer starts; a lost
        // copy re-emits on retransmit (span derivation keeps the first).
        self.observer.emit(
            start,
            TraceEvent::ResponseSent {
                job: job.id,
                function: job.function.name(),
                worker: w,
            },
        );
        let (delivered, src, dst) = self.cnet.transfer(start, w, job.function, bytes, lost);
        self.observer
            .emit(start, TraceEvent::NetTransfer { src, dst, bytes });
        self.with_metrics(|m, h| m.add(h.net_bytes, bytes));
        if !lost {
            let pending = self.queue.schedule(delivered, Event::JobDone(w));
            self.in_flight[w].as_mut().expect("job in flight").pending = Some(pending);
            return;
        }
        let tries = {
            let flight = self.in_flight[w].as_mut().expect("job in flight");
            flight.transfer_tries += 1;
            flight.transfer_tries
        };
        if tries <= self.config.faults.retry.max_attempts {
            let eid = self.queue.schedule(
                delivered + self.config.faults.retransmit_delay,
                Event::Retransmit(w),
            );
            self.in_flight[w].as_mut().expect("job in flight").pending = Some(eid);
        } else {
            // Every copy vanished: when the last one would have arrived,
            // the orchestrator's supervision gives up on this worker.
            let eid = self.queue.schedule(delivered, Event::Watchdog(w));
            let flight = self.in_flight[w].as_mut().expect("job in flight");
            flight.pending = None;
            flight.watchdog = Some(eid);
        }
    }

    fn on_retransmit(&mut self, w: usize, now: SimTime) {
        self.attempt_transfer(w, now);
    }

    fn on_job_done(&mut self, w: usize, now: SimTime) {
        let flight = self.in_flight[w].take().expect("job in flight");
        if let Some(timeout_event) = flight.timeout {
            self.queue.cancel(timeout_event);
        }
        let overhead = now.duration_since(flight.started + flight.exec);
        self.observer.emit(
            now,
            TraceEvent::JobCompleted {
                job: flight.job.id,
                function: flight.job.function.name(),
                worker: w,
                exec: flight.exec,
                overhead,
            },
        );
        self.with_metrics(|m, h| {
            m.inc(h.jobs_completed);
            m.observe(h.exec_seconds, flight.exec.as_secs_f64());
            m.observe(h.overhead_seconds, overhead.as_secs_f64());
        });
        self.records.push(JobRecord {
            job: flight.job,
            worker: w,
            started: flight.started,
            exec: flight.exec,
            overhead,
        });
        self.last_completion = now;
        if let Some(cache) = self.cache.as_mut() {
            cache.insert(
                content_key(flight.job.function.index(), 0),
                (),
                now.as_micros(),
            );
        }
        self.release_worker(w, now, false);
    }

    fn on_timed_out(&mut self, w: usize, now: SimTime) {
        let flight = self.in_flight[w].take().expect("job in flight");
        if let Some(pending) = flight.pending {
            self.queue.cancel(pending);
        }
        if let Some(watchdog) = flight.watchdog {
            self.queue.cancel(watchdog);
        }
        self.fr.dropped.push(DroppedJob {
            job: flight.job,
            outcome: Outcome::TimedOut,
            attempts: self.fr.attempts[flight.job.id as usize],
        });
        self.observer.emit(
            now,
            TraceEvent::JobTimedOut {
                job: flight.job.id,
                function: flight.job.function.name(),
                worker: w,
            },
        );
        self.with_metrics(|m, h| m.inc(h.jobs_timed_out));
        // The worker is reset exactly as after a normal job: the reboot
        // restores the clean state the next tenant needs.
        self.release_worker(w, now, true);
    }

    fn on_crash(&mut self, w: usize, now: SimTime) {
        if self.fr.dead[w] || matches!(self.nodes[w].state(), SbcState::Off | SbcState::Crashed) {
            // Nothing is running to crash; the planned fault fizzles.
            return;
        }
        self.fault_injected(now, w, FaultKind::Crash);
        if let Some(eid) = self.boot_pending[w].take() {
            self.queue.cancel(eid);
        }
        if let Some(eid) = self.gate_pending[w].take() {
            self.queue.cancel(eid);
        }
        if let Some(flight) = self.in_flight[w].take() {
            if let Some(pending) = flight.pending {
                self.queue.cancel(pending);
            }
            if let Some(timeout) = flight.timeout {
                self.queue.cancel(timeout);
            }
            if let Some(watchdog) = flight.watchdog {
                self.queue.cancel(watchdog);
            }
            self.requeue(flight.job, w, now);
        }
        self.nodes[w].crash(now).expect("node is powered");
        self.mark(now, w, WorkerState::Crashed, 0.0);
        self.queue
            .schedule(now + self.config.faults.detection_delay, Event::Recover(w));
        self.maybe_shed(now);
    }

    fn on_recover(&mut self, w: usize, now: SimTime) {
        if self.fr.dead[w] || self.nodes[w].state() != SbcState::Crashed {
            return;
        }
        self.nodes[w].recover(now).expect("node crashed");
        let watts = self.nodes[w].power().value();
        self.mark(now, w, WorkerState::Booting, watts);
        self.with_metrics(|m, h| m.inc(h.boots));
        self.boot_pending[w] = Some(
            self.queue
                .schedule(now + self.nodes[w].boot_duration(), Event::BootDone(w)),
        );
    }

    fn on_watchdog(&mut self, w: usize, now: SimTime) {
        let Some(flight) = self.in_flight[w].take() else {
            return;
        };
        if let Some(pending) = flight.pending {
            self.queue.cancel(pending);
        }
        if let Some(timeout) = flight.timeout {
            self.queue.cancel(timeout);
        }
        self.requeue(flight.job, w, now);
        self.release_worker(w, now, true);
    }

    fn on_retry(&mut self, job: Job, now: SimTime) {
        let Some(target) = (0..self.config.workers).find(|&w| !self.fr.dead[w]) else {
            self.drop_failed(job, now);
            return;
        };
        self.dispatcher.requeue_front(target, job);
        self.wake_if_needed(now);
    }

    /// Pulls a job back off a failed worker and schedules its retry (or
    /// declares it failed once the budget is spent).
    fn requeue(&mut self, job: Job, w: usize, now: SimTime) {
        self.fr.summary.requeued += 1;
        self.observer.emit(
            now,
            TraceEvent::JobRequeued {
                job: job.id,
                function: job.function.name(),
                worker: w,
            },
        );
        self.with_metrics(|m, h| m.inc(h.jobs_requeued));
        let attempt = self.fr.next_attempt(job);
        if attempt <= self.config.faults.retry.max_attempts {
            let delay = self
                .config
                .faults
                .retry
                .backoff(attempt, self.fr.injector.jitter01());
            self.fr.summary.retries += 1;
            self.observer.emit(
                now,
                TraceEvent::JobRetryScheduled {
                    job: job.id,
                    function: job.function.name(),
                    attempt,
                    delay,
                },
            );
            self.with_metrics(|m, h| m.inc(h.job_retries));
            self.queue.schedule(now + delay, Event::Retry(job));
        } else {
            let attempts = attempt - 1;
            self.observer.emit(
                now,
                TraceEvent::JobFailed {
                    job: job.id,
                    function: job.function.name(),
                    attempts,
                },
            );
            self.fr.dropped.push(DroppedJob {
                job,
                outcome: Outcome::Failed,
                attempts,
            });
            self.with_metrics(|m, h| m.inc(h.jobs_failed));
        }
    }

    /// If no live worker is on a path that ends in pulling the queue
    /// (booting, executing, or recovering), wake one up for the
    /// requeued/redistributed work.
    fn wake_if_needed(&mut self, now: SimTime) {
        let will_pull = (0..self.config.workers).any(|w| {
            !self.fr.dead[w]
                && matches!(
                    self.nodes[w].state(),
                    SbcState::Booting
                        | SbcState::Rebooting
                        | SbcState::Executing
                        | SbcState::Crashed
                )
        });
        if will_pull {
            return;
        }
        let Some(w) = (0..self.config.workers).find(|&w| !self.fr.dead[w]) else {
            return;
        };
        match self.nodes[w].state() {
            // A power-on already in the GPIO actuation window will pull
            // the queue when it lands; actuating again would leave a
            // stale PowerEffective firing into the middle of that boot.
            SbcState::Off if self.boot_pending[w].is_none() => {
                self.observer.emit(
                    now,
                    TraceEvent::WakeRequested {
                        worker: w,
                        reason: "requeue",
                    },
                );
                let effective = self.gpio.actuate(now, w, PowerAction::On);
                self.boot_pending[w] =
                    Some(self.queue.schedule(effective, Event::PowerEffective(w)));
            }
            // A parked (standby) node starts the next job directly.
            SbcState::Idle => self.start_next_job(w, now),
            _ => {}
        }
    }

    /// Moves a dead worker's statically assigned queue to the survivors
    /// round-robin; with nobody left, the jobs are failed outright.
    fn redistribute(&mut self, w: usize, now: SimTime) {
        let stranded = self.dispatcher.drain_worker(w);
        if stranded.is_empty() {
            return;
        }
        if self.fr.live_workers() == 0 {
            for job in stranded {
                self.drop_failed(job, now);
            }
            return;
        }
        let live: Vec<usize> = (0..self.config.workers)
            .filter(|&x| !self.fr.dead[x])
            .collect();
        for (i, job) in stranded.into_iter().enumerate() {
            self.dispatcher.enqueue_back(live[i % live.len()], job);
        }
        self.wake_if_needed(now);
    }

    /// Graceful degradation: when live capacity falls below the
    /// configured fraction, queued batch work is shed so the surviving
    /// workers serve interactive invocations first.
    fn maybe_shed(&mut self, now: SimTime) {
        let up = (0..self.config.workers)
            .filter(|&w| !self.fr.dead[w] && self.nodes[w].state() != SbcState::Crashed)
            .count();
        let floor = self.config.faults.shed_below_capacity * self.config.workers as f64;
        if (up as f64) >= floor {
            return;
        }
        let shed = self
            .dispatcher
            .shed_where(|job| priority_of(job.function) == Priority::Batch);
        for job in shed {
            self.observer.emit(
                now,
                TraceEvent::JobShed {
                    job: job.id,
                    function: job.function.name(),
                },
            );
            self.fr.dropped.push(DroppedJob {
                job,
                outcome: Outcome::Shed,
                attempts: self.fr.attempts[job.id as usize],
            });
            self.with_metrics(|m, h| m.inc(h.jobs_shed));
        }
    }

    /// Frees a worker whose invocation ended. `forced` resets (timeout,
    /// hang, lost result) always reboot to a clean state and never park,
    /// matching the pre-fault timeout semantics.
    fn release_worker(&mut self, w: usize, now: SimTime, forced: bool) {
        if !self.dispatcher.has_work(w) {
            // Queue drained: the governor picks the power regime. Forced
            // resets always gate (timeout semantics predate governors),
            // and the default RebootPerJob always answers PowerOff, so
            // the legacy paths below run unchanged.
            let action = if forced {
                DrainAction::PowerOff
            } else {
                // +1: this worker is still Executing but would join the
                // warm pool, and the contract counts it in.
                let warm_idle = self.warm_idle_count() + 1;
                self.governor.on_drain(now, warm_idle)
            };
            match action {
                DrainAction::PowerOff => {
                    // Power fully down (energy proportionality), or idle
                    // in standby if gating is disabled for the ablation.
                    self.nodes[w]
                        .finish_job_and_power_off(now)
                        .expect("job was executing");
                    if !forced && !self.config.power_gating {
                        // Model standby as the idle draw without the FSM
                        // round trip: the node is "parked".
                        self.meter.set_power(now, self.channels[w], 0.128);
                        self.observer.emit(
                            now,
                            TraceEvent::WorkerStateChange {
                                worker: w,
                                state: WorkerState::Idle,
                            },
                        );
                        self.observer.emit(
                            now,
                            TraceEvent::PowerSample {
                                worker: w,
                                watts: 0.128,
                            },
                        );
                    } else {
                        self.gpio.actuate(now, w, PowerAction::Off);
                        self.mark(now, w, WorkerState::Off, 0.0);
                    }
                }
                DrainAction::Standby { idle_timeout } => {
                    // Stay booted-idle at standby draw; the node can
                    // take a later requeue without paying the boot.
                    self.nodes[w]
                        .finish_job_and_standby(now)
                        .expect("job was executing");
                    self.mark(now, w, WorkerState::Idle, 0.128);
                    self.governor_transition(now, w, "standby");
                    if let Some(window) = idle_timeout {
                        self.gate_pending[w] =
                            Some(self.queue.schedule(now + window, Event::IdleGate(w)));
                    }
                }
            }
        } else {
            self.nodes[w]
                .finish_job_and_reboot(now)
                .expect("job was executing");
            let watts = self.nodes[w].power().value();
            self.mark(now, w, WorkerState::Rebooting, watts);
            let reboot = if forced
                || self
                    .governor
                    .reboot_between_jobs(self.config.reboot_between_jobs)
            {
                self.nodes[w].boot_duration()
            } else {
                SimDuration::ZERO
            };
            if self.sched_active {
                if reboot.is_zero() {
                    self.with_sched_metrics(|m, h| m.inc(h.warm_hits));
                } else {
                    self.with_sched_metrics(|m, h| m.inc(h.cold_boots));
                }
            }
            self.boot_pending[w] = Some(self.queue.schedule(now + reboot, Event::BootDone(w)));
        }
    }

    /// A standby worker's idle window elapsed: ask the governor whether
    /// it finally gates off. Stale gates (the worker crashed, died, or
    /// started a job that re-armed nothing) are dropped silently.
    fn on_idle_gate(&mut self, w: usize, now: SimTime) {
        self.gate_pending[w] = None;
        if self.fr.dead[w] || self.nodes[w].state() != SbcState::Idle {
            return;
        }
        if self.dispatcher.has_work(w) {
            // Work arrived while idle (a requeue that never woke us):
            // run it instead of gating.
            self.start_next_job(w, now);
            return;
        }
        if self
            .governor
            .gate_on_idle_expiry(now, self.warm_idle_count())
        {
            self.nodes[w].power_off(now).expect("node is idle");
            self.gpio.actuate(now, w, PowerAction::Off);
            self.mark(now, w, WorkerState::Off, 0.0);
            self.governor_transition(now, w, "gate-off");
        }
        // A `false` answer leaves the node idle with no further expiry
        // scheduled (see the Governor contract), keeping the loop finite.
    }

    /// Completes a pulled job from the orchestrator's result cache: the
    /// worker never sees it, so it costs zero boot/exec/energy. The job
    /// still gets a record and a completion event (with zero durations)
    /// so completions, traces, and per-function stats stay conserved.
    fn complete_from_cache(&mut self, job: Job, w: usize, key: u64, now: SimTime) {
        self.observer.emit(
            now,
            TraceEvent::CacheHit {
                job: job.id,
                function: job.function.name(),
                key,
            },
        );
        self.observer.emit(
            now,
            TraceEvent::JobCompleted {
                job: job.id,
                function: job.function.name(),
                worker: w,
                exec: SimDuration::ZERO,
                overhead: SimDuration::ZERO,
            },
        );
        self.with_metrics(|m, h| {
            m.inc(h.jobs_completed);
            m.observe(h.exec_seconds, 0.0);
            m.observe(h.overhead_seconds, 0.0);
        });
        self.records.push(JobRecord {
            job,
            worker: w,
            started: now,
            exec: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
        });
        self.last_completion = now;
    }

    fn start_next_job(&mut self, w: usize, now: SimTime) {
        // A job start pre-empts any armed idle-gate window.
        if let Some(eid) = self.gate_pending[w].take() {
            self.queue.cancel(eid);
        }
        // Drain cache hits before committing the worker: each one
        // completes instantly at the orchestrator and the pull loop
        // moves on, so the worker only boots/executes for real misses.
        let next = loop {
            let Some(job) = self.dispatcher.pull(w) else {
                break None;
            };
            let key = content_key(job.function.index(), 0);
            let hit = match self.cache.as_mut() {
                Some(cache) => cache.lookup(key, now.as_micros()).is_some(),
                None => false,
            };
            if !hit {
                break Some(job);
            }
            self.complete_from_cache(job, w, key, now);
        };
        match next {
            Some(job) => {
                self.nodes[w].start_job(now).expect("node is idle");
                let watts = self.nodes[w].power().value();
                self.meter.set_power(now, self.channels[w], watts);
                self.observer.emit(
                    now,
                    TraceEvent::JobStarted {
                        job: job.id,
                        function: job.function.name(),
                        worker: w,
                    },
                );
                self.observer.emit(
                    now,
                    TraceEvent::WorkerStateChange {
                        worker: w,
                        state: WorkerState::Executing,
                    },
                );
                self.observer
                    .emit(now, TraceEvent::PowerSample { worker: w, watts });
                let st = service_time(job.function);
                let mut exec = st
                    .exec(WorkerPlatform::ArmSbc)
                    .mul_f64(self.config.jitter.factor(&mut self.rng));
                if self.config.crypto_exec_scale < 1.0 && is_crypto(job.function) {
                    exec = exec.mul_f64(self.config.crypto_exec_scale);
                }
                let (pending, watchdog) = if self.fr.injector.hangs(w) {
                    // The invocation wedges: no progress event, only the
                    // supervision deadline.
                    self.fault_injected(now, w, FaultKind::Hang);
                    let deadline = now + self.config.faults.hang_watchdog;
                    (
                        None,
                        Some(self.queue.schedule(deadline, Event::Watchdog(w))),
                    )
                } else {
                    (
                        Some(self.queue.schedule(now + exec, Event::ExecDone(w))),
                        None,
                    )
                };
                let timeout = self
                    .timeout_limit(job.function)
                    .map(|limit| self.queue.schedule(now + limit, Event::TimedOut(w)));
                self.in_flight[w] = Some(InFlight {
                    job,
                    started: now,
                    exec,
                    pending,
                    timeout,
                    watchdog,
                    transfer_tries: 0,
                });
            }
            None => {
                // Booted with nothing to do (possible when the initial
                // random assignment left this worker a short queue): the
                // governor decides between gating off and staying warm.
                // The node is already Idle, so `warm_idle_count` counts
                // it, matching the on_drain contract.
                match self.governor.on_drain(now, self.warm_idle_count()) {
                    DrainAction::PowerOff => {
                        if self.config.power_gating {
                            self.nodes[w].power_off(now).expect("node is idle");
                            self.gpio.actuate(now, w, PowerAction::Off);
                            self.mark(now, w, WorkerState::Off, 0.0);
                        }
                    }
                    DrainAction::Standby { idle_timeout } => {
                        // Already idle at standby draw; just arm the
                        // governor's expiry window.
                        self.governor_transition(now, w, "standby");
                        if let Some(window) = idle_timeout {
                            self.gate_pending[w] =
                                Some(self.queue.schedule(now + window, Event::IdleGate(w)));
                        }
                    }
                }
            }
        }
    }
}

/// Publishes the headline `ClusterRun` aggregates as `{prefix}_*`
/// gauges, identical to the values the accessors return.
pub(crate) fn publish_run_gauges(metrics: &mut MetricsRegistry, prefix: &str, run: &ClusterRun) {
    let pairs = [
        ("makespan_seconds", run.makespan.as_secs_f64()),
        ("total_joules", run.energy.total_joules),
        ("average_watts", run.energy.average_watts),
        (
            "joules_per_function",
            run.joules_per_function().unwrap_or(0.0),
        ),
        ("functions_per_minute", run.functions_per_minute()),
    ];
    for (name, value) in pairs {
        let gauge = metrics.gauge(&format!("{prefix}_{name}"));
        metrics.set_gauge(gauge, value);
    }
}

/// Publishes a finished run's cache statistics as `{prefix}_cache_*`
/// counters. Callers gate on the cache being enabled so default
/// expositions stay byte-identical to pre-cache builds.
pub(crate) fn publish_cache_counters(
    metrics: &mut MetricsRegistry,
    prefix: &str,
    stats: &crate::cache::CacheStats,
) {
    let counters = [
        ("cache_hits_total", stats.hits),
        ("cache_misses_total", stats.misses),
        ("cache_coalesced_total", stats.coalesced),
        ("cache_insertions_total", stats.insertions),
        ("cache_evictions_total", stats.evictions),
        ("cache_expirations_total", stats.expirations),
    ];
    for (name, value) in counters {
        let counter = metrics.counter(&format!("{prefix}_{name}"));
        metrics.add(counter, value);
    }
}

fn is_crypto(function: FunctionId) -> bool {
    matches!(
        function,
        FunctionId::CascSha | FunctionId::CascMd5 | FunctionId::Aes128
    )
}

/// Average cluster power with exactly `active` of `total` workers busy —
/// the closed-form behind Fig. 5's SBC line.
pub fn sbc_cluster_power(total: usize, active: usize, power_gating: bool) -> f64 {
    assert!(
        active <= total,
        "cannot have more active workers than workers"
    );
    let idle_draw = if power_gating { 0.0 } else { 0.128 };
    active as f64 * 1.96 + (total - active) as f64 * idle_draw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FunctionSpec;
    use microfaas_sim::faults::{FaultPlan, FaultSpec, FaultTrigger};

    fn quick_config(seed: u64) -> MicroFaasConfig {
        MicroFaasConfig::paper_prototype(WorkloadMix::quick(), seed)
    }

    #[test]
    fn completes_every_job_exactly_once() {
        let run = run_microfaas(&quick_config(1));
        assert_eq!(run.jobs_completed(), WorkloadMix::quick().total_jobs());
        let mut ids: Vec<u64> = run.records.iter().map(|r| r.job.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, run.jobs_completed(), "no duplicates");
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        let a = run_microfaas(&quick_config(7));
        let b = run_microfaas(&quick_config(7));
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.energy.total_joules, b.energy.total_joules);
        assert_eq!(a.records.len(), b.records.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_microfaas(&quick_config(1));
        let b = run_microfaas(&quick_config(2));
        assert_ne!(a.makespan, b.makespan);
    }

    #[test]
    fn result_cache_serves_repeats_for_free() {
        let mut config = quick_config(9);
        config.cache = CacheConfig::parse("lru:64").expect("valid spec");
        let cached = run_microfaas(&config);
        let baseline = run_microfaas(&quick_config(9));
        // Conservation: the cache changes cost, never the job count.
        assert_eq!(cached.jobs_completed(), baseline.jobs_completed());
        assert!(
            cached.makespan < baseline.makespan,
            "hits must shorten the run: {:?} vs {:?}",
            cached.makespan,
            baseline.makespan
        );
        assert!(
            cached.energy.total_joules < baseline.energy.total_joules,
            "hits never boot or execute, so they must save energy"
        );
        // Payload-free closed loop: after each function's first real
        // execution its repeats are served from the cache. Workers that
        // race the same function before its first insert may duplicate
        // a real execution, so the bound is loose on that side only.
        let free = cached.records.iter().filter(|r| r.exec.is_zero()).count();
        let real = cached.records.len() - free;
        let functions = WorkloadMix::quick().functions().len();
        assert!(
            real >= functions,
            "every function pays at least one real execution (real {real})"
        );
        assert!(
            real <= 3 * functions,
            "the cache should absorb nearly every repeat (real {real})"
        );
    }

    #[test]
    fn cache_counters_appear_only_when_the_cache_runs() {
        let mut metrics = MetricsRegistry::new();
        run_microfaas_with(&quick_config(3), &mut Observer::metered(&mut metrics));
        assert!(
            !metrics.render_prometheus().contains("cache_"),
            "default exposition must stay cache-free"
        );

        let mut config = quick_config(3);
        config.cache = CacheConfig::parse("lru:64,ttl=300").expect("valid spec");
        let mut metrics = MetricsRegistry::new();
        run_microfaas_with(&config, &mut Observer::metered(&mut metrics));
        let text = metrics.render_prometheus();
        assert!(text.contains("micro_cache_hits_total"));
        assert!(text.contains("micro_cache_misses_total"));
        assert!(text.contains("micro_cache_insertions_total"));
    }

    #[test]
    fn throughput_near_paper_value() {
        let mut config = MicroFaasConfig::paper_prototype(WorkloadMix::quick(), 3);
        config.mix = WorkloadMix::new(FunctionId::ALL.to_vec(), 100).into();
        let run = run_microfaas(&config);
        let fpm = run.functions_per_minute();
        assert!(
            (fpm - 200.6).abs() < 8.0,
            "throughput {fpm:.1} f/min vs paper 200.6"
        );
    }

    #[test]
    fn energy_per_function_near_paper_value() {
        let mut config = MicroFaasConfig::paper_prototype(WorkloadMix::quick(), 4);
        config.mix = WorkloadMix::new(FunctionId::ALL.to_vec(), 100).into();
        let run = run_microfaas(&config);
        let jpf = run.joules_per_function().expect("jobs ran");
        assert!((jpf - 5.7).abs() < 0.6, "{jpf:.2} J/func vs paper 5.7");
    }

    #[test]
    fn gigabit_nic_speeds_up_cosget() {
        let mix = WorkloadMix::new(vec![FunctionId::CosGet], 40);
        let stock = run_microfaas(&MicroFaasConfig::paper_prototype(mix.clone(), 5));
        let mut upgraded_config = MicroFaasConfig::paper_prototype(mix, 5);
        upgraded_config.worker_nic_bits_per_sec = 1_000_000_000;
        let upgraded = run_microfaas(&upgraded_config);
        let stock_ovh = stock.per_function()[&FunctionId::CosGet].overhead_ms.mean();
        let upgraded_ovh = upgraded.per_function()[&FunctionId::CosGet]
            .overhead_ms
            .mean();
        assert!(
            upgraded_ovh < stock_ovh / 2.0,
            "GigE should halve COSGet overhead: {stock_ovh:.0} -> {upgraded_ovh:.0} ms"
        );
    }

    #[test]
    fn skipping_reboots_raises_throughput() {
        let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 200);
        let with = run_microfaas(&MicroFaasConfig::paper_prototype(mix.clone(), 6));
        let mut without_config = MicroFaasConfig::paper_prototype(mix, 6);
        without_config.reboot_between_jobs = false;
        let without = run_microfaas(&without_config);
        assert!(without.functions_per_minute() > with.functions_per_minute() * 1.5);
    }

    #[test]
    fn crypto_accelerator_speeds_up_cascsha() {
        let mix = WorkloadMix::new(vec![FunctionId::CascSha], 50);
        let stock = run_microfaas(&MicroFaasConfig::paper_prototype(mix.clone(), 8));
        let mut accel_config = MicroFaasConfig::paper_prototype(mix, 8);
        accel_config.crypto_exec_scale = 0.35;
        let accel = run_microfaas(&accel_config);
        let stock_exec = stock.per_function()[&FunctionId::CascSha].exec_ms.mean();
        let accel_exec = accel.per_function()[&FunctionId::CascSha].exec_ms.mean();
        assert!((accel_exec / stock_exec - 0.35).abs() < 0.02);
    }

    #[test]
    fn per_function_times_match_calibration() {
        let mut config =
            MicroFaasConfig::paper_prototype(WorkloadMix::new(FunctionId::ALL.to_vec(), 60), 9);
        config.jitter = Jitter::none();
        let run = run_microfaas(&config);
        for (function, stats) in run.per_function() {
            let expected = service_time(function)
                .exec(WorkerPlatform::ArmSbc)
                .as_millis_f64();
            let measured = stats.exec_ms.mean();
            assert!(
                (measured - expected).abs() < 1.0,
                "{function}: exec {measured:.1} vs calibrated {expected:.1}"
            );
            let expected_ovh = service_time(function)
                .overhead(WorkerPlatform::ArmSbc)
                .as_millis_f64();
            let measured_ovh = stats.overhead_ms.mean();
            assert!(
                (measured_ovh - expected_ovh).abs() < expected_ovh * 0.15 + 3.0,
                "{function}: overhead {measured_ovh:.1} vs calibrated {expected_ovh:.1}"
            );
        }
    }

    #[test]
    fn invocation_timeout_kills_long_jobs() {
        // MatMul runs ~4.7 s on the SBC; a 2 s platform timeout kills
        // every MatMul but leaves RegexMatch (~0.5 s) untouched.
        let mix = WorkloadMix::new(vec![FunctionId::MatMul, FunctionId::RegexMatch], 30);
        let mut config = MicroFaasConfig::paper_prototype(mix, 11);
        config.invocation_timeout = Some(SimDuration::from_secs(2));
        let run = run_microfaas(&config);
        assert_eq!(run.timed_out(), 30, "every MatMul must be killed");
        assert_eq!(run.jobs_completed(), 30, "every RegexMatch must finish");
        assert_eq!(run.jobs_accounted(), 60);
        assert!(
            run.per_function()
                .keys()
                .all(|&f| f == FunctionId::RegexMatch),
            "only RegexMatch completions should be recorded"
        );
    }

    #[test]
    fn registry_timeout_is_enforced_per_function() {
        // Same kill switch, but deployed on the function itself instead
        // of platform-wide: only MatMul carries the 2 s deadline.
        let mix = WorkloadMix::new(vec![FunctionId::MatMul, FunctionId::RegexMatch], 30);
        let mut config = MicroFaasConfig::paper_prototype(mix, 11);
        let name = FunctionId::MatMul.name();
        config
            .registry
            .remove(name)
            .expect("paper suite has MatMul");
        config
            .registry
            .deploy(
                name,
                FunctionSpec {
                    handler: FunctionId::MatMul,
                    memory_mb: 128,
                    timeout: Some(SimDuration::from_secs(2)),
                },
            )
            .expect("redeploy with timeout");
        let run = run_microfaas(&config);
        assert_eq!(run.timed_out(), 30, "every MatMul must be killed");
        assert_eq!(run.jobs_completed(), 30, "every RegexMatch must finish");
    }

    #[test]
    fn timeout_cuts_worst_case_occupancy() {
        // With a timeout, the worker is freed at the limit instead of
        // serving the full 4.7 s MatMul: total makespan shrinks.
        let mix = WorkloadMix::new(vec![FunctionId::MatMul], 40);
        let unlimited = run_microfaas(&MicroFaasConfig::paper_prototype(mix.clone(), 12));
        let mut config = MicroFaasConfig::paper_prototype(mix, 12);
        config.invocation_timeout = Some(SimDuration::from_secs(1));
        let limited = run_microfaas(&config);
        assert_eq!(limited.timed_out(), 40);
        assert!(limited.makespan < unlimited.makespan);
    }

    #[test]
    fn no_timeout_means_no_kills() {
        let run = run_microfaas(&quick_config(13));
        assert_eq!(run.timed_out(), 0);
        assert!(run.dropped.is_empty());
        assert_eq!(run.faults, Default::default());
    }

    #[test]
    fn sbc_hosted_service_bottlenecks_at_scale() {
        // With the object store on a 100 Mb/s SBC, adding workers stops
        // helping a COSGet-heavy workload: the service's TX port is the
        // shared bottleneck (the Gand et al. effect).
        let mix = WorkloadMix::new(vec![FunctionId::CosGet], 120);
        let run_with_workers = |workers: usize| {
            let mut config = MicroFaasConfig::paper_prototype(mix.clone(), 7);
            config.workers = workers;
            config.service_nic_bits_per_sec = 100_000_000;
            run_microfaas(&config).functions_per_minute()
        };
        let five = run_with_workers(5);
        let twenty = run_with_workers(20);
        // A 4x worker increase buys far less than 4x throughput.
        assert!(
            twenty < five * 2.0,
            "service bottleneck should cap scaling: 5 workers {five:.1}, 20 workers {twenty:.1}"
        );
        // With GigE services the same scaling is far better.
        let run_gige = |workers: usize| {
            let mut config = MicroFaasConfig::paper_prototype(mix.clone(), 7);
            config.workers = workers;
            run_microfaas(&config).functions_per_minute()
        };
        let ratio_gige = run_gige(20) / run_gige(5);
        assert!(
            ratio_gige > 3.0,
            "GigE services scale ~linearly, got {ratio_gige:.2}x"
        );
    }

    #[test]
    fn crashed_worker_recovers_and_the_job_is_retried() {
        // MatMul keeps every worker executing from ~1.5 s to ~6.2 s, so
        // a crash at t=5 s lands mid-invocation: the job is requeued,
        // retried elsewhere, and nothing is lost.
        let mix = WorkloadMix::new(vec![FunctionId::MatMul], 40);
        let mut config = MicroFaasConfig::paper_prototype(mix, 21);
        config.faults = FaultsConfig::with_plan(FaultPlan {
            seed: 9,
            faults: vec![FaultSpec {
                kind: FaultKind::Crash,
                worker: Some(3),
                trigger: FaultTrigger::At(SimTime::from_secs(5)),
            }],
        });
        let run = run_microfaas(&config);
        assert_eq!(run.faults.injected, 1);
        assert_eq!(run.faults.requeued, 1);
        assert_eq!(run.faults.retries, 1);
        assert_eq!(run.jobs_completed(), 40, "the retry must recover the job");
        assert_eq!(run.jobs_accounted(), 40);
    }

    #[test]
    fn faulted_runs_are_deterministic_too() {
        let mix = WorkloadMix::new(vec![FunctionId::MatMul, FunctionId::RedisInsert], 30);
        let plan = FaultPlan {
            seed: 5,
            faults: vec![
                FaultSpec {
                    kind: FaultKind::Crash,
                    worker: Some(2),
                    trigger: FaultTrigger::At(SimTime::from_secs(4)),
                },
                FaultSpec {
                    kind: FaultKind::BootFailure,
                    worker: None,
                    trigger: FaultTrigger::Probability(0.2),
                },
                FaultSpec {
                    kind: FaultKind::NetLoss,
                    worker: None,
                    trigger: FaultTrigger::Probability(0.1),
                },
            ],
        };
        let mut config = MicroFaasConfig::paper_prototype(mix, 22);
        config.faults = FaultsConfig::with_plan(plan);
        let a = run_microfaas(&config);
        let b = run_microfaas(&config);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.energy.total_joules, b.energy.total_joules);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.dropped, b.dropped);
    }

    #[test]
    fn losing_most_workers_sheds_batch_work() {
        // Crashing 6 of 10 workers drops live capacity to 4 < 5 (the
        // 0.5 floor): queued CPU-bound work is shed, interactive
        // store/queue calls keep their place.
        let mix = WorkloadMix::new(vec![FunctionId::MatMul, FunctionId::RedisInsert], 100);
        let mut config = MicroFaasConfig::paper_prototype(mix, 23);
        let faults = (0..6)
            .map(|w| FaultSpec {
                kind: FaultKind::Crash,
                worker: Some(w),
                trigger: FaultTrigger::At(SimTime::from_secs(3)),
            })
            .collect();
        config.faults = FaultsConfig::with_plan(FaultPlan { seed: 1, faults });
        let run = run_microfaas(&config);
        assert!(run.shed() > 0, "batch jobs must be shed");
        assert!(run
            .dropped
            .iter()
            .filter(|d| d.outcome == Outcome::Shed)
            .all(|d| priority_of(d.job.function) == Priority::Batch));
        assert_eq!(run.jobs_accounted(), 200);
    }

    #[test]
    fn permanent_boot_failure_kills_the_cluster_but_accounts_every_job() {
        // With boot failure certain, no worker ever comes up: after the
        // retry budget each node is declared dead and every submitted
        // job lands in `dropped`.
        let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 30);
        let mut config = MicroFaasConfig::paper_prototype(mix, 24);
        config.faults = FaultsConfig::with_plan(FaultPlan {
            seed: 2,
            faults: vec![FaultSpec {
                kind: FaultKind::BootFailure,
                worker: None,
                trigger: FaultTrigger::Probability(1.0),
            }],
        });
        let run = run_microfaas(&config);
        assert_eq!(run.jobs_completed(), 0);
        assert_eq!(
            run.jobs_accounted(),
            30,
            "every job reaches a terminal state"
        );
        assert!(run.faults.injected >= 4 * 10, "4 failed boots per worker");
    }

    #[test]
    fn certain_hangs_exhaust_the_retry_budget() {
        let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 2);
        let mut config = MicroFaasConfig::paper_prototype(mix, 25);
        config.workers = 1;
        config.faults = FaultsConfig::with_plan(FaultPlan {
            seed: 3,
            faults: vec![FaultSpec {
                kind: FaultKind::Hang,
                worker: None,
                trigger: FaultTrigger::Probability(1.0),
            }],
        });
        let run = run_microfaas(&config);
        assert_eq!(run.jobs_completed(), 0);
        assert_eq!(run.failed(), 2);
        assert_eq!(run.jobs_accounted(), 2);
        // Initial attempt + 3 retries per job, each hanging once.
        assert_eq!(run.faults.injected, 8);
        assert_eq!(run.faults.retries, 6);
        assert!(run.dropped.iter().all(|d| d.attempts == 3));
    }

    #[test]
    fn certain_net_loss_fails_jobs_after_retransmits() {
        let mix = WorkloadMix::new(vec![FunctionId::RedisInsert], 3);
        let mut config = MicroFaasConfig::paper_prototype(mix, 26);
        config.workers = 2;
        config.faults = FaultsConfig::with_plan(FaultPlan {
            seed: 4,
            faults: vec![FaultSpec {
                kind: FaultKind::NetLoss,
                worker: None,
                trigger: FaultTrigger::Probability(1.0),
            }],
        });
        let run = run_microfaas(&config);
        assert_eq!(run.jobs_completed(), 0, "no result ever arrives");
        assert_eq!(run.failed(), 3);
        assert_eq!(run.jobs_accounted(), 3);
        assert!(run.faults.injected > 0);
    }

    #[test]
    fn cluster_power_formula_is_linear() {
        assert_eq!(sbc_cluster_power(10, 0, true), 0.0);
        assert_eq!(sbc_cluster_power(10, 5, true), 9.8);
        assert_eq!(sbc_cluster_power(10, 10, true), 19.6);
        let with_standby = sbc_cluster_power(10, 5, false);
        assert!((with_standby - (9.8 + 5.0 * 0.128)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let mut config = quick_config(0);
        config.workers = 0;
        run_microfaas(&config);
    }
}
