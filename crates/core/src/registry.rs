//! The function registry: the control-plane metadata a FaaS platform
//! keeps per deployed function — name, handler, memory reservation, and
//! invocation timeout.
//!
//! The paper's prototype hard-wires its 17 functions; a platform a user
//! would adopt needs deployment metadata and admission checks (the
//! BeagleBone's 512 MB ceiling), so this module provides them.

use std::collections::BTreeMap;
use std::fmt;

use microfaas_sim::SimDuration;
use microfaas_workloads::FunctionId;

/// Worker RAM available to a function on the BeagleBone Black.
pub const WORKER_MEMORY_MB: u32 = 512;

/// Metadata for one deployed function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSpec {
    /// The handler to execute.
    pub handler: FunctionId,
    /// Memory the function reserves, MB.
    pub memory_mb: u32,
    /// Kill the invocation after this long (None = run to completion,
    /// the paper's model).
    pub timeout: Option<SimDuration>,
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A function with this name already exists.
    NameTaken(String),
    /// The memory reservation exceeds the worker's RAM.
    MemoryExceedsWorker {
        /// Requested reservation.
        requested_mb: u32,
    },
    /// A zero timeout can never complete an invocation.
    ZeroTimeout,
    /// Lookup failed.
    NoSuchFunction(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::NameTaken(name) => write!(f, "function '{name}' already deployed"),
            RegistryError::MemoryExceedsWorker { requested_mb } => write!(
                f,
                "{requested_mb} MB exceeds the worker's {WORKER_MEMORY_MB} MB"
            ),
            RegistryError::ZeroTimeout => write!(f, "timeout must be positive"),
            RegistryError::NoSuchFunction(name) => write!(f, "no function named '{name}'"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The deployed-function catalog.
///
/// # Examples
///
/// ```
/// use microfaas::registry::{FunctionRegistry, FunctionSpec};
/// use microfaas_sim::SimDuration;
/// use microfaas_workloads::FunctionId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut registry = FunctionRegistry::new();
/// registry.deploy(
///     "thumbnailer",
///     FunctionSpec {
///         handler: FunctionId::Decompress,
///         memory_mb: 128,
///         timeout: Some(SimDuration::from_secs(30)),
///     },
/// )?;
/// assert_eq!(registry.resolve("thumbnailer")?.handler, FunctionId::Decompress);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FunctionRegistry {
    functions: BTreeMap<String, FunctionSpec>,
}

impl FunctionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// A registry with every Table-I function deployed under its paper
    /// name, 128 MB, no timeout (the paper's run-to-completion model).
    pub fn paper_suite() -> Self {
        let mut registry = FunctionRegistry::new();
        for handler in FunctionId::ALL {
            registry
                .deploy(
                    handler.name(),
                    FunctionSpec {
                        handler,
                        memory_mb: 128,
                        timeout: None,
                    },
                )
                .expect("paper names are unique and within limits");
        }
        registry
    }

    /// Deploys a function.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError`] when the name is taken, the reservation
    /// exceeds [`WORKER_MEMORY_MB`], or the timeout is zero.
    pub fn deploy(&mut self, name: &str, spec: FunctionSpec) -> Result<(), RegistryError> {
        if self.functions.contains_key(name) {
            return Err(RegistryError::NameTaken(name.to_string()));
        }
        if spec.memory_mb > WORKER_MEMORY_MB {
            return Err(RegistryError::MemoryExceedsWorker {
                requested_mb: spec.memory_mb,
            });
        }
        if spec.timeout == Some(SimDuration::ZERO) {
            return Err(RegistryError::ZeroTimeout);
        }
        self.functions.insert(name.to_string(), spec);
        Ok(())
    }

    /// Removes a deployment. Returns the removed spec.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::NoSuchFunction`] when absent.
    pub fn remove(&mut self, name: &str) -> Result<FunctionSpec, RegistryError> {
        self.functions
            .remove(name)
            .ok_or_else(|| RegistryError::NoSuchFunction(name.to_string()))
    }

    /// Looks a function up by name.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::NoSuchFunction`] when absent.
    pub fn resolve(&self, name: &str) -> Result<&FunctionSpec, RegistryError> {
        self.functions
            .get(name)
            .ok_or_else(|| RegistryError::NoSuchFunction(name.to_string()))
    }

    /// Deployed names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.functions.keys().map(String::as_str).collect()
    }

    /// Number of deployments.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True if nothing is deployed.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(handler: FunctionId) -> FunctionSpec {
        FunctionSpec {
            handler,
            memory_mb: 64,
            timeout: None,
        }
    }

    #[test]
    fn deploy_resolve_remove() {
        let mut registry = FunctionRegistry::new();
        registry
            .deploy("f", spec(FunctionId::FloatOps))
            .expect("deploy");
        assert_eq!(
            registry.resolve("f").expect("found").handler,
            FunctionId::FloatOps
        );
        assert_eq!(registry.len(), 1);
        registry.remove("f").expect("removed");
        assert!(registry.is_empty());
        assert!(matches!(
            registry.resolve("f"),
            Err(RegistryError::NoSuchFunction(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut registry = FunctionRegistry::new();
        registry
            .deploy("f", spec(FunctionId::FloatOps))
            .expect("deploy");
        assert_eq!(
            registry.deploy("f", spec(FunctionId::MatMul)),
            Err(RegistryError::NameTaken("f".to_string()))
        );
    }

    #[test]
    fn memory_admission_check() {
        let mut registry = FunctionRegistry::new();
        let fat = FunctionSpec {
            handler: FunctionId::MatMul,
            memory_mb: 1_024,
            timeout: None,
        };
        assert_eq!(
            registry.deploy("fat", fat),
            Err(RegistryError::MemoryExceedsWorker {
                requested_mb: 1_024
            })
        );
        // Exactly the worker's RAM is allowed (single tenancy).
        let exact = FunctionSpec {
            handler: FunctionId::MatMul,
            memory_mb: WORKER_MEMORY_MB,
            timeout: None,
        };
        registry.deploy("exact", exact).expect("fits");
    }

    #[test]
    fn zero_timeout_rejected() {
        let mut registry = FunctionRegistry::new();
        let broken = FunctionSpec {
            handler: FunctionId::FloatOps,
            memory_mb: 64,
            timeout: Some(SimDuration::ZERO),
        };
        assert_eq!(
            registry.deploy("broken", broken),
            Err(RegistryError::ZeroTimeout)
        );
    }

    #[test]
    fn paper_suite_has_all_seventeen() {
        let registry = FunctionRegistry::paper_suite();
        assert_eq!(registry.len(), 17);
        assert_eq!(
            registry.resolve("CascSHA").expect("deployed").handler,
            FunctionId::CascSha
        );
        assert!(registry.names().contains(&"COSGet"));
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert_eq!(
            RegistryError::MemoryExceedsWorker { requested_mb: 600 }.to_string(),
            "600 MB exceeds the worker's 512 MB"
        );
    }
}
