//! Experiment drivers — one function per figure or table of the paper's
//! evaluation (Section V). The bench targets in `microfaas-bench` print
//! these results; integration tests assert their shapes.

use microfaas_sim::{MetricsRegistry, Observer};
use microfaas_workloads::FunctionId;

use crate::config::WorkloadMix;
use crate::conventional::{
    run_conventional, run_conventional_with, vm_cluster_power, ConventionalConfig,
};
use crate::micro::{run_microfaas, run_microfaas_with, sbc_cluster_power, MicroFaasConfig};
use crate::recovery::FaultsConfig;
use crate::report::ClusterRun;

/// One row of the Fig. 3 runtime-breakdown chart.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeBreakdownRow {
    /// The workload function.
    pub function: FunctionId,
    /// MicroFaaS mean execution time, ms ("Working").
    pub micro_exec_ms: f64,
    /// MicroFaaS mean network overhead, ms ("Overhead").
    pub micro_overhead_ms: f64,
    /// Conventional mean execution time, ms.
    pub conv_exec_ms: f64,
    /// Conventional mean network overhead, ms.
    pub conv_overhead_ms: f64,
}

impl RuntimeBreakdownRow {
    /// Total MicroFaaS runtime (exec + overhead), ms.
    pub fn micro_total_ms(&self) -> f64 {
        self.micro_exec_ms + self.micro_overhead_ms
    }

    /// Total conventional runtime, ms.
    pub fn conv_total_ms(&self) -> f64 {
        self.conv_exec_ms + self.conv_overhead_ms
    }
}

/// Results of running the full suite on both clusters (Fig. 3 plus the
/// §V headline numbers).
#[derive(Debug, Clone)]
pub struct SuiteComparison {
    /// The MicroFaaS run.
    pub micro: ClusterRun,
    /// The conventional run.
    pub conventional: ClusterRun,
    /// Per-function breakdown rows in Table-I order.
    pub rows: Vec<RuntimeBreakdownRow>,
}

impl SuiteComparison {
    /// Functions where MicroFaaS is faster outright.
    pub fn faster_on_microfaas(&self) -> Vec<FunctionId> {
        self.rows
            .iter()
            .filter(|r| r.micro_total_ms() < r.conv_total_ms())
            .map(|r| r.function)
            .collect()
    }

    /// Functions at better than half the conventional speed (but not
    /// faster outright).
    pub fn within_half_speed(&self) -> Vec<FunctionId> {
        self.rows
            .iter()
            .filter(|r| {
                let ratio = r.micro_total_ms() / r.conv_total_ms();
                (1.0..=2.0).contains(&ratio)
            })
            .map(|r| r.function)
            .collect()
    }

    /// The energy-efficiency gain (conventional J/func ÷ MicroFaaS
    /// J/func); the paper reports 5.6×.
    pub fn efficiency_gain(&self) -> f64 {
        match (
            self.conventional.joules_per_function(),
            self.micro.joules_per_function(),
        ) {
            (Some(conv), Some(micro)) if micro > 0.0 => conv / micro,
            _ => f64::NAN,
        }
    }
}

/// Runs the paper's main experiment — the full suite on both clusters —
/// with `invocations_per_function` per function (the paper uses 1,000).
pub fn compare_suites(invocations_per_function: u32, seed: u64) -> SuiteComparison {
    let mix = WorkloadMix::new(FunctionId::ALL.to_vec(), invocations_per_function);
    let micro = run_microfaas(&MicroFaasConfig::paper_prototype(mix.clone(), seed));
    let conventional = run_conventional(&ConventionalConfig::paper_baseline(mix, seed));
    breakdown(micro, conventional)
}

/// [`compare_suites`] with metrics collection: both runs publish their
/// `micro_*` / `conv_*` series into the same registry, ready for one
/// combined Prometheus exposition (`microfaas compare --metrics-out`).
///
/// Metrics collection never perturbs the simulation — the comparison is
/// bit-identical to [`compare_suites`] at the same arguments.
pub fn compare_suites_metered(
    invocations_per_function: u32,
    seed: u64,
    metrics: &mut MetricsRegistry,
) -> SuiteComparison {
    let mix = WorkloadMix::new(FunctionId::ALL.to_vec(), invocations_per_function);
    let micro = run_microfaas_with(
        &MicroFaasConfig::paper_prototype(mix.clone(), seed),
        &mut Observer::metered(metrics),
    );
    let conventional = run_conventional_with(
        &ConventionalConfig::paper_baseline(mix, seed),
        &mut Observer::metered(metrics),
    );
    breakdown(micro, conventional)
}

/// [`compare_suites_metered`] under a fault plan: both clusters run the
/// same `faults` configuration (`microfaas compare --faults plan.json`).
///
/// With [`FaultsConfig::none`] this is bit-identical to
/// [`compare_suites_metered`] at the same arguments — the fault hooks
/// schedule nothing and draw nothing from an empty plan.
pub fn compare_suites_faulted(
    invocations_per_function: u32,
    seed: u64,
    faults: &FaultsConfig,
    metrics: &mut MetricsRegistry,
) -> SuiteComparison {
    let mix = WorkloadMix::new(FunctionId::ALL.to_vec(), invocations_per_function);
    let mut micro_config = MicroFaasConfig::paper_prototype(mix.clone(), seed);
    micro_config.faults = faults.clone();
    let mut conv_config = ConventionalConfig::paper_baseline(mix, seed);
    conv_config.faults = faults.clone();
    let micro = run_microfaas_with(&micro_config, &mut Observer::metered(metrics));
    let conventional = run_conventional_with(&conv_config, &mut Observer::metered(metrics));
    breakdown(micro, conventional)
}

fn breakdown(micro: ClusterRun, conventional: ClusterRun) -> SuiteComparison {
    let micro_stats = micro.per_function();
    let conv_stats = conventional.per_function();
    let rows = FunctionId::ALL
        .iter()
        .map(|&function| RuntimeBreakdownRow {
            function,
            micro_exec_ms: micro_stats[&function].exec_ms.mean(),
            micro_overhead_ms: micro_stats[&function].overhead_ms.mean(),
            conv_exec_ms: conv_stats[&function].exec_ms.mean(),
            conv_overhead_ms: conv_stats[&function].overhead_ms.mean(),
        })
        .collect();

    SuiteComparison {
        micro,
        conventional,
        rows,
    }
}

/// One point of the Fig. 4 VM-count sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSweepPoint {
    /// VMs on the rack server.
    pub vms: usize,
    /// Measured cluster throughput, functions per minute.
    pub functions_per_minute: f64,
    /// Measured energy per function, joules.
    pub joules_per_function: f64,
}

/// Sweeps the conventional cluster from 1 to `max_vms` VMs (Fig. 4's
/// x-axis), returning one simulated point per count.
pub fn vm_sweep(max_vms: usize, invocations_per_function: u32, seed: u64) -> Vec<VmSweepPoint> {
    (1..=max_vms)
        .map(|vms| {
            let mut config = ConventionalConfig::paper_baseline(
                WorkloadMix::new(FunctionId::ALL.to_vec(), invocations_per_function),
                seed,
            );
            config.vms = vms;
            let run = run_conventional(&config);
            VmSweepPoint {
                vms,
                functions_per_minute: run.functions_per_minute(),
                joules_per_function: run.joules_per_function().unwrap_or(f64::NAN),
            }
        })
        .collect()
}

/// The MicroFaaS reference lines drawn across Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroFaasReference {
    /// 10-SBC throughput, functions per minute.
    pub functions_per_minute: f64,
    /// 10-SBC energy per function, joules.
    pub joules_per_function: f64,
}

/// Measures the 10-SBC reference for Fig. 4.
pub fn microfaas_reference(invocations_per_function: u32, seed: u64) -> MicroFaasReference {
    let run = run_microfaas(&MicroFaasConfig::paper_prototype(
        WorkloadMix::new(FunctionId::ALL.to_vec(), invocations_per_function),
        seed,
    ));
    MicroFaasReference {
        functions_per_minute: run.functions_per_minute(),
        joules_per_function: run.joules_per_function().unwrap_or(f64::NAN),
    }
}

/// One point of the MicroFaaS worker-count scaling study (§III-c's
/// "transparently cost-proportional" claim).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SbcScalePoint {
    /// SBC worker count.
    pub workers: usize,
    /// Measured throughput, functions per minute.
    pub functions_per_minute: f64,
    /// Measured energy per function, joules.
    pub joules_per_function: f64,
}

/// Sweeps the MicroFaaS cluster size. The paper argues capacity and cost
/// scale linearly with node count; throughput per node and J/function
/// should stay constant across the sweep.
pub fn sbc_scale_sweep(
    worker_counts: &[usize],
    invocations_per_function: u32,
    seed: u64,
) -> Vec<SbcScalePoint> {
    worker_counts
        .iter()
        .map(|&workers| {
            let mut config = MicroFaasConfig::paper_prototype(
                WorkloadMix::new(FunctionId::ALL.to_vec(), invocations_per_function),
                seed,
            );
            config.workers = workers;
            let run = run_microfaas(&config);
            SbcScalePoint {
                workers,
                functions_per_minute: run.functions_per_minute(),
                joules_per_function: run.joules_per_function().unwrap_or(f64::NAN),
            }
        })
        .collect()
}

/// One point of the Fig. 5 energy-proportionality chart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionalityPoint {
    /// Active worker count.
    pub active_workers: usize,
    /// 10-SBC cluster draw with that many workers busy, watts.
    pub sbc_cluster_watts: f64,
    /// Rack-server draw with that many VMs busy, watts.
    pub vm_cluster_watts: f64,
}

/// The Fig. 5 series: average cluster power as the number of active
/// workers varies. The SBC cluster starts at ~0 W (everything powered
/// off); the server starts at its 60 W idle floor.
pub fn energy_proportionality(max_workers: usize) -> Vec<ProportionalityPoint> {
    (0..=max_workers)
        .map(|active| ProportionalityPoint {
            active_workers: active,
            sbc_cluster_watts: sbc_cluster_power(max_workers.max(10), active, true),
            vm_cluster_watts: vm_cluster_power(active),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_comparison_reproduces_fig3_claims() {
        let cmp = compare_suites(60, 11);
        assert_eq!(cmp.rows.len(), 17);
        assert_eq!(
            cmp.faster_on_microfaas().len(),
            4,
            "paper: 4 of 17 functions faster on MicroFaaS"
        );
        assert_eq!(
            cmp.within_half_speed().len(),
            9,
            "paper: 9 more at better than half speed"
        );
    }

    #[test]
    fn efficiency_gain_near_5_6x() {
        let cmp = compare_suites(60, 12);
        let gain = cmp.efficiency_gain();
        assert!((gain - 5.6).abs() < 0.8, "gain {gain:.2} vs paper 5.6");
    }

    #[test]
    fn vm_sweep_throughput_rises_then_saturates() {
        let sweep = vm_sweep(20, 20, 13);
        assert_eq!(sweep.len(), 20);
        // Throughput at 6 VMs should roughly double 3 VMs.
        let t3 = sweep[2].functions_per_minute;
        let t6 = sweep[5].functions_per_minute;
        assert!((t6 / t3 - 2.0).abs() < 0.25, "t6/t3 = {:.2}", t6 / t3);
        // Beyond saturation (16 VMs) throughput flattens.
        let t16 = sweep[15].functions_per_minute;
        let t20 = sweep[19].functions_per_minute;
        assert!(t20 / t16 < 1.10, "t20/t16 = {:.2}", t20 / t16);
    }

    #[test]
    fn vm_sweep_efficiency_improves_to_saturation() {
        let sweep = vm_sweep(18, 20, 14);
        let j1 = sweep[0].joules_per_function;
        let j6 = sweep[5].joules_per_function;
        let j16 = sweep[15].joules_per_function;
        assert!(
            j1 > j6 && j6 > j16,
            "J/func should fall: {j1:.1} > {j6:.1} > {j16:.1}"
        );
        // The paper's peak efficiency is ~16.1 J/func.
        assert!((j16 - 16.1).abs() < 2.5, "peak {j16:.1} vs paper 16.1");
    }

    #[test]
    fn sbc_scaling_is_linear_in_node_count() {
        // §III-c: doubling nodes doubles capacity; per-function energy
        // is unchanged. This is what lets a provider quote marginal cost.
        let points = sbc_scale_sweep(&[5, 10, 20, 40], 40, 15);
        let per_node: Vec<f64> = points
            .iter()
            .map(|p| p.functions_per_minute / p.workers as f64)
            .collect();
        for pair in per_node.windows(2) {
            let drift = (pair[1] / pair[0] - 1.0).abs();
            assert!(
                drift < 0.05,
                "per-node rate must stay flat, drift {drift:.3}"
            );
        }
        let jpf: Vec<f64> = points.iter().map(|p| p.joules_per_function).collect();
        for pair in jpf.windows(2) {
            let drift = (pair[1] / pair[0] - 1.0).abs();
            assert!(drift < 0.05, "J/func must stay flat, drift {drift:.3}");
        }
    }

    #[test]
    fn proportionality_series_shape() {
        let series = energy_proportionality(10);
        assert_eq!(series.len(), 11);
        // Idle: SBC cluster ~0 W, server at its 60 W floor.
        assert_eq!(series[0].sbc_cluster_watts, 0.0);
        assert_eq!(series[0].vm_cluster_watts, 60.0);
        // Fully busy: 10 SBCs still draw less than the idle server.
        assert!(series[10].sbc_cluster_watts < series[0].vm_cluster_watts);
        // Both lines are monotone.
        for pair in series.windows(2) {
            assert!(pair[1].sbc_cluster_watts >= pair[0].sbc_cluster_watts);
            assert!(pair[1].vm_cluster_watts >= pair[0].vm_cluster_watts);
        }
    }
}
