//! Experiment drivers — one function per figure or table of the paper's
//! evaluation (Section V). The bench targets in `microfaas-bench` print
//! these results; integration tests assert their shapes.
//!
//! Every sweep and replicate driver here runs on the parallel
//! deterministic experiment engine ([`microfaas_sim::exec`]): pass
//! [`Jobs`] to the `*_jobs` variants to fan independent simulation runs
//! across cores. Output is **bit-identical** for every job count — each
//! run derives all randomness from its own config and seed, and results
//! are gathered in canonical submission order (see
//! `docs/PERFORMANCE.md`). The plain entry points default to
//! [`Jobs::auto`] (available parallelism, overridable via the
//! `MICROFAAS_JOBS` environment variable).

use std::sync::Arc;

use microfaas_sched::{edp_winner, pareto_front, GovernorKind, PlacementKind};
use microfaas_sim::{exec, Jobs, MetricsRegistry, Observer, OnlineStats, SimDuration};
use microfaas_workloads::FunctionId;

use crate::arrivals::Scenario;
use crate::cache::CacheConfig;
use crate::config::WorkloadMix;
use crate::conventional::{
    run_conventional, run_conventional_with, vm_cluster_power, ConventionalConfig,
};
use crate::micro::{run_microfaas, run_microfaas_with, sbc_cluster_power, MicroFaasConfig};
use crate::openloop::{run_open_loop, ArrivalProcess, OpenLoopConfig, OpenLoopRun};
use crate::recovery::FaultsConfig;
use crate::report::ClusterRun;

/// The paper's evaluation mix, shared across sweep points without
/// re-allocating the function list per run.
fn suite_mix(invocations_per_function: u32) -> Arc<WorkloadMix> {
    Arc::new(WorkloadMix::new(
        FunctionId::ALL.to_vec(),
        invocations_per_function,
    ))
}

/// One row of the Fig. 3 runtime-breakdown chart.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeBreakdownRow {
    /// The workload function.
    pub function: FunctionId,
    /// MicroFaaS mean execution time, ms ("Working").
    pub micro_exec_ms: f64,
    /// MicroFaaS mean network overhead, ms ("Overhead").
    pub micro_overhead_ms: f64,
    /// Conventional mean execution time, ms.
    pub conv_exec_ms: f64,
    /// Conventional mean network overhead, ms.
    pub conv_overhead_ms: f64,
}

impl RuntimeBreakdownRow {
    /// Total MicroFaaS runtime (exec + overhead), ms.
    pub fn micro_total_ms(&self) -> f64 {
        self.micro_exec_ms + self.micro_overhead_ms
    }

    /// Total conventional runtime, ms.
    pub fn conv_total_ms(&self) -> f64 {
        self.conv_exec_ms + self.conv_overhead_ms
    }
}

/// Results of running the full suite on both clusters (Fig. 3 plus the
/// §V headline numbers).
#[derive(Debug, Clone)]
pub struct SuiteComparison {
    /// The MicroFaaS run.
    pub micro: ClusterRun,
    /// The conventional run.
    pub conventional: ClusterRun,
    /// Per-function breakdown rows in Table-I order.
    pub rows: Vec<RuntimeBreakdownRow>,
}

impl SuiteComparison {
    /// Functions where MicroFaaS is faster outright.
    pub fn faster_on_microfaas(&self) -> Vec<FunctionId> {
        self.rows
            .iter()
            .filter(|r| r.micro_total_ms() < r.conv_total_ms())
            .map(|r| r.function)
            .collect()
    }

    /// Functions at better than half the conventional speed (but not
    /// faster outright).
    pub fn within_half_speed(&self) -> Vec<FunctionId> {
        self.rows
            .iter()
            .filter(|r| {
                let ratio = r.micro_total_ms() / r.conv_total_ms();
                (1.0..=2.0).contains(&ratio)
            })
            .map(|r| r.function)
            .collect()
    }

    /// The energy-efficiency gain (conventional J/func ÷ MicroFaaS
    /// J/func); the paper reports 5.6×.
    pub fn efficiency_gain(&self) -> f64 {
        match (
            self.conventional.joules_per_function(),
            self.micro.joules_per_function(),
        ) {
            (Some(conv), Some(micro)) if micro > 0.0 => conv / micro,
            _ => f64::NAN,
        }
    }
}

/// Runs the paper's main experiment — the full suite on both clusters —
/// with `invocations_per_function` per function (the paper uses 1,000).
/// The two cluster runs execute concurrently under [`Jobs::auto`].
pub fn compare_suites(invocations_per_function: u32, seed: u64) -> SuiteComparison {
    compare_suites_jobs(invocations_per_function, seed, Jobs::auto())
}

/// [`compare_suites`] with an explicit [`Jobs`] budget: the MicroFaaS
/// and conventional runs are independent simulations, so with `jobs >=
/// 2` they execute on separate threads. Bit-identical at every job
/// count.
pub fn compare_suites_jobs(
    invocations_per_function: u32,
    seed: u64,
    jobs: Jobs,
) -> SuiteComparison {
    let mix = suite_mix(invocations_per_function);
    let mut runs = exec::par_map_indexed(jobs, 2, |i| {
        if i == 0 {
            run_microfaas(&MicroFaasConfig::paper_prototype(Arc::clone(&mix), seed))
        } else {
            run_conventional(&ConventionalConfig::paper_baseline(Arc::clone(&mix), seed))
        }
    });
    let conventional = runs.pop().expect("two runs");
    let micro = runs.pop().expect("two runs");
    breakdown(micro, conventional)
}

/// [`compare_suites`] with metrics collection: both runs publish their
/// `micro_*` / `conv_*` series into the same registry, ready for one
/// combined Prometheus exposition (`microfaas compare --metrics-out`).
///
/// Metrics collection never perturbs the simulation — the comparison is
/// bit-identical to [`compare_suites`] at the same arguments.
pub fn compare_suites_metered(
    invocations_per_function: u32,
    seed: u64,
    metrics: &mut MetricsRegistry,
) -> SuiteComparison {
    compare_suites_metered_jobs(invocations_per_function, seed, metrics, Jobs::auto())
}

/// [`compare_suites_metered`] with an explicit [`Jobs`] budget. In
/// parallel mode each cluster meters into a private registry; merging
/// micro-then-conv in canonical order reproduces the sequential
/// registration order, so the rendered exposition is byte-identical to
/// the serial path.
pub fn compare_suites_metered_jobs(
    invocations_per_function: u32,
    seed: u64,
    metrics: &mut MetricsRegistry,
    jobs: Jobs,
) -> SuiteComparison {
    compare_suites_faulted_jobs(
        invocations_per_function,
        seed,
        &FaultsConfig::none(),
        metrics,
        jobs,
    )
}

/// [`compare_suites_metered`] under a fault plan: both clusters run the
/// same `faults` configuration (`microfaas compare --faults plan.json`).
///
/// With [`FaultsConfig::none`] this is bit-identical to
/// [`compare_suites_metered`] at the same arguments — the fault hooks
/// schedule nothing and draw nothing from an empty plan.
pub fn compare_suites_faulted(
    invocations_per_function: u32,
    seed: u64,
    faults: &FaultsConfig,
    metrics: &mut MetricsRegistry,
) -> SuiteComparison {
    compare_suites_faulted_jobs(
        invocations_per_function,
        seed,
        faults,
        metrics,
        Jobs::auto(),
    )
}

/// [`compare_suites_faulted`] with an explicit [`Jobs`] budget; fault
/// counters and the metrics exposition stay bit-identical to the serial
/// path at every job count.
pub fn compare_suites_faulted_jobs(
    invocations_per_function: u32,
    seed: u64,
    faults: &FaultsConfig,
    metrics: &mut MetricsRegistry,
    jobs: Jobs,
) -> SuiteComparison {
    let mix = suite_mix(invocations_per_function);
    let micro_config = {
        let mut config = MicroFaasConfig::paper_prototype(Arc::clone(&mix), seed);
        config.faults = faults.clone();
        config
    };
    let conv_config = {
        let mut config = ConventionalConfig::paper_baseline(Arc::clone(&mix), seed);
        config.faults = faults.clone();
        config
    };
    if jobs.is_serial() {
        let micro = run_microfaas_with(&micro_config, &mut Observer::metered(metrics));
        let conventional = run_conventional_with(&conv_config, &mut Observer::metered(metrics));
        return breakdown(micro, conventional);
    }
    // Each run meters into its own registry; the per-run registries are
    // merged below in canonical (micro, conv) order, which reproduces
    // the serial registration order byte-for-byte.
    let mut runs = exec::par_map_indexed(jobs, 2, |i| {
        let mut private = MetricsRegistry::new();
        let run = if i == 0 {
            run_microfaas_with(&micro_config, &mut Observer::metered(&mut private))
        } else {
            run_conventional_with(&conv_config, &mut Observer::metered(&mut private))
        };
        (run, private)
    });
    let (conventional, conv_metrics) = runs.pop().expect("two runs");
    let (micro, micro_metrics) = runs.pop().expect("two runs");
    metrics.merge(&micro_metrics);
    metrics.merge(&conv_metrics);
    breakdown(micro, conventional)
}

fn breakdown(micro: ClusterRun, conventional: ClusterRun) -> SuiteComparison {
    let micro_stats = micro.per_function();
    let conv_stats = conventional.per_function();
    let rows = FunctionId::ALL
        .iter()
        .map(|&function| RuntimeBreakdownRow {
            function,
            micro_exec_ms: micro_stats[&function].exec_ms.mean(),
            micro_overhead_ms: micro_stats[&function].overhead_ms.mean(),
            conv_exec_ms: conv_stats[&function].exec_ms.mean(),
            conv_overhead_ms: conv_stats[&function].overhead_ms.mean(),
        })
        .collect();

    SuiteComparison {
        micro,
        conventional,
        rows,
    }
}

/// One point of the Fig. 4 VM-count sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSweepPoint {
    /// VMs on the rack server.
    pub vms: usize,
    /// Measured cluster throughput, functions per minute.
    pub functions_per_minute: f64,
    /// Measured energy per function, joules.
    pub joules_per_function: f64,
}

/// Sweeps the conventional cluster from 1 to `max_vms` VMs (Fig. 4's
/// x-axis), returning one simulated point per count. Points run in
/// parallel under [`Jobs::auto`].
pub fn vm_sweep(max_vms: usize, invocations_per_function: u32, seed: u64) -> Vec<VmSweepPoint> {
    vm_sweep_jobs(max_vms, invocations_per_function, seed, Jobs::auto())
}

/// [`vm_sweep`] with an explicit [`Jobs`] budget. Every point is an
/// independent run seeded identically, so the sweep is bit-identical at
/// every job count; the mix is built once and shared across points.
pub fn vm_sweep_jobs(
    max_vms: usize,
    invocations_per_function: u32,
    seed: u64,
    jobs: Jobs,
) -> Vec<VmSweepPoint> {
    let mix = suite_mix(invocations_per_function);
    exec::par_map_indexed(jobs, max_vms, |i| {
        let vms = i + 1;
        let mut config = ConventionalConfig::paper_baseline(Arc::clone(&mix), seed);
        config.vms = vms;
        let run = run_conventional(&config);
        VmSweepPoint {
            vms,
            functions_per_minute: run.functions_per_minute(),
            joules_per_function: run.joules_per_function().unwrap_or(f64::NAN),
        }
    })
}

/// The MicroFaaS reference lines drawn across Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroFaasReference {
    /// 10-SBC throughput, functions per minute.
    pub functions_per_minute: f64,
    /// 10-SBC energy per function, joules.
    pub joules_per_function: f64,
}

/// Measures the 10-SBC reference for Fig. 4.
pub fn microfaas_reference(invocations_per_function: u32, seed: u64) -> MicroFaasReference {
    let run = run_microfaas(&MicroFaasConfig::paper_prototype(
        suite_mix(invocations_per_function),
        seed,
    ));
    MicroFaasReference {
        functions_per_minute: run.functions_per_minute(),
        joules_per_function: run.joules_per_function().unwrap_or(f64::NAN),
    }
}

/// One point of the MicroFaaS worker-count scaling study (§III-c's
/// "transparently cost-proportional" claim).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SbcScalePoint {
    /// SBC worker count.
    pub workers: usize,
    /// Measured throughput, functions per minute.
    pub functions_per_minute: f64,
    /// Measured energy per function, joules.
    pub joules_per_function: f64,
}

/// Sweeps the MicroFaaS cluster size. The paper argues capacity and cost
/// scale linearly with node count; throughput per node and J/function
/// should stay constant across the sweep. Points run in parallel under
/// [`Jobs::auto`].
pub fn sbc_scale_sweep(
    worker_counts: &[usize],
    invocations_per_function: u32,
    seed: u64,
) -> Vec<SbcScalePoint> {
    sbc_scale_sweep_jobs(worker_counts, invocations_per_function, seed, Jobs::auto())
}

/// [`sbc_scale_sweep`] with an explicit [`Jobs`] budget; bit-identical
/// at every job count.
pub fn sbc_scale_sweep_jobs(
    worker_counts: &[usize],
    invocations_per_function: u32,
    seed: u64,
    jobs: Jobs,
) -> Vec<SbcScalePoint> {
    let mix = suite_mix(invocations_per_function);
    exec::par_map(jobs, worker_counts, |&workers| {
        let mut config = MicroFaasConfig::paper_prototype(Arc::clone(&mix), seed);
        config.workers = workers;
        let run = run_microfaas(&config);
        SbcScalePoint {
            workers,
            functions_per_minute: run.functions_per_minute(),
            joules_per_function: run.joules_per_function().unwrap_or(f64::NAN),
        }
    })
}

/// One point of the Fig. 5 energy-proportionality chart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionalityPoint {
    /// Active worker count.
    pub active_workers: usize,
    /// 10-SBC cluster draw with that many workers busy, watts.
    pub sbc_cluster_watts: f64,
    /// Rack-server draw with that many VMs busy, watts.
    pub vm_cluster_watts: f64,
}

/// The Fig. 5 series: average cluster power as the number of active
/// workers varies. The SBC cluster starts at ~0 W (everything powered
/// off); the server starts at its 60 W idle floor.
pub fn energy_proportionality(max_workers: usize) -> Vec<ProportionalityPoint> {
    (0..=max_workers)
        .map(|active| ProportionalityPoint {
            active_workers: active,
            sbc_cluster_watts: sbc_cluster_power(max_workers.max(10), active, true),
            vm_cluster_watts: vm_cluster_power(active),
        })
        .collect()
}

/// Aggregate statistics over `n` seed replicates of one cluster
/// configuration — the statistically-honest way to report a headline
/// number (mean ± spread over seeds rather than one lucky run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicateSummary {
    /// Replicates aggregated.
    pub runs: u32,
    /// Throughput distribution over replicates, functions per minute.
    pub functions_per_minute: OnlineStats,
    /// Energy distribution over replicates, joules per function.
    pub joules_per_function: OnlineStats,
    /// Makespan distribution over replicates, seconds.
    pub makespan_seconds: OnlineStats,
    /// Completed invocations across all replicates.
    pub jobs_completed: u64,
    /// Dropped invocations (timed out, shed, or failed) across all
    /// replicates.
    pub jobs_dropped: u64,
    /// Faults injected across all replicates.
    pub faults_injected: u64,
    /// Recovery retries scheduled across all replicates.
    pub fault_retries: u64,
}

impl ReplicateSummary {
    /// Folds completed runs (in canonical seed order) into the summary.
    pub fn from_runs(runs: &[ClusterRun]) -> Self {
        let mut summary = ReplicateSummary {
            runs: runs.len() as u32,
            ..ReplicateSummary::default()
        };
        for run in runs {
            summary
                .functions_per_minute
                .record(run.functions_per_minute());
            if let Some(jpf) = run.joules_per_function() {
                summary.joules_per_function.record(jpf);
            }
            summary.makespan_seconds.record(run.makespan.as_secs_f64());
            summary.jobs_completed += run.jobs_completed();
            summary.jobs_dropped += run.dropped.len() as u64;
            summary.faults_injected += run.faults.injected;
            summary.fault_retries += run.faults.retries;
        }
        summary
    }
}

/// Runs `n` independent replicates — replicate `i` calls
/// `run_at(base_seed + i)` — with up to `jobs` concurrent workers, and aggregates them
/// via [`sim::stats`](OnlineStats). Replicates are folded in canonical
/// seed order, so the summary (including its floating-point
/// accumulations) is bit-identical at every job count.
///
/// # Examples
///
/// ```
/// use microfaas::config::WorkloadMix;
/// use microfaas::experiment::run_replicates;
/// use microfaas::micro::{run_microfaas, MicroFaasConfig};
/// use microfaas_sim::Jobs;
/// use std::sync::Arc;
///
/// let mix = Arc::new(WorkloadMix::quick());
/// let summary = run_replicates(3, 42, Jobs::serial(), |seed| {
///     run_microfaas(&MicroFaasConfig::paper_prototype(Arc::clone(&mix), seed))
/// });
/// assert_eq!(summary.runs, 3);
/// assert_eq!(summary.functions_per_minute.count(), 3);
/// assert!(summary.functions_per_minute.mean() > 0.0);
/// ```
pub fn run_replicates<F>(n: u32, base_seed: u64, jobs: Jobs, run_at: F) -> ReplicateSummary
where
    F: Fn(u64) -> ClusterRun + Sync,
{
    let runs = exec::par_map_indexed(jobs, n as usize, |i| run_at(base_seed + i as u64));
    ReplicateSummary::from_runs(&runs)
}

/// [`run_replicates`] over the MicroFaaS cluster: replicate `i` runs
/// `base` with seed `base_seed + i`. Cloning the config per replicate
/// is cheap — the mix and fault plan are [`Arc`]-shared.
pub fn micro_replicates(
    base: &MicroFaasConfig,
    n: u32,
    base_seed: u64,
    jobs: Jobs,
) -> ReplicateSummary {
    run_replicates(n, base_seed, jobs, |seed| {
        let mut config = base.clone();
        config.seed = seed;
        run_microfaas(&config)
    })
}

/// [`run_replicates`] over the conventional cluster: replicate `i` runs
/// `base` with seed `base_seed + i`.
pub fn conventional_replicates(
    base: &ConventionalConfig,
    n: u32,
    base_seed: u64,
    jobs: Jobs,
) -> ReplicateSummary {
    run_replicates(n, base_seed, jobs, |seed| {
        let mut config = base.clone();
        config.seed = seed;
        run_conventional(&config)
    })
}

/// One point of the placement × governor policy sweep: a full open-loop
/// run under one `(placement, governor)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyPoint {
    /// Placement policy this point ran under.
    pub placement: PlacementKind,
    /// Power governor this point ran under.
    pub governor: GovernorKind,
    /// Jobs completed over the run.
    pub completed: u64,
    /// Mean end-to-end latency, seconds.
    pub mean_latency_s: f64,
    /// 95th-percentile end-to-end latency, seconds.
    pub p95_latency_s: f64,
    /// Time-averaged cluster power, watts.
    pub mean_power_w: f64,
    /// Energy per completed function, joules.
    pub joules_per_function: f64,
    /// GPIO power-on actuations (cold boots paid).
    pub power_cycles: u64,
    /// Result-cache hit rate over all completions — `(hits + coalesced)
    /// / completed` — or `0.0` when the sweep ran cache-off.
    pub hit_rate: f64,
    /// Cache consultations over the run (hits + misses + coalesced
    /// followers); `0` when the sweep ran cache-off. The CLI suppresses
    /// its conditional `hit%` summary column when a whole sweep records
    /// none, so a cached-but-idle run prints like an uncached one.
    pub cache_lookups: u64,
    /// Estimated joules the cache's zero-energy completions avoided,
    /// extrapolated from the measured per-*executed*-function energy;
    /// `0.0` cache-off.
    pub joules_saved: f64,
    /// Energy-delay product (mean latency × joules per function) as
    /// measured. With a cache on, both factors already include the free
    /// completions — this is the "cached EDP" the winner re-evaluation
    /// ranks by.
    pub cached_edp: f64,
    /// Whether this point sits on the latency–energy Pareto front
    /// (minimizing both [`PolicyPoint::mean_latency_s`] and
    /// [`PolicyPoint::joules_per_function`]) over the whole sweep.
    pub pareto: bool,
}

/// Folds one finished open-loop run into a [`PolicyPoint`] (Pareto flag
/// unset; the sweep computes fronts after gathering).
fn policy_point(
    placement: PlacementKind,
    governor: GovernorKind,
    run: &OpenLoopRun,
) -> PolicyPoint {
    let skipped = run.cache_hits + run.cache_coalesced;
    let hit_rate = if run.completed > 0 {
        skipped as f64 / run.completed as f64
    } else {
        0.0
    };
    // Energy was only spent on the executed (missed) jobs; each skipped
    // completion avoided that per-executed-function cost.
    let total_joules = run.joules_per_function * run.completed as f64;
    let joules_saved = if skipped > 0 && run.cache_misses > 0 {
        skipped as f64 * total_joules / run.cache_misses as f64
    } else {
        0.0
    };
    PolicyPoint {
        placement,
        governor,
        completed: run.completed,
        mean_latency_s: run.mean_latency_s,
        p95_latency_s: run.p95_latency_s,
        mean_power_w: run.mean_power_w,
        joules_per_function: run.joules_per_function,
        power_cycles: run.power_cycles,
        hit_rate,
        cache_lookups: run.cache_hits + run.cache_misses + run.cache_coalesced,
        joules_saved,
        cached_edp: run.mean_latency_s * run.joules_per_function,
        pareto: false,
    }
}

/// Crosses every [`PlacementKind`] with every [`GovernorKind`]
/// (35 combinations) on the open-loop cluster and flags the
/// latency–energy Pareto front. The interesting regime is **sparse**
/// load — per-node idle gaps above the ~23 s standby/boot break-even —
/// where keeping nodes warm genuinely trades energy for latency; at
/// saturating rates keep-alive simply dominates and the front
/// collapses. Points run in parallel under [`Jobs::auto`].
pub fn policy_sweep(
    per_second: f64,
    duration: SimDuration,
    workers: usize,
    seed: u64,
) -> Vec<PolicyPoint> {
    policy_sweep_jobs(per_second, duration, workers, seed, Jobs::auto())
}

/// [`policy_sweep`] with an explicit [`Jobs`] budget. Each point is an
/// independent, identically-seeded run and results are gathered in
/// canonical order, so the sweep is bit-identical at every job count.
pub fn policy_sweep_jobs(
    per_second: f64,
    duration: SimDuration,
    workers: usize,
    seed: u64,
    jobs: Jobs,
) -> Vec<PolicyPoint> {
    policy_sweep_cached_jobs(per_second, duration, workers, seed, &CacheConfig::Off, jobs)
}

/// [`policy_sweep_jobs`] with a result cache installed on every point
/// (`microfaas sched --cache`): the `hit_rate`, `joules_saved`, and
/// `cached_edp` columns become live measurements and the Pareto front
/// re-forms around the cache's zero-energy completions. With
/// [`CacheConfig::Off`] this is exactly [`policy_sweep_jobs`].
pub fn policy_sweep_cached_jobs(
    per_second: f64,
    duration: SimDuration,
    workers: usize,
    seed: u64,
    cache: &CacheConfig,
    jobs: Jobs,
) -> Vec<PolicyPoint> {
    let combos: Vec<(PlacementKind, GovernorKind)> = PlacementKind::ALL
        .into_iter()
        .flat_map(|p| GovernorKind::ALL.into_iter().map(move |g| (p, g)))
        .collect();
    let mut points = exec::par_map(jobs, &combos, |&(placement, governor)| {
        let mut config = OpenLoopConfig::paper_arrangement(1, duration, seed);
        config.workers = workers;
        config.arrival = ArrivalProcess::Poisson { per_second };
        config.scheduler = placement;
        config.governor = governor;
        config.cache = *cache;
        let run = run_open_loop(&config);
        policy_point(placement, governor, &run)
    });
    let coords: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.mean_latency_s, p.joules_per_function))
        .collect();
    for (point, on_front) in points.iter_mut().zip(pareto_front(&coords)) {
        point.pareto = on_front;
    }
    points
}

/// Renders a sweep as the CSV the `sched` CLI subcommand emits (see
/// `docs/EXPERIMENTS.md` for the column contract).
pub fn policy_sweep_csv(points: &[PolicyPoint]) -> String {
    let mut out = String::from(
        "placement,governor,completed,mean_latency_s,p95_latency_s,\
         mean_power_w,joules_per_function,power_cycles,hit_rate,\
         joules_saved,cached_edp,pareto\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6},{:.6},{},{:.6},{:.6},{:.6},{}\n",
            p.placement.label(),
            p.governor.label(),
            p.completed,
            p.mean_latency_s,
            p.p95_latency_s,
            p.mean_power_w,
            p.joules_per_function,
            p.power_cycles,
            p.hit_rate,
            p.joules_saved,
            p.cached_edp,
            u8::from(p.pareto),
        ));
    }
    out
}

/// One traffic regime's slice of a [`scenario_sweep`]: the full
/// placement × governor cross product run under that regime's arrival
/// process, popularity skew, and tenant mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The regime that was run.
    pub scenario: Scenario,
    /// One [`PolicyPoint`] per placement × governor pair, in canonical
    /// order; `pareto` flags are computed **within this regime**.
    pub points: Vec<PolicyPoint>,
    /// Worst-tenant SLO attainment per point (aligned with
    /// [`ScenarioOutcome::points`]); `NaN` when the regime has no
    /// tenant classes.
    pub slo_attainment: Vec<f64>,
    /// Index into [`ScenarioOutcome::points`] of the regime's
    /// energy-delay-product winner ([`microfaas_sched::edp_winner`]).
    pub winner: usize,
}

impl ScenarioOutcome {
    /// The regime's EDP-winning point.
    pub fn winning_point(&self) -> &PolicyPoint {
        &self.points[self.winner]
    }
}

/// Runs [`policy_sweep`]'s placement × governor cross product once per
/// scenario and names each regime's energy-delay-product winner — the
/// regime-conditional answer to "which policy should I deploy?". The
/// per-regime winner genuinely moves with traffic shape; the worked
/// example in `docs/WORKLOADS.md` and `examples/diurnal_pareto.rs`
/// show the flip. Runs under [`Jobs::auto`].
pub fn scenario_sweep(
    scenarios: &[Scenario],
    duration: SimDuration,
    workers: usize,
    seed: u64,
) -> Vec<ScenarioOutcome> {
    scenario_sweep_jobs(scenarios, duration, workers, seed, Jobs::auto())
}

/// [`scenario_sweep`] with an explicit [`Jobs`] budget. The full
/// scenarios × placements × governors cube is flattened into one
/// parallel batch; every run derives its randomness from the shared
/// `seed`, so results are bit-identical at every job count.
pub fn scenario_sweep_jobs(
    scenarios: &[Scenario],
    duration: SimDuration,
    workers: usize,
    seed: u64,
    jobs: Jobs,
) -> Vec<ScenarioOutcome> {
    scenario_sweep_cached_jobs(scenarios, duration, workers, seed, &CacheConfig::Off, jobs)
}

/// [`scenario_sweep_jobs`] with a result cache installed on every point
/// (`microfaas scenarios --cache`): per-regime winners are re-evaluated
/// on the cached latency/energy numbers, which is how the cache
/// reshapes the regime-conditional policy answer. With
/// [`CacheConfig::Off`] this is exactly [`scenario_sweep_jobs`].
pub fn scenario_sweep_cached_jobs(
    scenarios: &[Scenario],
    duration: SimDuration,
    workers: usize,
    seed: u64,
    cache: &CacheConfig,
    jobs: Jobs,
) -> Vec<ScenarioOutcome> {
    let combos: Vec<(usize, PlacementKind, GovernorKind)> = (0..scenarios.len())
        .flat_map(|s| {
            PlacementKind::ALL
                .into_iter()
                .flat_map(move |p| GovernorKind::ALL.into_iter().map(move |g| (s, p, g)))
        })
        .collect();
    let per_scenario = PlacementKind::ALL.len() * GovernorKind::ALL.len();
    let runs = exec::par_map(jobs, &combos, |&(s, placement, governor)| {
        let scenario = &scenarios[s];
        let mut config = OpenLoopConfig::paper_arrangement(1, duration, seed);
        config.workers = workers;
        config.arrival = scenario.arrival;
        config.popularity = scenario.popularity;
        config.tenants = scenario.tenants.clone();
        config.scheduler = placement;
        config.governor = governor;
        config.cache = *cache;
        let run = run_open_loop(&config);
        let attainment = run
            .tenants
            .iter()
            .map(|t| t.attainment())
            .fold(f64::NAN, f64::min);
        (policy_point(placement, governor, &run), attainment)
    });
    runs.chunks(per_scenario)
        .zip(scenarios)
        .map(|(chunk, scenario)| {
            let mut points: Vec<PolicyPoint> = chunk.iter().map(|(p, _)| *p).collect();
            let slo_attainment: Vec<f64> = chunk.iter().map(|(_, a)| *a).collect();
            let coords: Vec<(f64, f64)> = points
                .iter()
                .map(|p| (p.mean_latency_s, p.joules_per_function))
                .collect();
            for (point, on_front) in points.iter_mut().zip(pareto_front(&coords)) {
                point.pareto = on_front;
            }
            let winner = edp_winner(&coords).expect("cross product is never empty");
            ScenarioOutcome {
                scenario: scenario.clone(),
                points,
                slo_attainment,
                winner,
            }
        })
        .collect()
}

/// Renders a scenario sweep as the CSV the `scenarios` CLI subcommand
/// emits (see `docs/EXPERIMENTS.md` for the column contract). The
/// `slo_attainment` column is empty for regimes without tenant classes,
/// and `winner` marks each regime's energy-delay-product pick.
pub fn scenario_sweep_csv(outcomes: &[ScenarioOutcome]) -> String {
    let mut out = String::from(
        "scenario,placement,governor,completed,mean_latency_s,p95_latency_s,\
         mean_power_w,joules_per_function,power_cycles,slo_attainment,\
         hit_rate,joules_saved,cached_edp,pareto,winner\n",
    );
    for outcome in outcomes {
        for (i, p) in outcome.points.iter().enumerate() {
            let attainment = outcome.slo_attainment[i];
            out.push_str(&format!(
                "{},{},{},{},{:.6},{:.6},{:.6},{:.6},{},{},{:.6},{:.6},{:.6},{},{}\n",
                outcome.scenario.name,
                p.placement.label(),
                p.governor.label(),
                p.completed,
                p.mean_latency_s,
                p.p95_latency_s,
                p.mean_power_w,
                p.joules_per_function,
                p.power_cycles,
                if attainment.is_nan() {
                    String::new()
                } else {
                    format!("{attainment:.6}")
                },
                p.hit_rate,
                p.joules_saved,
                p.cached_edp,
                u8::from(p.pareto),
                u8::from(i == outcome.winner),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `sched` CLI subcommand's default sweep arrangement; tests
    /// pin the acceptance property at exactly these settings.
    fn default_sweep() -> Vec<PolicyPoint> {
        policy_sweep(0.1, SimDuration::from_secs(1200), 10, 1)
    }

    #[test]
    fn policy_sweep_covers_the_full_cross_product() {
        let points = default_sweep();
        assert_eq!(points.len(), 35);
        for p in PlacementKind::ALL {
            for g in GovernorKind::ALL {
                assert_eq!(
                    points
                        .iter()
                        .filter(|pt| pt.placement == p && pt.governor == g)
                        .count(),
                    1,
                    "missing ({p}, {g})"
                );
            }
        }
        assert!(
            points.iter().any(|p| p.pareto),
            "a non-empty sweep has a non-empty Pareto front"
        );
        // Front membership is consistent: no point may dominate a
        // front member on both axes.
        for a in points.iter().filter(|p| p.pareto) {
            for b in &points {
                assert!(
                    !(b.mean_latency_s < a.mean_latency_s
                        && b.joules_per_function < a.joules_per_function),
                    "{}/{} dominates front member {}/{}",
                    b.placement,
                    b.governor,
                    a.placement,
                    a.governor
                );
            }
        }
    }

    #[test]
    fn warm_governors_trade_energy_for_latency_in_the_sweep() {
        // The acceptance property for the whole subsystem: under the
        // sweep's sparse default load, KeepAlive and WarmPool must pay
        // strictly more energy than RebootPerJob for strictly lower
        // mean latency, at the paper's random placement.
        let points = default_sweep();
        let at = |g: &str| {
            points
                .iter()
                .find(|p| p.placement == PlacementKind::RandomStatic && p.governor.label() == g)
                .unwrap()
        };
        let reboot = at("reboot-per-job");
        for warm in ["keep-alive", "warm-pool"] {
            let point = at(warm);
            assert!(
                point.joules_per_function > reboot.joules_per_function,
                "{warm} J/func {:.3} must exceed reboot-per-job {:.3}",
                point.joules_per_function,
                reboot.joules_per_function
            );
            assert!(
                point.mean_latency_s < reboot.mean_latency_s,
                "{warm} mean latency {:.3}s must beat reboot-per-job {:.3}s",
                point.mean_latency_s,
                reboot.mean_latency_s
            );
        }
    }

    #[test]
    fn policy_sweep_is_bit_identical_across_job_counts() {
        let serial = policy_sweep_jobs(0.5, SimDuration::from_secs(300), 10, 9, Jobs::serial());
        let parallel = policy_sweep_jobs(0.5, SimDuration::from_secs(300), 10, 9, Jobs::new(4));
        assert_eq!(serial, parallel);
        assert_eq!(
            policy_sweep_csv(&serial),
            policy_sweep_csv(&parallel),
            "CSV must be byte-identical at any job count"
        );
    }

    #[test]
    fn policy_sweep_csv_shape() {
        let points = policy_sweep_jobs(0.5, SimDuration::from_secs(300), 10, 9, Jobs::serial());
        let csv = policy_sweep_csv(&points);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "placement,governor,completed,mean_latency_s,p95_latency_s,\
             mean_power_w,joules_per_function,power_cycles,hit_rate,\
             joules_saved,cached_edp,pareto"
        );
        assert_eq!(csv.lines().count(), 36);
        for line in lines {
            assert_eq!(line.split(',').count(), 12, "bad row: {line}");
        }
    }

    #[test]
    fn cached_sweeps_measure_hit_rates_and_savings() {
        let cache = CacheConfig::parse("lru:1024").expect("valid spec");
        let cached = policy_sweep_cached_jobs(
            2.0,
            SimDuration::from_secs(300),
            10,
            9,
            &cache,
            Jobs::serial(),
        );
        let plain = policy_sweep_jobs(2.0, SimDuration::from_secs(300), 10, 9, Jobs::serial());
        assert_eq!(cached.len(), plain.len());
        assert!(
            plain
                .iter()
                .all(|p| p.hit_rate == 0.0 && p.joules_saved == 0.0),
            "cache-off sweeps must report zero cache activity"
        );
        assert!(
            cached.iter().all(|p| (0.0..=1.0).contains(&p.hit_rate)),
            "hit rate is a fraction"
        );
        assert!(
            cached
                .iter()
                .any(|p| p.hit_rate > 0.0 && p.joules_saved > 0.0),
            "a warm cache must record hits and savings"
        );
        // The default 16-variant input space repeats keys heavily, so
        // the cache must cut the measured per-function energy somewhere.
        let mean = |pts: &[PolicyPoint]| {
            pts.iter().map(|p| p.joules_per_function).sum::<f64>() / pts.len() as f64
        };
        assert!(
            mean(&cached) < mean(&plain),
            "cached sweep mean J/func {:.3} must beat cache-off {:.3}",
            mean(&cached),
            mean(&plain)
        );
    }

    /// A short two-regime suite so the scenario tests stay fast; the
    /// full five-regime default is exercised by the CLI smoke and
    /// `examples/diurnal_pareto.rs`.
    fn short_suite() -> Vec<Scenario> {
        let all = Scenario::standard_suite();
        vec![all[0].clone(), all[4].clone()]
    }

    #[test]
    fn scenario_sweep_scores_every_regime_and_names_a_winner() {
        let outcomes = scenario_sweep_jobs(
            &short_suite(),
            SimDuration::from_secs(300),
            10,
            9,
            Jobs::serial(),
        );
        assert_eq!(outcomes.len(), 2);
        for outcome in &outcomes {
            assert_eq!(
                outcome.points.len(),
                PlacementKind::ALL.len() * GovernorKind::ALL.len()
            );
            assert_eq!(outcome.slo_attainment.len(), outcome.points.len());
            // The EDP winner sits on that regime's Pareto front.
            assert!(outcome.winning_point().pareto);
        }
        // Regime 0 (steady) has no tenants; regime 1 (heavy-tail) does,
        // so its worst-tenant attainment is a real fraction.
        assert!(outcomes[0].slo_attainment.iter().all(|a| a.is_nan()));
        assert!(outcomes[1]
            .slo_attainment
            .iter()
            .all(|a| (0.0..=1.0).contains(a)));
    }

    #[test]
    fn scenario_sweep_is_bit_identical_across_job_counts() {
        let suite = short_suite();
        let serial =
            scenario_sweep_jobs(&suite, SimDuration::from_secs(300), 10, 9, Jobs::serial());
        let parallel =
            scenario_sweep_jobs(&suite, SimDuration::from_secs(300), 10, 9, Jobs::new(4));
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.points, b.points);
            assert_eq!(a.winner, b.winner);
            // Attainment is NaN for tenant-less regimes, so compare
            // bit patterns rather than by (NaN-rejecting) equality.
            let bits = |v: &[f64]| v.iter().map(|a| a.to_bits()).collect::<Vec<u64>>();
            assert_eq!(bits(&a.slo_attainment), bits(&b.slo_attainment));
        }
        assert_eq!(
            scenario_sweep_csv(&serial),
            scenario_sweep_csv(&parallel),
            "CSV must be byte-identical at any job count"
        );
    }

    #[test]
    fn scenario_sweep_csv_shape() {
        let outcomes = scenario_sweep_jobs(
            &short_suite(),
            SimDuration::from_secs(300),
            10,
            9,
            Jobs::serial(),
        );
        let csv = scenario_sweep_csv(&outcomes);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "scenario,placement,governor,completed,mean_latency_s,p95_latency_s,\
             mean_power_w,joules_per_function,power_cycles,slo_attainment,\
             hit_rate,joules_saved,cached_edp,pareto,winner"
        );
        assert_eq!(csv.lines().count(), 1 + 2 * 35);
        let mut winners = 0;
        for line in lines {
            assert_eq!(line.split(',').count(), 15, "bad row: {line}");
            winners += usize::from(line.ends_with(",1"));
        }
        assert_eq!(winners, 2, "exactly one winner per regime");
    }

    #[test]
    fn binding_budget_flips_the_edp_winner() {
        // Overloaded regime: offered load above fleet capacity, random
        // placement. With a non-binding cap the EnergyBudget governor
        // behaves exactly like keep-alive and cannot beat it; a tight
        // shedding cap keeps the queues short (low latency) while the
        // shed jobs burn nothing (low energy), pulling the
        // energy-delay product below every uncapped governor — the
        // regime's winner moves the moment the cap binds.
        use microfaas_sched::{edp_winner, BudgetAction};
        let budget_idx = GovernorKind::ALL.len() - 1;
        let winner_with = |budget: GovernorKind| -> usize {
            let mut governors = GovernorKind::ALL;
            governors[budget_idx] = budget;
            let coords: Vec<(f64, f64)> = governors
                .iter()
                .map(|&g| {
                    let mut config =
                        OpenLoopConfig::paper_arrangement(1, SimDuration::from_secs(300), 7);
                    config.arrival = ArrivalProcess::Poisson { per_second: 8.0 };
                    config.governor = g;
                    let run = run_open_loop(&config);
                    (run.mean_latency_s, run.joules_per_function)
                })
                .collect();
            edp_winner(&coords).expect("five points")
        };
        let loose = winner_with(GovernorKind::EnergyBudget {
            cap_w: 1e9,
            burst_j: 1e9,
            action: BudgetAction::Shed,
        });
        let tight = winner_with(GovernorKind::EnergyBudget {
            cap_w: 1.0,
            burst_j: 25.0,
            action: BudgetAction::Shed,
        });
        assert_ne!(loose, budget_idx, "a cap that never binds cannot win");
        assert_eq!(tight, budget_idx, "a binding cap must take the EDP crown");
    }

    #[test]
    fn suite_comparison_reproduces_fig3_claims() {
        let cmp = compare_suites(60, 11);
        assert_eq!(cmp.rows.len(), 17);
        assert_eq!(
            cmp.faster_on_microfaas().len(),
            4,
            "paper: 4 of 17 functions faster on MicroFaaS"
        );
        assert_eq!(
            cmp.within_half_speed().len(),
            9,
            "paper: 9 more at better than half speed"
        );
    }

    #[test]
    fn efficiency_gain_near_5_6x() {
        let cmp = compare_suites(60, 12);
        let gain = cmp.efficiency_gain();
        assert!((gain - 5.6).abs() < 0.8, "gain {gain:.2} vs paper 5.6");
    }

    #[test]
    fn vm_sweep_throughput_rises_then_saturates() {
        let sweep = vm_sweep(20, 20, 13);
        assert_eq!(sweep.len(), 20);
        // Throughput at 6 VMs should roughly double 3 VMs.
        let t3 = sweep[2].functions_per_minute;
        let t6 = sweep[5].functions_per_minute;
        assert!((t6 / t3 - 2.0).abs() < 0.25, "t6/t3 = {:.2}", t6 / t3);
        // Beyond saturation (16 VMs) throughput flattens.
        let t16 = sweep[15].functions_per_minute;
        let t20 = sweep[19].functions_per_minute;
        assert!(t20 / t16 < 1.10, "t20/t16 = {:.2}", t20 / t16);
    }

    #[test]
    fn vm_sweep_efficiency_improves_to_saturation() {
        let sweep = vm_sweep(18, 20, 14);
        let j1 = sweep[0].joules_per_function;
        let j6 = sweep[5].joules_per_function;
        let j16 = sweep[15].joules_per_function;
        assert!(
            j1 > j6 && j6 > j16,
            "J/func should fall: {j1:.1} > {j6:.1} > {j16:.1}"
        );
        // The paper's peak efficiency is ~16.1 J/func.
        assert!((j16 - 16.1).abs() < 2.5, "peak {j16:.1} vs paper 16.1");
    }

    #[test]
    fn sbc_scaling_is_linear_in_node_count() {
        // §III-c: doubling nodes doubles capacity; per-function energy
        // is unchanged. This is what lets a provider quote marginal cost.
        let points = sbc_scale_sweep(&[5, 10, 20, 40], 40, 15);
        let per_node: Vec<f64> = points
            .iter()
            .map(|p| p.functions_per_minute / p.workers as f64)
            .collect();
        for pair in per_node.windows(2) {
            let drift = (pair[1] / pair[0] - 1.0).abs();
            assert!(
                drift < 0.05,
                "per-node rate must stay flat, drift {drift:.3}"
            );
        }
        let jpf: Vec<f64> = points.iter().map(|p| p.joules_per_function).collect();
        for pair in jpf.windows(2) {
            let drift = (pair[1] / pair[0] - 1.0).abs();
            assert!(drift < 0.05, "J/func must stay flat, drift {drift:.3}");
        }
    }

    #[test]
    fn replicates_aggregate_across_seeds() {
        let base = MicroFaasConfig::paper_prototype(WorkloadMix::quick(), 0);
        let summary = micro_replicates(&base, 4, 100, Jobs::serial());
        assert_eq!(summary.runs, 4);
        assert_eq!(summary.functions_per_minute.count(), 4);
        assert!(
            summary.functions_per_minute.std_dev() > 0.0,
            "different seeds must produce different throughput"
        );
        let per_run = WorkloadMix::quick().total_jobs();
        assert_eq!(summary.jobs_completed, 4 * per_run);
        assert_eq!(summary.jobs_dropped, 0);
        assert_eq!(summary.faults_injected, 0);
    }

    #[test]
    fn conventional_replicates_share_the_config() {
        let base = ConventionalConfig::paper_baseline(WorkloadMix::quick(), 0);
        let summary = conventional_replicates(&base, 3, 7, Jobs::new(2));
        assert_eq!(summary.runs, 3);
        assert_eq!(summary.makespan_seconds.count(), 3);
        assert!(summary.joules_per_function.mean() > 0.0);
    }

    #[test]
    fn replicate_summary_is_jobs_invariant() {
        let base = MicroFaasConfig::paper_prototype(WorkloadMix::quick(), 0);
        let serial = micro_replicates(&base, 5, 40, Jobs::serial());
        let parallel = micro_replicates(&base, 5, 40, Jobs::new(8));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn proportionality_series_shape() {
        let series = energy_proportionality(10);
        assert_eq!(series.len(), 11);
        // Idle: SBC cluster ~0 W, server at its 60 W floor.
        assert_eq!(series[0].sbc_cluster_watts, 0.0);
        assert_eq!(series[0].vm_cluster_watts, 60.0);
        // Fully busy: 10 SBCs still draw less than the idle server.
        assert!(series[10].sbc_cluster_watts < series[0].vm_cluster_watts);
        // Both lines are monotone.
        for pair in series.windows(2) {
            assert!(pair[1].sbc_cluster_watts >= pair[0].sbc_cluster_watts);
            assert!(pair[1].vm_cluster_watts >= pair[0].vm_cluster_watts);
        }
    }
}
