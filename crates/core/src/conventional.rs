//! The conventional (virtualization-based) cluster simulator: QEMU
//! microVMs on one rack server, with CPU contention and the host's idle
//! power floor.
//!
//! Fault injection mirrors the MicroFaaS cluster with VM semantics: a
//! crashed VM is respawned (with a cold-boot penalty) instead of
//! power-cycled, and its CPU share rebalances onto the survivors while
//! it is down. See `docs/FAILURE_MODEL.md`.

use std::sync::Arc;

use microfaas_energy::{ChannelId, EnergyMeter};
use microfaas_hw::server::{RackServer, VmState};
use microfaas_net::LinkSpec;
use microfaas_sched::{governor, GovernorKind};
use microfaas_sim::faults::FaultKind;
use microfaas_sim::trace::{Observer, TraceEvent, WorkerState};
use microfaas_sim::{
    CounterId, EventId, EventQueue, HistogramId, MetricsRegistry, Rng, SimDuration, SimTime,
};
use microfaas_workloads::calibration::{service_time, WorkerPlatform};
use microfaas_workloads::FunctionId;

use crate::cache::{content_key, CacheConfig, ResultCache};
use crate::config::{Assignment, Jitter, WorkloadMix};
use crate::job::{Dispatcher, Job, JobRecord, JobTable};
use crate::micro::{
    publish_cache_counters, publish_run_gauges, SchedMetrics, EXEC_BUCKETS, OVERHEAD_BUCKETS,
};
use crate::netmap::ClusterNet;
use crate::recovery::{priority_of, FaultRuntime, FaultsConfig, Priority};
use crate::registry::FunctionRegistry;
use crate::report::{ClusterRun, DroppedJob, Outcome};

/// Extra stretch on a respawned VM's boot: the image is re-fetched and
/// the guest cold-starts instead of warm-rebooting.
const RESPAWN_BOOT_PENALTY: f64 = 2.0;

/// Configuration of a conventional cluster run.
#[derive(Debug, Clone)]
pub struct ConventionalConfig {
    /// Number of microVMs on the rack server (the paper uses 6 for
    /// throughput parity with 10 SBCs, and sweeps 1–20 for Fig. 4).
    pub vms: usize,
    /// Workload to run. Shared behind an [`Arc`] so sweeps and
    /// replicates clone configs without copying the function list.
    pub mix: Arc<WorkloadMix>,
    /// RNG seed.
    pub seed: u64,
    /// Run-to-run service-time variation.
    pub jitter: Jitter,
    /// Reboot the worker OS between jobs (kept symmetric with the
    /// MicroFaaS policy; both clusters run the same worker OS).
    pub reboot_between_jobs: bool,
    /// How the orchestration plane maps jobs to VMs.
    pub assignment: Assignment,
    /// Between-jobs power policy. VMs have no per-node gating to govern
    /// (the rack host's idle floor draws regardless), so only the
    /// [`microfaas_sched::Governor::reboot_between_jobs`] decision
    /// applies here: any governor other than the default
    /// [`GovernorKind::RebootPerJob`] skips the between-jobs reboot.
    pub governor: GovernorKind,
    /// Kill invocations that run longer than this (platform-wide
    /// limit). Combined with any per-function timeout from
    /// [`ConventionalConfig::registry`]; the tighter limit wins.
    pub invocation_timeout: Option<SimDuration>,
    /// Deployed-function metadata; per-function timeouts are enforced.
    pub registry: FunctionRegistry,
    /// Fault plan and recovery policies ([`FaultsConfig::none`] keeps
    /// the run fault-free and bit-identical to earlier builds).
    pub faults: FaultsConfig,
    /// Content-addressed result cache on the orchestration plane (see
    /// [`crate::micro::MicroFaasConfig::cache`]; identical semantics so
    /// the SBC-vs-VM comparison stays apples-to-apples).
    /// [`CacheConfig::Off`] (the default) keeps runs bit-identical to
    /// pre-cache builds.
    pub cache: CacheConfig,
}

impl ConventionalConfig {
    /// The paper's throughput-matched baseline: six microVMs. Accepts
    /// the mix owned or pre-shared (`Arc<WorkloadMix>` — both convert),
    /// so sweeps build it once and share it across points.
    pub fn paper_baseline(mix: impl Into<Arc<WorkloadMix>>, seed: u64) -> Self {
        ConventionalConfig {
            vms: 6,
            mix: mix.into(),
            seed,
            jitter: Jitter::default_run_to_run(),
            reboot_between_jobs: true,
            assignment: Assignment::WorkConserving,
            governor: GovernorKind::RebootPerJob,
            invocation_timeout: None,
            registry: FunctionRegistry::paper_suite(),
            faults: FaultsConfig::none(),
            cache: CacheConfig::Off,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Function body finished; the result/overhead phase begins.
    ExecDone(usize),
    /// Result delivered; the job is complete.
    JobDone(usize),
    /// The between-jobs (or respawn) reboot finished.
    RebootDone(usize),
    /// An invocation exceeded its timeout and is killed.
    TimedOut(usize),
    /// An injected crash takes the VM down.
    Crash(usize),
    /// The orchestrator's heartbeat noticed the crash; a fresh VM is
    /// spawned in the dead one's slot.
    Respawn(usize),
    /// Supervision deadline for a hung or transfer-starved invocation.
    Watchdog(usize),
    /// The sender retries a result transfer the network lost.
    Retransmit(usize),
    /// Backoff elapsed; the orchestrator requeues the invocation.
    Retry(Job),
}

struct InFlight {
    job: Job,
    started: SimTime,
    exec: SimDuration,
    /// Next progress event; `None` while the invocation hangs or has
    /// exhausted its retransmit budget.
    pending: Option<EventId>,
    timeout: Option<EventId>,
    watchdog: Option<EventId>,
    transfer_tries: u32,
}

/// Per-run metric handles for this cluster, all prefixed `conv_`.
struct ConvMetrics {
    jobs_enqueued: CounterId,
    jobs_completed: CounterId,
    jobs_timed_out: CounterId,
    reboots: CounterId,
    net_bytes: CounterId,
    faults_injected: CounterId,
    jobs_requeued: CounterId,
    job_retries: CounterId,
    jobs_shed: CounterId,
    jobs_failed: CounterId,
    exec_seconds: HistogramId,
    overhead_seconds: HistogramId,
}

impl ConvMetrics {
    fn register(metrics: &mut MetricsRegistry) -> Self {
        ConvMetrics {
            jobs_enqueued: metrics.counter("conv_jobs_enqueued_total"),
            jobs_completed: metrics.counter("conv_jobs_completed_total"),
            jobs_timed_out: metrics.counter("conv_jobs_timed_out_total"),
            reboots: metrics.counter("conv_vm_reboots_total"),
            net_bytes: metrics.counter("conv_net_bytes_total"),
            faults_injected: metrics.counter("conv_faults_injected_total"),
            jobs_requeued: metrics.counter("conv_jobs_requeued_total"),
            job_retries: metrics.counter("conv_job_retries_total"),
            jobs_shed: metrics.counter("conv_jobs_shed_total"),
            jobs_failed: metrics.counter("conv_jobs_failed_total"),
            exec_seconds: metrics.histogram("conv_exec_seconds", &EXEC_BUCKETS),
            overhead_seconds: metrics.histogram("conv_overhead_seconds", &OVERHEAD_BUCKETS),
        }
    }
}

/// Runs the conventional cluster to completion.
///
/// CPU contention is sampled at dispatch: a job's execution and reboot
/// are stretched by the host slowdown factor in effect when it starts.
/// Under the saturated workloads used for every experiment the busy-VM
/// count is effectively constant, so the approximation is tight.
///
/// # Panics
///
/// Panics if `vms` is zero.
///
/// # Examples
///
/// ```
/// use microfaas::config::WorkloadMix;
/// use microfaas::conventional::{run_conventional, ConventionalConfig};
/// use microfaas_workloads::FunctionId;
///
/// let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 20);
/// let run = run_conventional(&ConventionalConfig::paper_baseline(mix, 42));
/// assert_eq!(run.jobs_completed(), 20);
/// ```
pub fn run_conventional(config: &ConventionalConfig) -> ClusterRun {
    run_conventional_with(config, &mut Observer::disabled())
}

/// Runs the conventional cluster while reporting trace events and
/// `conv_*` metrics into `observer`. [`run_conventional`] is this entry
/// point with [`Observer::disabled`]; results are bit-identical either
/// way.
///
/// The host's shared power channel is traced as worker `0` in
/// [`TraceEvent::PowerSample`] events.
///
/// # Examples
///
/// ```
/// use microfaas::config::WorkloadMix;
/// use microfaas::conventional::{run_conventional_with, ConventionalConfig};
/// use microfaas_sim::trace::{Observer, TraceBuffer};
/// use microfaas_sim::MetricsRegistry;
/// use microfaas_workloads::FunctionId;
///
/// let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 5);
/// let config = ConventionalConfig::paper_baseline(mix, 42);
/// let mut trace = TraceBuffer::new(4096);
/// let mut metrics = MetricsRegistry::new();
/// let run = run_conventional_with(&config, &mut Observer::full(&mut trace, &mut metrics));
/// assert_eq!(run.jobs_completed(), 5);
/// assert!(metrics.render_prometheus().contains("conv_jobs_completed_total 5"));
/// assert!(!trace.is_empty());
/// ```
pub fn run_conventional_with(
    config: &ConventionalConfig,
    observer: &mut Observer<'_>,
) -> ClusterRun {
    assert!(config.vms > 0, "cluster needs at least one VM");
    config.cache.try_validate().expect("invalid cache config");
    ConvSim::new(config, observer).run()
}

/// All mutable state of one conventional-cluster run.
struct ConvSim<'a, 'b> {
    config: &'a ConventionalConfig,
    observer: &'a mut Observer<'b>,
    rng: Rng,
    queue: EventQueue<Event>,
    meter: EnergyMeter,
    server: RackServer,
    cnet: ClusterNet,
    host_channel: ChannelId,
    dispatcher: Dispatcher,
    in_flight: Vec<Option<InFlight>>,
    /// The pending RebootDone per VM, cancelled if a crash interrupts
    /// the reboot window.
    boot_pending: Vec<Option<EventId>>,
    records: JobTable,
    last_completion: SimTime,
    fr: FaultRuntime,
    handles: Option<ConvMetrics>,
    /// The governor's between-jobs reboot decision, resolved once at
    /// construction (it is time-invariant for every governor).
    reboot_between: bool,
    /// Whether a non-default scheduling policy is active; new telemetry
    /// is gated on this so default runs stay byte-identical.
    sched_active: bool,
    sched_handles: Option<SchedMetrics>,
    /// The orchestrator's result cache; `None` when
    /// [`ConventionalConfig::cache`] is off.
    cache: Option<ResultCache<()>>,
}

impl<'a, 'b> ConvSim<'a, 'b> {
    fn new(config: &'a ConventionalConfig, observer: &'a mut Observer<'b>) -> Self {
        let mut rng = Rng::new(config.seed);
        let mut meter = EnergyMeter::new(SimTime::ZERO);
        let server = RackServer::new(config.vms, SimTime::ZERO);

        // All VM traffic leaves through the host's bridged GigE NIC;
        // each VM is modeled as a GigE attachment (the virtio/bridge
        // latency cost is in the calibrated fixed overhead).
        let cnet = ClusterNet::new("vm-", config.vms, LinkSpec::gigabit(), LinkSpec::gigabit());

        let host_channel = meter.add_channel("rack-server");
        meter.set_power(SimTime::ZERO, host_channel, server.power().value());
        observer.emit(
            SimTime::ZERO,
            TraceEvent::PowerSample {
                worker: 0,
                watts: server.power().value(),
            },
        );

        let jobs = config.mix.jobs(&mut rng);
        let handles = observer.metrics().map(ConvMetrics::register);
        if observer.is_tracing() {
            for job in &jobs {
                observer.emit(
                    SimTime::ZERO,
                    TraceEvent::JobEnqueued {
                        job: job.id,
                        function: job.function.name(),
                    },
                );
            }
        }
        if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
            metrics.add(h.jobs_enqueued, jobs.len() as u64);
        }
        let fr = FaultRuntime::new(&config.faults.plan, config.vms, jobs.len());
        // LeastLoaded balances expected x86 execution seconds.
        let dispatcher =
            Dispatcher::with_weights(config.assignment, config.vms, jobs, &mut rng, |function| {
                service_time(function)
                    .exec(WorkerPlatform::X86Vm)
                    .as_secs_f64()
            });

        // Observation only (no RNG, no events): legacy defaults keep
        // traces and expositions byte-identical.
        let sched_active = !(config.assignment.is_legacy_assignment()
            && config.governor == GovernorKind::RebootPerJob);
        let sched_handles = if sched_active {
            observer.metrics().map(SchedMetrics::register)
        } else {
            None
        };
        if sched_active {
            let placed: Vec<(usize, u64)> = dispatcher
                .placements()
                .map(|(v, job)| (v, job.id))
                .collect();
            if observer.is_tracing() {
                for &(v, id) in &placed {
                    observer.emit(
                        SimTime::ZERO,
                        TraceEvent::PlacementDecision {
                            job: id,
                            worker: v,
                            policy: config.assignment.label(),
                        },
                    );
                }
            }
            if let (Some(metrics), Some(h)) = (observer.metrics(), sched_handles.as_ref()) {
                metrics.add(h.placements, placed.len() as u64);
            }
        }
        let reboot_between =
            governor(config.governor).reboot_between_jobs(config.reboot_between_jobs);

        ConvSim {
            config,
            observer,
            rng,
            // Sized like the MicroFaaS queue: a few live events per VM
            // plus timers and planned crashes, reserved up front.
            queue: EventQueue::with_capacity(4 * config.vms + 16),
            meter,
            server,
            cnet,
            host_channel,
            dispatcher,
            in_flight: (0..config.vms).map(|_| None).collect(),
            boot_pending: vec![None; config.vms],
            records: JobTable::with_capacity(config.mix.total_jobs() as usize),
            last_completion: SimTime::ZERO,
            fr,
            handles,
            reboot_between,
            sched_active,
            sched_handles,
            cache: ResultCache::from_config(&config.cache),
        }
    }

    fn run(mut self) -> ClusterRun {
        // Crashes aimed past the fleet (a plan written for a larger
        // cluster) are no-ops.
        for (at, v) in self.fr.injector.scheduled_crashes().to_vec() {
            if v < self.config.vms {
                self.queue.schedule(at, Event::Crash(v));
            }
        }

        // Dispatch the first job on every VM at t=0.
        for v in 0..self.config.vms {
            self.dispatch(v, SimTime::ZERO);
        }

        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::ExecDone(v) => self.on_exec_done(v, now),
                Event::JobDone(v) => self.on_job_done(v, now),
                Event::RebootDone(v) => self.on_reboot_done(v, now),
                Event::TimedOut(v) => self.on_timed_out(v, now),
                Event::Crash(v) => self.on_crash(v, now),
                Event::Respawn(v) => self.on_respawn(v, now),
                Event::Watchdog(v) => self.on_watchdog(v, now),
                Event::Retransmit(v) => self.on_retransmit(v, now),
                Event::Retry(job) => self.on_retry(job, now),
            }
        }

        // Account jobs stranded by a fully-dead fleet (mirrors micro.rs).
        let at_end = self.queue.now();
        for v in 0..self.config.vms {
            while let Some(job) = self.dispatcher.pull(v) {
                self.drop_failed(job, at_end);
            }
            if let Some(flight) = self.in_flight[v].take() {
                self.drop_failed(flight.job, at_end);
            }
        }

        // Trailing reboot events may land after the last completion;
        // meter reads must not precede the meter's newest sample.
        let end = self.queue.now().max(self.last_completion);
        let energy = self.meter.report(end, self.records.len() as u64);
        let run = ClusterRun {
            label: format!("Conventional ({} VMs)", self.config.vms),
            workers: self.config.vms,
            energy,
            makespan: self.last_completion.duration_since(SimTime::ZERO),
            records: std::mem::take(&mut self.records),
            dropped: std::mem::take(&mut self.fr.dropped),
            faults: self.fr.summary,
        };
        let cache_stats = self.cache.as_ref().map(|c| c.stats());
        if let Some(metrics) = self.observer.metrics() {
            self.meter.publish_metrics(metrics, "conv", end);
            publish_run_gauges(metrics, "conv", &run);
            // Cache counters only exist when a cache ran: the default
            // exposition must stay byte-identical to pre-cache builds.
            if let Some(stats) = cache_stats.as_ref() {
                publish_cache_counters(metrics, "conv", stats);
            }
        }
        run
    }

    /// Re-meters the host channel and emits the state-change (for VM
    /// `v`) plus the shared power-sample pair.
    fn mark(&mut self, now: SimTime, v: usize, state: WorkerState) {
        let watts = self.server.power().value();
        self.meter.set_power(now, self.host_channel, watts);
        self.observer
            .emit(now, TraceEvent::WorkerStateChange { worker: v, state });
        self.observer
            .emit(now, TraceEvent::PowerSample { worker: 0, watts });
    }

    fn with_metrics(&mut self, apply: impl FnOnce(&mut MetricsRegistry, &ConvMetrics)) {
        if let (Some(metrics), Some(h)) = (self.observer.metrics(), self.handles.as_ref()) {
            apply(metrics, h);
        }
    }

    fn fault_injected(&mut self, now: SimTime, v: usize, kind: FaultKind) {
        self.fr.summary.injected += 1;
        self.observer.emit(
            now,
            TraceEvent::FaultInjected {
                worker: v,
                fault: kind.label(),
            },
        );
        self.with_metrics(|m, h| m.inc(h.faults_injected));
    }

    fn drop_failed(&mut self, job: Job, now: SimTime) {
        let attempts = self.fr.attempts[job.id as usize];
        self.observer.emit(
            now,
            TraceEvent::JobFailed {
                job: job.id,
                function: job.function.name(),
                attempts,
            },
        );
        self.fr.dropped.push(DroppedJob {
            job,
            outcome: Outcome::Failed,
            attempts,
        });
        self.with_metrics(|m, h| m.inc(h.jobs_failed));
    }

    fn timeout_limit(&self, function: FunctionId) -> Option<SimDuration> {
        let deployed = self
            .config
            .registry
            .resolve(function.name())
            .ok()
            .and_then(|spec| spec.timeout);
        match (self.config.invocation_timeout, deployed) {
            (Some(platform), Some(per_function)) => Some(platform.min(per_function)),
            (platform, per_function) => platform.or(per_function),
        }
    }

    fn on_exec_done(&mut self, v: usize, now: SimTime) {
        let job = self.in_flight[v].as_ref().expect("job in flight").job;
        let fixed = service_time(job.function)
            .fixed_overhead(WorkerPlatform::X86Vm)
            .mul_f64(self.config.jitter.factor(&mut self.rng));
        self.attempt_transfer(v, now + fixed);
    }

    fn attempt_transfer(&mut self, v: usize, start: SimTime) {
        let job = self.in_flight[v].as_ref().expect("job in flight").job;
        let bytes = service_time(job.function).transfer_bytes();
        let lost = self.fr.injector.transfer_lost(v);
        if lost {
            self.fault_injected(start, v, FaultKind::NetLoss);
        }
        // Response leaves the VM as the transfer starts; retransmits
        // re-emit and span derivation keeps the first copy.
        self.observer.emit(
            start,
            TraceEvent::ResponseSent {
                job: job.id,
                function: job.function.name(),
                worker: v,
            },
        );
        let (delivered, src, dst) = self.cnet.transfer(start, v, job.function, bytes, lost);
        self.observer
            .emit(start, TraceEvent::NetTransfer { src, dst, bytes });
        self.with_metrics(|m, h| m.add(h.net_bytes, bytes));
        if !lost {
            let pending = self.queue.schedule(delivered, Event::JobDone(v));
            self.in_flight[v].as_mut().expect("job in flight").pending = Some(pending);
            return;
        }
        let tries = {
            let flight = self.in_flight[v].as_mut().expect("job in flight");
            flight.transfer_tries += 1;
            flight.transfer_tries
        };
        if tries <= self.config.faults.retry.max_attempts {
            let eid = self.queue.schedule(
                delivered + self.config.faults.retransmit_delay,
                Event::Retransmit(v),
            );
            self.in_flight[v].as_mut().expect("job in flight").pending = Some(eid);
        } else {
            // Retransmit budget exhausted: hand the invocation to the
            // watchdog once the last doomed transfer has burned its
            // wire time.
            let eid = self.queue.schedule(delivered, Event::Watchdog(v));
            let flight = self.in_flight[v].as_mut().expect("job in flight");
            flight.pending = None;
            flight.watchdog = Some(eid);
        }
    }

    fn on_retransmit(&mut self, v: usize, now: SimTime) {
        self.attempt_transfer(v, now);
    }

    fn on_job_done(&mut self, v: usize, now: SimTime) {
        let flight = self.in_flight[v].take().expect("job in flight");
        if let Some(timeout) = flight.timeout {
            self.queue.cancel(timeout);
        }
        let overhead = now.duration_since(flight.started + flight.exec);
        self.observer.emit(
            now,
            TraceEvent::JobCompleted {
                job: flight.job.id,
                function: flight.job.function.name(),
                worker: v,
                exec: flight.exec,
                overhead,
            },
        );
        self.with_metrics(|m, h| {
            m.inc(h.jobs_completed);
            m.observe(h.exec_seconds, flight.exec.as_secs_f64());
            m.observe(h.overhead_seconds, overhead.as_secs_f64());
        });
        self.records.push(JobRecord {
            job: flight.job,
            worker: v,
            started: flight.started,
            exec: flight.exec,
            overhead,
        });
        self.last_completion = now;
        if let Some(cache) = self.cache.as_mut() {
            cache.insert(
                content_key(flight.job.function.index(), 0),
                (),
                now.as_micros(),
            );
        }
        self.reboot_vm(v, now, false);
    }

    fn on_timed_out(&mut self, v: usize, now: SimTime) {
        let flight = self.in_flight[v].take().expect("job in flight");
        if let Some(pending) = flight.pending {
            self.queue.cancel(pending);
        }
        if let Some(watchdog) = flight.watchdog {
            self.queue.cancel(watchdog);
        }
        self.fr.dropped.push(DroppedJob {
            job: flight.job,
            outcome: Outcome::TimedOut,
            attempts: self.fr.attempts[flight.job.id as usize],
        });
        self.observer.emit(
            now,
            TraceEvent::JobTimedOut {
                job: flight.job.id,
                function: flight.job.function.name(),
                worker: v,
            },
        );
        self.with_metrics(|m, h| m.inc(h.jobs_timed_out));
        self.reboot_vm(v, now, true);
    }

    fn on_crash(&mut self, v: usize, now: SimTime) {
        if self.fr.dead[v] || self.server.vm(v).state() == VmState::Crashed {
            return;
        }
        self.fault_injected(now, v, FaultKind::Crash);
        if let Some(eid) = self.boot_pending[v].take() {
            self.queue.cancel(eid);
        }
        if let Some(flight) = self.in_flight[v].take() {
            if let Some(pending) = flight.pending {
                self.queue.cancel(pending);
            }
            if let Some(timeout) = flight.timeout {
                self.queue.cancel(timeout);
            }
            if let Some(watchdog) = flight.watchdog {
                self.queue.cancel(watchdog);
            }
            self.requeue(flight.job, v, now);
        }
        self.server.crash_vm(v, now).expect("vm is running");
        // The dead VM's CPU share rebalances onto the survivors and the
        // host power steps down with the busy-VM count.
        self.mark(now, v, WorkerState::Crashed);
        self.queue
            .schedule(now + self.config.faults.detection_delay, Event::Respawn(v));
        self.maybe_shed(now);
    }

    fn on_respawn(&mut self, v: usize, now: SimTime) {
        if self.fr.dead[v] || self.server.vm(v).state() != VmState::Crashed {
            return;
        }
        self.server.respawn_vm(v, now).expect("vm crashed");
        self.mark(now, v, WorkerState::Rebooting);
        self.with_metrics(|m, h| m.inc(h.reboots));
        // A respawn cold-starts the guest: the boot window stretches
        // beyond the warm between-jobs reboot, and contention applies.
        let boot = self
            .server
            .vm_boot_duration()
            .mul_f64(RESPAWN_BOOT_PENALTY * self.server.current_slowdown());
        self.boot_pending[v] = Some(self.queue.schedule(now + boot, Event::RebootDone(v)));
    }

    fn on_reboot_done(&mut self, v: usize, now: SimTime) {
        self.boot_pending[v] = None;
        if self.fr.injector.boot_fails(v) {
            self.fault_injected(now, v, FaultKind::BootFailure);
            self.fr.boot_failures[v] += 1;
            if self.fr.boot_failures[v] > self.config.faults.max_boot_retries {
                // The slot never comes back: declare it dead and move
                // its queue to the survivors.
                self.fr.dead[v] = true;
                self.server.crash_vm(v, now).expect("vm was rebooting");
                self.mark(now, v, WorkerState::Crashed);
                self.redistribute(v, now);
                self.maybe_shed(now);
            } else {
                self.with_metrics(|m, h| m.inc(h.reboots));
                let boot = self
                    .server
                    .vm_boot_duration()
                    .mul_f64(self.server.current_slowdown());
                self.boot_pending[v] = Some(self.queue.schedule(now + boot, Event::RebootDone(v)));
            }
            return;
        }
        self.fr.boot_failures[v] = 0;
        self.server
            .reboot_complete(v, now)
            .expect("vm was rebooting");
        self.mark(now, v, WorkerState::Idle);
        self.dispatch(v, now);
    }

    fn on_watchdog(&mut self, v: usize, now: SimTime) {
        let Some(flight) = self.in_flight[v].take() else {
            return;
        };
        if let Some(pending) = flight.pending {
            self.queue.cancel(pending);
        }
        if let Some(timeout) = flight.timeout {
            self.queue.cancel(timeout);
        }
        self.requeue(flight.job, v, now);
        self.reboot_vm(v, now, true);
    }

    fn on_retry(&mut self, job: Job, now: SimTime) {
        let Some(target) = (0..self.config.vms).find(|&v| !self.fr.dead[v]) else {
            self.drop_failed(job, now);
            return;
        };
        self.dispatcher.requeue_front(target, job);
        self.wake_if_needed(now);
    }

    fn requeue(&mut self, job: Job, v: usize, now: SimTime) {
        self.fr.summary.requeued += 1;
        self.observer.emit(
            now,
            TraceEvent::JobRequeued {
                job: job.id,
                function: job.function.name(),
                worker: v,
            },
        );
        self.with_metrics(|m, h| m.inc(h.jobs_requeued));
        let attempt = self.fr.next_attempt(job);
        if attempt <= self.config.faults.retry.max_attempts {
            let delay = self
                .config
                .faults
                .retry
                .backoff(attempt, self.fr.injector.jitter01());
            self.fr.summary.retries += 1;
            self.observer.emit(
                now,
                TraceEvent::JobRetryScheduled {
                    job: job.id,
                    function: job.function.name(),
                    attempt,
                    delay,
                },
            );
            self.with_metrics(|m, h| m.inc(h.job_retries));
            self.queue.schedule(now + delay, Event::Retry(job));
        } else {
            let attempts = attempt - 1;
            self.observer.emit(
                now,
                TraceEvent::JobFailed {
                    job: job.id,
                    function: job.function.name(),
                    attempts,
                },
            );
            self.fr.dropped.push(DroppedJob {
                job,
                outcome: Outcome::Failed,
                attempts,
            });
            self.with_metrics(|m, h| m.inc(h.jobs_failed));
        }
    }

    /// VMs never power off, so waking means dispatching onto an idle
    /// survivor when nobody else is on a path back to the queue.
    fn wake_if_needed(&mut self, now: SimTime) {
        let will_pull = (0..self.config.vms).any(|v| {
            !self.fr.dead[v]
                && matches!(
                    self.server.vm(v).state(),
                    VmState::Executing | VmState::Rebooting | VmState::Crashed
                )
        });
        if will_pull {
            return;
        }
        if let Some(v) = (0..self.config.vms)
            .find(|&v| !self.fr.dead[v] && self.server.vm(v).state() == VmState::Idle)
        {
            self.dispatch(v, now);
        }
    }

    fn redistribute(&mut self, v: usize, now: SimTime) {
        let stranded = self.dispatcher.drain_worker(v);
        if stranded.is_empty() {
            return;
        }
        if self.fr.live_workers() == 0 {
            for job in stranded {
                self.drop_failed(job, now);
            }
            return;
        }
        let live: Vec<usize> = (0..self.config.vms).filter(|&x| !self.fr.dead[x]).collect();
        for (i, job) in stranded.into_iter().enumerate() {
            self.dispatcher.enqueue_back(live[i % live.len()], job);
        }
        self.wake_if_needed(now);
    }

    fn maybe_shed(&mut self, now: SimTime) {
        let up = (0..self.config.vms)
            .filter(|&v| !self.fr.dead[v] && self.server.vm(v).state() != VmState::Crashed)
            .count();
        let floor = self.config.faults.shed_below_capacity * self.config.vms as f64;
        if (up as f64) >= floor {
            return;
        }
        let shed = self
            .dispatcher
            .shed_where(|job| priority_of(job.function) == Priority::Batch);
        for job in shed {
            self.observer.emit(
                now,
                TraceEvent::JobShed {
                    job: job.id,
                    function: job.function.name(),
                },
            );
            self.fr.dropped.push(DroppedJob {
                job,
                outcome: Outcome::Shed,
                attempts: self.fr.attempts[job.id as usize],
            });
            self.with_metrics(|m, h| m.inc(h.jobs_shed));
        }
    }

    /// Puts a VM whose invocation ended through its between-jobs reboot.
    /// `forced` resets (timeout, hang, lost result) always take the full
    /// reboot window to restore a clean guest.
    fn reboot_vm(&mut self, v: usize, now: SimTime, forced: bool) {
        self.server.finish_job(v, now).expect("vm was executing");
        self.mark(now, v, WorkerState::Rebooting);
        self.with_metrics(|m, h| m.inc(h.reboots));
        let reboot = if forced || self.reboot_between {
            self.server
                .vm_boot_duration()
                .mul_f64(self.server.current_slowdown())
        } else {
            SimDuration::ZERO
        };
        // Warm/cold accounting only where another job actually follows.
        if self.sched_active && self.dispatcher.has_work(v) {
            let warm = reboot.is_zero();
            if let (Some(metrics), Some(h)) = (self.observer.metrics(), self.sched_handles.as_ref())
            {
                if warm {
                    metrics.inc(h.warm_hits);
                } else {
                    metrics.inc(h.cold_boots);
                }
            }
        }
        self.boot_pending[v] = Some(self.queue.schedule(now + reboot, Event::RebootDone(v)));
    }

    /// Completes a pulled job from the orchestrator's result cache (see
    /// `MicroSim::complete_from_cache`): the VM never runs it, so it
    /// adds nothing to contention or the host's busy-power draw.
    fn complete_from_cache(&mut self, job: Job, v: usize, key: u64, now: SimTime) {
        self.observer.emit(
            now,
            TraceEvent::CacheHit {
                job: job.id,
                function: job.function.name(),
                key,
            },
        );
        self.observer.emit(
            now,
            TraceEvent::JobCompleted {
                job: job.id,
                function: job.function.name(),
                worker: v,
                exec: SimDuration::ZERO,
                overhead: SimDuration::ZERO,
            },
        );
        self.with_metrics(|m, h| {
            m.inc(h.jobs_completed);
            m.observe(h.exec_seconds, 0.0);
            m.observe(h.overhead_seconds, 0.0);
        });
        self.records.push(JobRecord {
            job,
            worker: v,
            started: now,
            exec: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
        });
        self.last_completion = now;
    }

    fn dispatch(&mut self, v: usize, now: SimTime) {
        // Drain cache hits before committing the VM (mirrors the
        // MicroFaaS pull loop): hits complete instantly at the
        // orchestrator and only real misses occupy a CPU share.
        let next = loop {
            let Some(job) = self.dispatcher.pull(v) else {
                break None;
            };
            let key = content_key(job.function.index(), 0);
            let hit = match self.cache.as_mut() {
                Some(cache) => cache.lookup(key, now.as_micros()).is_some(),
                None => false,
            };
            if !hit {
                break Some(job);
            }
            self.complete_from_cache(job, v, key, now);
        };
        if let Some(job) = next {
            self.server.start_job(v, now).expect("vm is idle");
            let watts = self.server.power().value();
            self.meter.set_power(now, self.host_channel, watts);
            self.observer.emit(
                now,
                TraceEvent::JobStarted {
                    job: job.id,
                    function: job.function.name(),
                    worker: v,
                },
            );
            self.observer.emit(
                now,
                TraceEvent::WorkerStateChange {
                    worker: v,
                    state: WorkerState::Executing,
                },
            );
            self.observer
                .emit(now, TraceEvent::PowerSample { worker: 0, watts });
            let slowdown = self.server.current_slowdown();
            let exec = service_time(job.function)
                .exec(WorkerPlatform::X86Vm)
                .mul_f64(self.config.jitter.factor(&mut self.rng) * slowdown);
            let (pending, watchdog) = if self.fr.injector.hangs(v) {
                self.fault_injected(now, v, FaultKind::Hang);
                let deadline = now + self.config.faults.hang_watchdog;
                (
                    None,
                    Some(self.queue.schedule(deadline, Event::Watchdog(v))),
                )
            } else {
                (
                    Some(self.queue.schedule(now + exec, Event::ExecDone(v))),
                    None,
                )
            };
            let timeout = self
                .timeout_limit(job.function)
                .map(|limit| self.queue.schedule(now + limit, Event::TimedOut(v)));
            self.in_flight[v] = Some(InFlight {
                job,
                started: now,
                exec,
                pending,
                timeout,
                watchdog,
                transfer_tries: 0,
            });
        }
        // An idle VM simply waits; the host idle floor keeps burning
        // 60 W — the very anti-proportionality the paper targets.
    }
}

/// Average host power with exactly `busy` of the VMs active — the
/// closed-form behind Fig. 5's VM line.
pub fn vm_cluster_power(busy: usize) -> f64 {
    microfaas_hw::ServerPowerModel::opteron_6172()
        .draw(busy)
        .value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use microfaas_sim::faults::{FaultPlan, FaultSpec, FaultTrigger};

    #[test]
    fn completes_every_job() {
        let config = ConventionalConfig::paper_baseline(WorkloadMix::quick(), 1);
        let run = run_conventional(&config);
        assert_eq!(run.jobs_completed(), WorkloadMix::quick().total_jobs());
    }

    #[test]
    fn deterministic_per_seed() {
        let config = ConventionalConfig::paper_baseline(WorkloadMix::quick(), 5);
        let a = run_conventional(&config);
        let b = run_conventional(&config);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.energy.total_joules, b.energy.total_joules);
    }

    #[test]
    fn throughput_near_paper_value() {
        let config =
            ConventionalConfig::paper_baseline(WorkloadMix::new(FunctionId::ALL.to_vec(), 100), 2);
        let run = run_conventional(&config);
        let fpm = run.functions_per_minute();
        assert!(
            (fpm - 211.7).abs() < 10.0,
            "throughput {fpm:.1} f/min vs paper 211.7"
        );
    }

    #[test]
    fn energy_per_function_near_paper_value() {
        let config =
            ConventionalConfig::paper_baseline(WorkloadMix::new(FunctionId::ALL.to_vec(), 100), 3);
        let run = run_conventional(&config);
        let jpf = run.joules_per_function().expect("jobs ran");
        assert!((jpf - 32.0).abs() < 3.0, "{jpf:.2} J/func vs paper 32.0");
    }

    #[test]
    fn idle_floor_dominates_small_vm_counts() {
        // 1 VM: nearly all energy is the 60 W floor, so J/func is huge.
        let mut config =
            ConventionalConfig::paper_baseline(WorkloadMix::new(FunctionId::ALL.to_vec(), 30), 4);
        config.vms = 1;
        let run = run_conventional(&config);
        let jpf = run.joules_per_function().expect("jobs ran");
        assert!(
            jpf > 80.0,
            "single-VM J/func should exceed 80, got {jpf:.1}"
        );
    }

    #[test]
    fn contention_stretches_past_sixteen_vms() {
        let mix = WorkloadMix::new(vec![FunctionId::FloatOps], 400);
        let mut config = ConventionalConfig::paper_baseline(mix.clone(), 5);
        config.vms = 16;
        let at_saturation = run_conventional(&config);
        let mut config20 = ConventionalConfig::paper_baseline(mix, 5);
        config20.vms = 20;
        let oversubscribed = run_conventional(&config20);
        // Throughput barely improves past saturation (within ~8%).
        let ratio = oversubscribed.functions_per_minute() / at_saturation.functions_per_minute();
        assert!(
            ratio < 1.08,
            "20 VMs should not out-run 16 by much, ratio {ratio:.3}"
        );
    }

    #[test]
    fn result_cache_shortens_vm_runs_too() {
        let mix = WorkloadMix::quick();
        let baseline = run_conventional(&ConventionalConfig::paper_baseline(mix.clone(), 9));
        let mut config = ConventionalConfig::paper_baseline(mix, 9);
        config.cache = CacheConfig::parse("lru:64").expect("valid spec");
        let cached = run_conventional(&config);
        assert_eq!(cached.jobs_completed(), baseline.jobs_completed());
        assert!(
            cached.makespan < baseline.makespan,
            "hits must shorten the run: {:?} vs {:?}",
            cached.makespan,
            baseline.makespan
        );
        assert!(
            cached.records.iter().any(|r| r.exec.is_zero()),
            "some completions must be served from the cache"
        );
    }

    #[test]
    fn vm_cluster_power_matches_model() {
        assert_eq!(vm_cluster_power(0), 60.0);
        assert!(vm_cluster_power(6) > 100.0);
        assert_eq!(vm_cluster_power(40), 150.0);
    }

    #[test]
    fn per_function_exec_matches_calibration() {
        let mut config =
            ConventionalConfig::paper_baseline(WorkloadMix::new(FunctionId::ALL.to_vec(), 40), 6);
        config.jitter = Jitter::none();
        let run = run_conventional(&config);
        for (function, stats) in run.per_function() {
            let expected = service_time(function)
                .exec(WorkerPlatform::X86Vm)
                .as_millis_f64();
            assert!(
                (stats.exec_ms.mean() - expected).abs() < 1.0,
                "{function}: {:.1} vs {expected:.1}",
                stats.exec_ms.mean()
            );
        }
    }

    #[test]
    fn invocation_timeout_kills_long_jobs_on_vms() {
        // MatMul runs ~1.9 s on a VM, RegexMatch ~0.26 s; a 1.2 s
        // platform timeout kills every MatMul and spares RegexMatch.
        let mix = WorkloadMix::new(vec![FunctionId::MatMul, FunctionId::RegexMatch], 20);
        let mut config = ConventionalConfig::paper_baseline(mix, 11);
        config.invocation_timeout = Some(SimDuration::from_millis(1_200));
        let run = run_conventional(&config);
        assert_eq!(run.timed_out(), 20, "every MatMul must be killed");
        assert_eq!(run.jobs_completed(), 20, "every RegexMatch must finish");
        assert_eq!(run.jobs_accounted(), 40);
    }

    #[test]
    fn crashed_vm_respawns_and_the_job_is_retried() {
        // Without between-job reboots the VMs are executing essentially
        // all the time, so the t=5 s crash lands mid-invocation; the
        // respawned VM rejoins and the retried job completes.
        let mix = WorkloadMix::new(vec![FunctionId::MatMul], 60);
        let mut config = ConventionalConfig::paper_baseline(mix, 21);
        config.reboot_between_jobs = false;
        config.faults = FaultsConfig::with_plan(FaultPlan {
            seed: 9,
            faults: vec![FaultSpec {
                kind: FaultKind::Crash,
                worker: Some(2),
                trigger: FaultTrigger::At(SimTime::from_secs(5)),
            }],
        });
        let run = run_conventional(&config);
        assert_eq!(run.faults.injected, 1);
        assert_eq!(run.faults.requeued, 1);
        assert_eq!(run.jobs_completed(), 60, "the retry must recover the job");
        assert_eq!(run.jobs_accounted(), 60);
    }

    #[test]
    fn losing_a_vm_costs_wall_clock_time() {
        let mix = WorkloadMix::new(vec![FunctionId::MatMul], 60);
        let clean = run_conventional(&ConventionalConfig::paper_baseline(mix.clone(), 30));
        let mut faulty_config = ConventionalConfig::paper_baseline(mix, 30);
        faulty_config.faults = FaultsConfig::with_plan(FaultPlan {
            seed: 1,
            faults: vec![FaultSpec {
                kind: FaultKind::Crash,
                worker: Some(0),
                trigger: FaultTrigger::At(SimTime::from_secs(4)),
            }],
        });
        let faulty = run_conventional(&faulty_config);
        assert_eq!(faulty.jobs_accounted(), 60);
        assert!(
            faulty.makespan > clean.makespan,
            "losing a VM mid-run must cost wall-clock time"
        );
    }

    #[test]
    fn faulted_vm_runs_are_deterministic() {
        let mix = WorkloadMix::new(vec![FunctionId::MatMul, FunctionId::RedisInsert], 30);
        let mut config = ConventionalConfig::paper_baseline(mix, 31);
        config.faults = FaultsConfig::with_plan(FaultPlan {
            seed: 6,
            faults: vec![
                FaultSpec {
                    kind: FaultKind::Crash,
                    worker: Some(1),
                    trigger: FaultTrigger::At(SimTime::from_secs(6)),
                },
                FaultSpec {
                    kind: FaultKind::Hang,
                    worker: None,
                    trigger: FaultTrigger::Probability(0.05),
                },
            ],
        });
        let a = run_conventional(&config);
        let b = run_conventional(&config);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.energy.total_joules, b.energy.total_joules);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.dropped, b.dropped);
    }
}
