//! The conventional (virtualization-based) cluster simulator: QEMU
//! microVMs on one rack server, with CPU contention and the host's idle
//! power floor.

use microfaas_energy::EnergyMeter;
use microfaas_hw::server::RackServer;
use microfaas_net::{LinkSpec, Network, NodeId};
use microfaas_sim::trace::{Endpoint, Observer, TraceEvent, WorkerState};
use microfaas_sim::{
    CounterId, EventQueue, HistogramId, MetricsRegistry, Rng, SimDuration, SimTime,
};
use microfaas_workloads::calibration::{service_time, WorkerPlatform};
use microfaas_workloads::FunctionId;

use crate::config::{Assignment, Jitter, WorkloadMix};
use crate::job::{Dispatcher, Job, JobRecord};
use crate::micro::{publish_run_gauges, EXEC_BUCKETS, OVERHEAD_BUCKETS};
use crate::report::ClusterRun;

/// Configuration of a conventional cluster run.
#[derive(Debug, Clone)]
pub struct ConventionalConfig {
    /// Number of microVMs on the rack server (the paper uses 6 for
    /// throughput parity with 10 SBCs, and sweeps 1–20 for Fig. 4).
    pub vms: usize,
    /// Workload to run.
    pub mix: WorkloadMix,
    /// RNG seed.
    pub seed: u64,
    /// Run-to-run service-time variation.
    pub jitter: Jitter,
    /// Reboot the worker OS between jobs (kept symmetric with the
    /// MicroFaaS policy; both clusters run the same worker OS).
    pub reboot_between_jobs: bool,
    /// How the orchestration plane maps jobs to VMs.
    pub assignment: Assignment,
}

impl ConventionalConfig {
    /// The paper's throughput-matched baseline: six microVMs.
    pub fn paper_baseline(mix: WorkloadMix, seed: u64) -> Self {
        ConventionalConfig {
            vms: 6,
            mix,
            seed,
            jitter: Jitter::default_run_to_run(),
            reboot_between_jobs: true,
            assignment: Assignment::WorkConserving,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // the lifecycle phases genuinely all *complete*
enum Event {
    ExecDone(usize),
    JobDone(usize),
    RebootDone(usize),
}

struct InFlight {
    job: Job,
    started: SimTime,
    exec: SimDuration,
}

/// Per-run metric handles for this cluster, all prefixed `conv_`.
struct ConvMetrics {
    jobs_enqueued: CounterId,
    jobs_completed: CounterId,
    reboots: CounterId,
    net_bytes: CounterId,
    exec_seconds: HistogramId,
    overhead_seconds: HistogramId,
}

impl ConvMetrics {
    fn register(metrics: &mut MetricsRegistry) -> Self {
        ConvMetrics {
            jobs_enqueued: metrics.counter("conv_jobs_enqueued_total"),
            jobs_completed: metrics.counter("conv_jobs_completed_total"),
            reboots: metrics.counter("conv_vm_reboots_total"),
            net_bytes: metrics.counter("conv_net_bytes_total"),
            exec_seconds: metrics.histogram("conv_exec_seconds", &EXEC_BUCKETS),
            overhead_seconds: metrics.histogram("conv_overhead_seconds", &OVERHEAD_BUCKETS),
        }
    }
}

/// Runs the conventional cluster to completion.
///
/// CPU contention is sampled at dispatch: a job's execution and reboot
/// are stretched by the host slowdown factor in effect when it starts.
/// Under the saturated workloads used for every experiment the busy-VM
/// count is effectively constant, so the approximation is tight.
///
/// # Panics
///
/// Panics if `vms` is zero.
///
/// # Examples
///
/// ```
/// use microfaas::config::WorkloadMix;
/// use microfaas::conventional::{run_conventional, ConventionalConfig};
/// use microfaas_workloads::FunctionId;
///
/// let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 20);
/// let run = run_conventional(&ConventionalConfig::paper_baseline(mix, 42));
/// assert_eq!(run.jobs_completed(), 20);
/// ```
pub fn run_conventional(config: &ConventionalConfig) -> ClusterRun {
    run_conventional_with(config, &mut Observer::disabled())
}

/// Runs the conventional cluster while reporting trace events and
/// `conv_*` metrics into `observer`. [`run_conventional`] is this entry
/// point with [`Observer::disabled`]; results are bit-identical either
/// way.
///
/// The host's shared power channel is traced as worker `0` in
/// [`TraceEvent::PowerSample`] events.
///
/// # Examples
///
/// ```
/// use microfaas::config::WorkloadMix;
/// use microfaas::conventional::{run_conventional_with, ConventionalConfig};
/// use microfaas_sim::trace::{Observer, TraceBuffer};
/// use microfaas_sim::MetricsRegistry;
/// use microfaas_workloads::FunctionId;
///
/// let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 5);
/// let config = ConventionalConfig::paper_baseline(mix, 42);
/// let mut trace = TraceBuffer::new(4096);
/// let mut metrics = MetricsRegistry::new();
/// let run = run_conventional_with(&config, &mut Observer::full(&mut trace, &mut metrics));
/// assert_eq!(run.jobs_completed(), 5);
/// assert!(metrics.render_prometheus().contains("conv_jobs_completed_total 5"));
/// assert!(!trace.is_empty());
/// ```
pub fn run_conventional_with(
    config: &ConventionalConfig,
    observer: &mut Observer<'_>,
) -> ClusterRun {
    let mut rng = Rng::new(config.seed);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut meter = EnergyMeter::new(SimTime::ZERO);
    let mut server = RackServer::new(config.vms, SimTime::ZERO);

    // All VM traffic leaves through the host's bridged GigE NIC; each VM
    // is modeled as a GigE attachment (the virtio/bridge latency cost is
    // in the calibrated fixed overhead).
    let mut net = Network::new(LinkSpec::gigabit());
    let vm_nodes: Vec<NodeId> = (0..config.vms)
        .map(|v| net.add_node(format!("vm-{v}"), LinkSpec::gigabit()))
        .collect();
    let orchestrator = net.add_node("orchestrator", LinkSpec::gigabit());
    let kv_node = net.add_node("kvstore", LinkSpec::gigabit());
    let sql_node = net.add_node("sqldb", LinkSpec::gigabit());
    let cos_node = net.add_node("objstore", LinkSpec::gigabit());
    let mq_node = net.add_node("mqueue", LinkSpec::gigabit());
    let peer_of = |function: FunctionId| match function {
        FunctionId::RedisInsert | FunctionId::RedisUpdate => kv_node,
        FunctionId::SqlSelect | FunctionId::SqlUpdate => sql_node,
        FunctionId::CosGet | FunctionId::CosPut => cos_node,
        FunctionId::MqProduce | FunctionId::MqConsume => mq_node,
        _ => orchestrator,
    };
    let endpoint_of = |function: FunctionId| match function {
        FunctionId::RedisInsert | FunctionId::RedisUpdate => Endpoint::Service("kvstore"),
        FunctionId::SqlSelect | FunctionId::SqlUpdate => Endpoint::Service("sqldb"),
        FunctionId::CosGet | FunctionId::CosPut => Endpoint::Service("objstore"),
        FunctionId::MqProduce | FunctionId::MqConsume => Endpoint::Service("mqueue"),
        _ => Endpoint::Orchestrator,
    };

    let host_channel = meter.add_channel("rack-server");
    meter.set_power(SimTime::ZERO, host_channel, server.power().value());
    observer.emit(
        SimTime::ZERO,
        TraceEvent::PowerSample {
            worker: 0,
            watts: server.power().value(),
        },
    );

    let jobs = config.mix.jobs(&mut rng);
    let handles = observer.metrics().map(ConvMetrics::register);
    if observer.is_tracing() {
        for job in &jobs {
            observer.emit(
                SimTime::ZERO,
                TraceEvent::JobEnqueued {
                    job: job.id,
                    function: job.function.name(),
                },
            );
        }
    }
    if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
        metrics.add(h.jobs_enqueued, jobs.len() as u64);
    }
    let mut dispatcher = Dispatcher::new(config.assignment, config.vms, jobs, &mut rng);

    let mut in_flight: Vec<Option<InFlight>> = (0..config.vms).map(|_| None).collect();
    let mut records: Vec<JobRecord> = Vec::with_capacity(config.mix.total_jobs() as usize);
    let mut last_completion = SimTime::ZERO;

    // Dispatch the first job on every VM at t=0.
    for v in 0..config.vms {
        dispatch(
            v,
            SimTime::ZERO,
            config,
            &mut server,
            &mut dispatcher,
            &mut in_flight,
            &mut queue,
            &mut meter,
            host_channel,
            &mut rng,
            observer,
        );
    }

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::ExecDone(v) => {
                let flight = in_flight[v].as_ref().expect("job in flight");
                let st = service_time(flight.job.function);
                let fixed = st
                    .fixed_overhead(WorkerPlatform::X86Vm)
                    .mul_f64(config.jitter.factor(&mut rng));
                let transfer_start = now + fixed;
                let peer = peer_of(flight.job.function);
                let bytes = st.transfer_bytes();
                let delivered = if flight.job.function == FunctionId::CosGet {
                    net.send(transfer_start, peer, vm_nodes[v], bytes)
                } else {
                    net.send(transfer_start, vm_nodes[v], peer, bytes)
                };
                let (src, dst) = if flight.job.function == FunctionId::CosGet {
                    (endpoint_of(flight.job.function), Endpoint::Worker(v))
                } else {
                    (Endpoint::Worker(v), endpoint_of(flight.job.function))
                };
                observer.emit(transfer_start, TraceEvent::NetTransfer { src, dst, bytes });
                if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
                    metrics.add(h.net_bytes, bytes);
                }
                queue.schedule(delivered, Event::JobDone(v));
            }
            Event::JobDone(v) => {
                let flight = in_flight[v].take().expect("job in flight");
                let overhead = now.duration_since(flight.started + flight.exec);
                observer.emit(
                    now,
                    TraceEvent::JobCompleted {
                        job: flight.job.id,
                        function: flight.job.function.name(),
                        worker: v,
                        exec: flight.exec,
                        overhead,
                    },
                );
                if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
                    metrics.inc(h.jobs_completed);
                    metrics.observe(h.exec_seconds, flight.exec.as_secs_f64());
                    metrics.observe(h.overhead_seconds, overhead.as_secs_f64());
                }
                records.push(JobRecord {
                    job: flight.job,
                    worker: v,
                    started: flight.started,
                    exec: flight.exec,
                    overhead,
                });
                last_completion = now;
                server.finish_job(v, now).expect("vm was executing");
                meter.set_power(now, host_channel, server.power().value());
                observer.emit(
                    now,
                    TraceEvent::WorkerStateChange {
                        worker: v,
                        state: WorkerState::Rebooting,
                    },
                );
                observer.emit(
                    now,
                    TraceEvent::PowerSample {
                        worker: 0,
                        watts: server.power().value(),
                    },
                );
                if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
                    metrics.inc(h.reboots);
                }
                let reboot = if config.reboot_between_jobs {
                    server.vm_boot_duration().mul_f64(server.current_slowdown())
                } else {
                    SimDuration::ZERO
                };
                queue.schedule(now + reboot, Event::RebootDone(v));
            }
            Event::RebootDone(v) => {
                server.reboot_complete(v, now).expect("vm was rebooting");
                meter.set_power(now, host_channel, server.power().value());
                observer.emit(
                    now,
                    TraceEvent::WorkerStateChange {
                        worker: v,
                        state: WorkerState::Idle,
                    },
                );
                observer.emit(
                    now,
                    TraceEvent::PowerSample {
                        worker: 0,
                        watts: server.power().value(),
                    },
                );
                dispatch(
                    v,
                    now,
                    config,
                    &mut server,
                    &mut dispatcher,
                    &mut in_flight,
                    &mut queue,
                    &mut meter,
                    host_channel,
                    &mut rng,
                    observer,
                );
            }
        }
    }

    // Trailing reboot events may land after the last completion; meter
    // reads must not precede the meter's newest sample.
    let end = queue.now().max(last_completion);
    let energy = meter.report(end, records.len() as u64);
    let run = ClusterRun {
        label: format!("Conventional ({} VMs)", config.vms),
        workers: config.vms,
        energy,
        makespan: last_completion.duration_since(SimTime::ZERO),
        records,
        timed_out: 0,
    };
    if let Some(metrics) = observer.metrics() {
        meter.publish_metrics(metrics, "conv", end);
        publish_run_gauges(metrics, "conv", &run);
    }
    run
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    v: usize,
    now: SimTime,
    config: &ConventionalConfig,
    server: &mut RackServer,
    dispatcher: &mut Dispatcher,
    in_flight: &mut [Option<InFlight>],
    queue: &mut EventQueue<Event>,
    meter: &mut EnergyMeter,
    host_channel: microfaas_energy::ChannelId,
    rng: &mut Rng,
    observer: &mut Observer<'_>,
) {
    if let Some(job) = dispatcher.pull(v) {
        server.start_job(v, now).expect("vm is idle");
        meter.set_power(now, host_channel, server.power().value());
        observer.emit(
            now,
            TraceEvent::JobStarted {
                job: job.id,
                function: job.function.name(),
                worker: v,
            },
        );
        observer.emit(
            now,
            TraceEvent::WorkerStateChange {
                worker: v,
                state: WorkerState::Executing,
            },
        );
        observer.emit(
            now,
            TraceEvent::PowerSample {
                worker: 0,
                watts: server.power().value(),
            },
        );
        let slowdown = server.current_slowdown();
        let exec = service_time(job.function)
            .exec(WorkerPlatform::X86Vm)
            .mul_f64(config.jitter.factor(rng) * slowdown);
        in_flight[v] = Some(InFlight {
            job,
            started: now,
            exec,
        });
        queue.schedule(now + exec, Event::ExecDone(v));
    }
    // An idle VM simply waits; the host idle floor keeps burning 60 W —
    // the very anti-proportionality the paper targets.
}

/// Average host power with exactly `busy` of the VMs active — the
/// closed-form behind Fig. 5's VM line.
pub fn vm_cluster_power(busy: usize) -> f64 {
    microfaas_hw::ServerPowerModel::opteron_6172()
        .draw(busy)
        .value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_every_job() {
        let config = ConventionalConfig::paper_baseline(WorkloadMix::quick(), 1);
        let run = run_conventional(&config);
        assert_eq!(run.jobs_completed(), WorkloadMix::quick().total_jobs());
    }

    #[test]
    fn deterministic_per_seed() {
        let config = ConventionalConfig::paper_baseline(WorkloadMix::quick(), 5);
        let a = run_conventional(&config);
        let b = run_conventional(&config);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.energy.total_joules, b.energy.total_joules);
    }

    #[test]
    fn throughput_near_paper_value() {
        let config =
            ConventionalConfig::paper_baseline(WorkloadMix::new(FunctionId::ALL.to_vec(), 100), 2);
        let run = run_conventional(&config);
        let fpm = run.functions_per_minute();
        assert!(
            (fpm - 211.7).abs() < 10.0,
            "throughput {fpm:.1} f/min vs paper 211.7"
        );
    }

    #[test]
    fn energy_per_function_near_paper_value() {
        let config =
            ConventionalConfig::paper_baseline(WorkloadMix::new(FunctionId::ALL.to_vec(), 100), 3);
        let run = run_conventional(&config);
        let jpf = run.joules_per_function().expect("jobs ran");
        assert!((jpf - 32.0).abs() < 3.0, "{jpf:.2} J/func vs paper 32.0");
    }

    #[test]
    fn idle_floor_dominates_small_vm_counts() {
        // 1 VM: nearly all energy is the 60 W floor, so J/func is huge.
        let mut config =
            ConventionalConfig::paper_baseline(WorkloadMix::new(FunctionId::ALL.to_vec(), 30), 4);
        config.vms = 1;
        let run = run_conventional(&config);
        let jpf = run.joules_per_function().expect("jobs ran");
        assert!(
            jpf > 80.0,
            "single-VM J/func should exceed 80, got {jpf:.1}"
        );
    }

    #[test]
    fn contention_stretches_past_sixteen_vms() {
        let mix = WorkloadMix::new(vec![FunctionId::FloatOps], 400);
        let mut config = ConventionalConfig::paper_baseline(mix.clone(), 5);
        config.vms = 16;
        let at_saturation = run_conventional(&config);
        let mut config20 = ConventionalConfig::paper_baseline(mix, 5);
        config20.vms = 20;
        let oversubscribed = run_conventional(&config20);
        // Throughput barely improves past saturation (within ~8%).
        let ratio = oversubscribed.functions_per_minute() / at_saturation.functions_per_minute();
        assert!(
            ratio < 1.08,
            "20 VMs should not out-run 16 by much, ratio {ratio:.3}"
        );
    }

    #[test]
    fn vm_cluster_power_matches_model() {
        assert_eq!(vm_cluster_power(0), 60.0);
        assert!(vm_cluster_power(6) > 100.0);
        assert_eq!(vm_cluster_power(40), 150.0);
    }

    #[test]
    fn per_function_exec_matches_calibration() {
        let mut config =
            ConventionalConfig::paper_baseline(WorkloadMix::new(FunctionId::ALL.to_vec(), 40), 6);
        config.jitter = Jitter::none();
        let run = run_conventional(&config);
        for (function, stats) in run.per_function() {
            let expected = service_time(function)
                .exec(WorkerPlatform::X86Vm)
                .as_millis_f64();
            assert!(
                (stats.exec_ms.mean() - expected).abs() < 1.0,
                "{function}: {:.1} vs {expected:.1}",
                stats.exec_ms.mean()
            );
        }
    }
}
