//! # microfaas
//!
//! The platform core of the MicroFaaS reproduction: the orchestration
//! plane, the two evaluation clusters, and the experiment drivers that
//! regenerate every figure and table of the paper.
//!
//! * [`arrivals`] — production traffic shapes: bursty/diurnal/flash
//!   arrival processes, popularity skew, and tenant classes (see
//!   `docs/WORKLOADS.md`);
//! * [`cache`] — the content-addressed result cache and in-flight
//!   request coalescing (see `docs/CACHING.md`);
//! * [`config`] — workload mixes and run-to-run jitter;
//! * [`job`] — invocations and timing records;
//! * [`micro`] — the MicroFaaS cluster (SBC workers, GPIO power gating,
//!   reboot-between-jobs, run-to-completion);
//! * [`conventional`] — the virtualization-based baseline (microVMs on a
//!   rack server with CPU contention and an idle power floor);
//! * [`report`] — run results: throughput, energy, per-function stats;
//! * [`recovery`] — retry/backoff, crash detection, and load-shedding
//!   policies for injected faults (see `docs/FAILURE_MODEL.md`);
//! * [`monitor`] — the flight recorder that taps a run's event and
//!   completion streams into time-resolved telemetry windows (see
//!   `docs/MONITORING.md`);
//! * [`experiment`] — one function per paper figure/table.
//!
//! # Examples
//!
//! Reproduce the headline comparison (scaled down for speed):
//!
//! ```
//! use microfaas::config::WorkloadMix;
//! use microfaas::conventional::{run_conventional, ConventionalConfig};
//! use microfaas::micro::{run_microfaas, MicroFaasConfig};
//!
//! let mix = WorkloadMix::quick();
//! let sbc = run_microfaas(&MicroFaasConfig::paper_prototype(mix.clone(), 42));
//! let vm = run_conventional(&ConventionalConfig::paper_baseline(mix, 42));
//! let gain = vm.joules_per_function().unwrap_or(f64::NAN)
//!     / sbc.joules_per_function().unwrap_or(f64::NAN);
//! assert!(gain > 4.0, "MicroFaaS should be >4x more energy-efficient");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod cache;
pub mod config;
pub mod conventional;
pub mod experiment;
pub mod gateway;
pub mod job;
pub mod micro;
pub mod monitor;
pub(crate) mod netmap;
pub mod openloop;
pub mod recovery;
pub mod registry;
pub mod report;
pub mod timeline;

pub use arrivals::{
    ArrivalProcess, ArrivalState, FunctionPicker, Popularity, Scenario, TenantClass, TenantSummary,
    TenantTracker,
};
pub use cache::{CacheConfig, CacheStats, ResultCache};
pub use config::{Jitter, WorkloadMix};
pub use conventional::{run_conventional, ConventionalConfig};
pub use job::{Job, JobRecord};
pub use micro::{run_microfaas, MicroFaasConfig};
pub use recovery::{FaultsConfig, RetryPolicy};
pub use report::{ClusterRun, DroppedJob, FaultSummary, Outcome};
