//! Worker-activity timelines reconstructed from a run's job records —
//! a text-mode Gantt view for eyeballing scheduling behaviour and
//! debugging utilization anomalies.

use std::collections::HashMap;

use microfaas_sim::trace::{TraceEvent, TraceRecord, WorkerState};
use microfaas_sim::{SimDuration, SimTime};

use crate::report::ClusterRun;

/// One busy interval on one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusySpan {
    /// Worker index.
    pub worker: usize,
    /// Job start (execution begin).
    pub from: SimTime,
    /// Job completion (result delivered).
    pub until: SimTime,
}

/// A reconstructed per-worker activity timeline.
///
/// # Examples
///
/// ```
/// use microfaas::config::WorkloadMix;
/// use microfaas::micro::{run_microfaas, MicroFaasConfig};
/// use microfaas::timeline::Timeline;
/// use microfaas_workloads::FunctionId;
///
/// let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 12);
/// let run = run_microfaas(&MicroFaasConfig::paper_prototype(mix, 3));
/// let timeline = Timeline::from_run(&run);
/// let chart = timeline.render(60);
/// assert!(chart.lines().count() >= 10, "one row per worker");
/// ```
#[derive(Debug, Clone)]
pub struct Timeline {
    workers: usize,
    spans: Vec<BusySpan>,
    /// Intervals a worker spent crashed (from a `Crashed` state change
    /// until the next state change). Only trace reconstruction can see
    /// these; [`Timeline::from_run`] leaves them empty.
    outages: Vec<BusySpan>,
    end: SimTime,
}

impl Timeline {
    /// Rebuilds the timeline from a completed run.
    pub fn from_run(run: &ClusterRun) -> Self {
        let mut spans: Vec<BusySpan> = run
            .records
            .iter()
            .map(|r| BusySpan {
                worker: r.worker,
                from: r.started,
                until: r.started + r.total(),
            })
            .collect();
        spans.sort_by_key(|s| (s.worker, s.from));
        Timeline {
            workers: run.workers,
            spans,
            outages: Vec::new(),
            end: SimTime::ZERO + run.makespan,
        }
    }

    /// Rebuilds the timeline from a recorded trace stream.
    ///
    /// Spans open at [`TraceEvent::JobStarted`] and close at the matching
    /// [`TraceEvent::JobCompleted`] or [`TraceEvent::JobTimedOut`]; jobs
    /// still in flight when the stream ends are dropped. The time axis
    /// extends to the latest timestamp in the stream, so trailing power
    /// samples stretch the chart exactly like the run's makespan does.
    ///
    /// On a full (non-overwritten) trace of a deterministic run this
    /// reproduces [`Timeline::from_run`] span for span, which is how the
    /// trace pipeline is validated against the simulator's own records.
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas::config::WorkloadMix;
    /// use microfaas::micro::{run_microfaas_with, MicroFaasConfig};
    /// use microfaas::timeline::Timeline;
    /// use microfaas_sim::{Observer, TraceBuffer};
    /// use microfaas_workloads::FunctionId;
    ///
    /// let mix = WorkloadMix::new(vec![FunctionId::RegexMatch], 12);
    /// let config = MicroFaasConfig::paper_prototype(mix, 3);
    /// let mut buffer = TraceBuffer::new(65_536);
    /// let run = run_microfaas_with(&config, &mut Observer::tracing(&mut buffer));
    /// let timeline = Timeline::from_trace(buffer.iter(), run.workers);
    /// assert_eq!(timeline.overlap_violation(), None);
    /// ```
    pub fn from_trace<'a>(
        records: impl IntoIterator<Item = &'a TraceRecord>,
        workers: usize,
    ) -> Self {
        let mut open: HashMap<u64, (usize, SimTime)> = HashMap::new();
        let mut down: HashMap<usize, SimTime> = HashMap::new();
        let mut spans = Vec::new();
        let mut outages = Vec::new();
        let mut end = SimTime::ZERO;
        for record in records {
            end = end.max(record.at);
            match record.event {
                TraceEvent::JobStarted { job, worker, .. } => {
                    open.insert(job, (worker, record.at));
                }
                TraceEvent::JobCompleted { job, .. } | TraceEvent::JobTimedOut { job, .. } => {
                    if let Some((worker, from)) = open.remove(&job) {
                        spans.push(BusySpan {
                            worker,
                            from,
                            until: record.at,
                        });
                    }
                }
                TraceEvent::WorkerStateChange { worker, state } => {
                    if state == WorkerState::Crashed {
                        down.entry(worker).or_insert(record.at);
                    } else if let Some(from) = down.remove(&worker) {
                        outages.push(BusySpan {
                            worker,
                            from,
                            until: record.at,
                        });
                    }
                }
                _ => {}
            }
        }
        // A worker still down when the stream ends stays down to the edge
        // of the chart.
        for (worker, from) in down {
            outages.push(BusySpan {
                worker,
                from,
                until: end,
            });
        }
        spans.sort_by_key(|s| (s.worker, s.from));
        outages.sort_by_key(|s| (s.worker, s.from));
        Timeline {
            workers,
            spans,
            outages,
            end,
        }
    }

    /// Busy spans, sorted by worker then start time.
    pub fn spans(&self) -> &[BusySpan] {
        &self.spans
    }

    /// Crash outages, sorted by worker then start time. Empty unless the
    /// timeline was rebuilt from a trace of a faulted run.
    pub fn outages(&self) -> &[BusySpan] {
        &self.outages
    }

    /// Per-worker busy fraction over the run.
    pub fn utilization(&self, worker: usize) -> f64 {
        let total = self.end.duration_since(SimTime::ZERO).as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .spans
            .iter()
            .filter(|s| s.worker == worker)
            .map(|s| s.until.duration_since(s.from).as_secs_f64())
            .sum();
        busy / total
    }

    /// Checks the single-tenancy invariant: no worker ever runs two jobs
    /// at once. Returns the first violating pair if any.
    pub fn overlap_violation(&self) -> Option<(BusySpan, BusySpan)> {
        self.spans.windows(2).find_map(|pair| {
            (pair[0].worker == pair[1].worker && pair[1].from < pair[0].until)
                .then(|| (pair[0], pair[1]))
        })
    }

    /// Renders an ASCII Gantt chart, one row per worker, `width`
    /// characters across the makespan: `#` busy, `x` crashed, `.` not
    /// executing (booting, rebooting, off, or idle). Crash intervals are
    /// distinct from ordinary reboot gaps so a fault-injection run reads
    /// differently from a healthy one at a glance; where a cell is both
    /// (a job closed the instant the crash hit), busy wins.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn render(&self, width: usize) -> String {
        assert!(width > 0, "chart needs at least one column");
        let total = self.end.duration_since(SimTime::ZERO).as_secs_f64();
        let mut out = String::new();
        for worker in 0..self.workers {
            let mut row = vec!['.'; width];
            if total > 0.0 {
                for (glyph, spans) in [('x', &self.outages), ('#', &self.spans)] {
                    for span in spans.iter().filter(|s| s.worker == worker) {
                        let a = (span.from.as_secs_f64() / total * width as f64) as usize;
                        let b = (span.until.as_secs_f64() / total * width as f64).ceil() as usize;
                        for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                            *cell = glyph;
                        }
                    }
                }
            }
            let line: String = row.into_iter().collect();
            out.push_str(&format!(
                "w{worker:<3} |{line}| {:>5.1}%\n",
                self.utilization(worker) * 100.0
            ));
        }
        out.push_str(&format!(
            "      0s{:>width$}\n",
            format!("{:.1}s", total),
            width = width.saturating_sub(1)
        ));
        out
    }

    /// Mean gap between consecutive jobs on the same worker — under the
    /// paper's policy this is the reboot time.
    pub fn mean_gap(&self) -> Option<SimDuration> {
        let mut gaps = Vec::new();
        for pair in self.spans.windows(2) {
            if pair[0].worker == pair[1].worker {
                gaps.push(pair[1].from.duration_since(pair[0].until));
            }
        }
        if gaps.is_empty() {
            None
        } else {
            let total: u64 = gaps.iter().map(|g| g.as_micros()).sum();
            Some(SimDuration::from_micros(total / gaps.len() as u64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadMix;
    use crate::micro::{run_microfaas, MicroFaasConfig};
    use microfaas_workloads::FunctionId;

    fn timeline() -> Timeline {
        let mix = WorkloadMix::new(vec![FunctionId::RegexMatch, FunctionId::CascSha], 25);
        let run = run_microfaas(&MicroFaasConfig::paper_prototype(mix, 9));
        Timeline::from_run(&run)
    }

    #[test]
    fn single_tenancy_holds() {
        assert_eq!(timeline().overlap_violation(), None);
    }

    #[test]
    fn gaps_match_the_reboot_time() {
        let gap = timeline().mean_gap().expect("multiple jobs per worker");
        // The ARM reboot is 1.51 s; jitter-free scheduling puts the gap
        // exactly there.
        let secs = gap.as_secs_f64();
        assert!(
            (1.45..1.6).contains(&secs),
            "mean inter-job gap {secs:.2}s should be the 1.51 s reboot"
        );
    }

    #[test]
    fn utilization_is_high_under_saturation() {
        let timeline = timeline();
        for worker in 0..10 {
            let u = timeline.utilization(worker);
            assert!(
                (0.2..=1.0).contains(&u),
                "worker {worker} utilization {u:.2} out of range"
            );
        }
    }

    #[test]
    fn render_has_one_row_per_worker_plus_axis() {
        let chart = timeline().render(40);
        assert_eq!(chart.lines().count(), 11);
        assert!(chart.contains('#'), "busy cells must appear");
        let first = chart.lines().next().expect("rows exist");
        assert!(first.starts_with("w0"));
    }

    #[test]
    fn trace_reconstruction_matches_the_run_records() {
        use crate::micro::run_microfaas_with;
        use microfaas_sim::{Observer, TraceBuffer};

        let mix = WorkloadMix::new(vec![FunctionId::RegexMatch, FunctionId::CascSha], 25);
        let config = MicroFaasConfig::paper_prototype(mix, 9);
        let mut buffer = TraceBuffer::new(1 << 16);
        let run = run_microfaas_with(&config, &mut Observer::tracing(&mut buffer));
        assert_eq!(buffer.dropped(), 0, "buffer must hold the whole run");

        let from_run = Timeline::from_run(&run);
        let from_trace = Timeline::from_trace(buffer.iter(), run.workers);
        assert_eq!(from_trace.spans(), from_run.spans());
        assert_eq!(from_trace.overlap_violation(), None);
        assert_eq!(from_trace.render(40), from_run.render(40));
    }

    #[test]
    fn overlap_detector_fires_on_bad_data() {
        let spans = vec![
            BusySpan {
                worker: 0,
                from: SimTime::ZERO,
                until: SimTime::from_secs(5),
            },
            BusySpan {
                worker: 0,
                from: SimTime::from_secs(3),
                until: SimTime::from_secs(6),
            },
        ];
        let timeline = Timeline {
            workers: 1,
            spans,
            outages: vec![],
            end: SimTime::from_secs(6),
        };
        assert!(timeline.overlap_violation().is_some());
    }

    #[test]
    fn crash_outages_render_with_their_own_glyph() {
        use crate::micro::run_microfaas_with;
        use crate::recovery::FaultsConfig;
        use microfaas_sim::faults::{FaultKind, FaultPlan, FaultSpec, FaultTrigger};
        use microfaas_sim::{Observer, TraceBuffer};

        let mix = WorkloadMix::new(vec![FunctionId::MatMul], 40);
        let mut config = MicroFaasConfig::paper_prototype(mix, 9);
        config.faults = FaultsConfig::with_plan(FaultPlan {
            seed: 4,
            faults: vec![FaultSpec {
                kind: FaultKind::Crash,
                worker: Some(3),
                trigger: FaultTrigger::At(SimTime::from_secs(10)),
            }],
        });
        let mut buffer = TraceBuffer::new(1 << 16);
        run_microfaas_with(&config, &mut Observer::tracing(&mut buffer));
        let timeline = Timeline::from_trace(buffer.iter(), config.workers);
        let outages = timeline.outages();
        assert!(!outages.is_empty(), "the injected crash must show up");
        assert!(outages.iter().all(|o| o.worker == 3));
        let chart = timeline.render(120);
        let crashed_row = chart.lines().nth(3).expect("worker 3 row");
        assert!(
            crashed_row.contains('x'),
            "crash interval must render as x: {crashed_row}"
        );
        let healthy_row = chart.lines().next().expect("worker 0 row");
        assert!(!healthy_row.contains('x'), "healthy workers stay x-free");
    }

    #[test]
    fn empty_run_renders_idle_chart() {
        let timeline = Timeline {
            workers: 2,
            spans: vec![],
            outages: vec![],
            end: SimTime::ZERO,
        };
        let chart = timeline.render(10);
        assert!(chart.contains("w0"));
        assert!(!chart.contains('#'));
        assert_eq!(timeline.mean_gap(), None);
        assert_eq!(timeline.utilization(0), 0.0);
    }
}
