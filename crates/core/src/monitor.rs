//! The engine-side flight recorder: glue between the open-loop engines
//! and the [`microfaas_sim::telemetry`] tumbling windows.
//!
//! The telemetry subsystem needs two taps into a run — the trace-event
//! stream (power samples, worker state changes, queue movements) and
//! the completion stream (latencies, tenants, cache hits). The engines
//! expose those through two different seams: an [`Observer`] over
//! [`TraceSink`] for events, and a [`RunSink`] for completions. A
//! [`FlightRecorder`] owns one window ring for each and hands out both
//! taps simultaneously via a split borrow, so a single recorder can sit
//! on both seams of one run without aliasing:
//!
//! ```
//! use microfaas::monitor::FlightRecorder;
//! use microfaas::openloop::{run_open_loop_monitored, OpenLoopConfig};
//! use microfaas_sim::telemetry::TelemetryConfig;
//! use microfaas_sim::SimDuration;
//!
//! let config = OpenLoopConfig::paper_arrangement(2, SimDuration::from_secs(30), 42);
//! let (run, series) = run_open_loop_monitored(&config, &TelemetryConfig::default());
//! assert_eq!(series.total_completed(), run.completed);
//! ```
//!
//! Telemetry is strictly an observer: it consumes no RNG draws and
//! perturbs nothing, so a monitored run agrees bit-for-bit with the
//! unmonitored run on the same config. See `docs/MONITORING.md`.

use microfaas_sim::telemetry::{
    CompletionWindows, EventWindows, TelemetryConfig, TelemetrySeries, TenantSpec,
};
use microfaas_sim::SimTime;

use crate::arrivals::TenantClass;
use crate::openloop::{Completion, RunSink};

#[cfg(doc)]
use microfaas_sim::trace::{Observer, TraceSink};

/// Both telemetry taps for one run: an [`EventWindows`] to hand the
/// engine's [`Observer`] and a [`CompletionTap`] to hand its streaming
/// sink seam. After the run, [`FlightRecorder::into_series`] seals the
/// integrals at the run's end instant and assembles the joined
/// [`TelemetrySeries`].
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    events: EventWindows,
    completions: CompletionWindows,
}

impl FlightRecorder {
    /// Creates a recorder for a run over `tenants` (the run config's
    /// tenant classes, in order — index must match the engine's tenant
    /// indices). An empty slice records a single catch-all `all` tenant
    /// with an infinite SLO.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (zero window width, zero window
    /// cap, or an out-of-range quantile epsilon).
    pub fn new(config: &TelemetryConfig, tenants: &[TenantClass]) -> Self {
        let specs = tenants
            .iter()
            .map(|t| TenantSpec {
                name: t.name.clone(),
                slo_latency_s: t.slo_latency_s,
            })
            .collect();
        FlightRecorder {
            events: EventWindows::new(config),
            completions: CompletionWindows::new(config, specs),
        }
    }

    /// Splits the recorder into its two engine-facing taps. The borrows
    /// are disjoint, so the event tap can live inside an
    /// [`Observer::tracing`] while the completion tap rides the run's
    /// sink parameter.
    pub fn taps(&mut self) -> (&mut EventWindows, CompletionTap<'_>) {
        let FlightRecorder {
            events,
            completions,
        } = self;
        (events, CompletionTap(completions))
    }

    /// Seals the time integrals at the run's true end instant and joins
    /// both window rings into one [`TelemetrySeries`].
    pub fn into_series(mut self, end: SimTime) -> TelemetrySeries {
        self.events.seal(end);
        TelemetrySeries::assemble(end, self.events, self.completions)
    }
}

/// The completion-stream half of a [`FlightRecorder`]: a [`RunSink`]
/// that folds every [`Completion`] into the recorder's windows.
/// Zero-exec completions (result-cache hits and coalesced followers)
/// are counted as served-from-cache.
#[derive(Debug)]
pub struct CompletionTap<'a>(&'a mut CompletionWindows);

impl RunSink for CompletionTap<'_> {
    #[inline]
    fn on_completion(&mut self, c: &Completion) {
        self.0
            .record(c.finished, c.latency_s(), c.tenant, c.exec.is_zero());
    }
}
