//! Orchestrator-level recovery policies for injected faults: bounded
//! retry with exponential backoff, crash detection delay, and graceful
//! degradation (shedding low-priority work when capacity drops).
//!
//! The fault *mechanisms* live in [`microfaas_sim::faults`]; this
//! module is the *policy* layer both cluster simulators share. The full
//! failure model — taxonomy, per-cluster recovery semantics, and the
//! backoff math below — is documented in `docs/FAILURE_MODEL.md`.

use std::sync::Arc;

use microfaas_sim::faults::{FaultInjector, FaultPlan};
use microfaas_sim::SimDuration;
use microfaas_workloads::{FunctionId, WorkloadClass};

use crate::job::Job;
use crate::report::{DroppedJob, FaultSummary};

/// Scheduling priority of an invocation, derived from its Table-I
/// workload class: network-bound functions are interactive store/queue
/// operations a client is waiting on, CPU-bound functions are batch
/// compute that can be shed first under degraded capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Sheddable batch compute (CPU- or RAM-bound functions).
    Batch,
    /// Latency-sensitive service calls (network-bound functions).
    Interactive,
}

/// The priority the orchestrator assigns to `function`.
///
/// # Examples
///
/// ```
/// use microfaas::recovery::{priority_of, Priority};
/// use microfaas_workloads::FunctionId;
///
/// assert_eq!(priority_of(FunctionId::MatMul), Priority::Batch);
/// assert_eq!(priority_of(FunctionId::RedisInsert), Priority::Interactive);
/// ```
pub fn priority_of(function: FunctionId) -> Priority {
    match function.class() {
        WorkloadClass::CpuBound => Priority::Batch,
        WorkloadClass::NetworkBound => Priority::Interactive,
    }
}

/// Bounded retry with exponential backoff and jitter.
///
/// Attempt `n` (1-based) backs off for
/// `min(cap, base × 2ⁿ⁻¹) × (0.5 + 0.5 × jitter)` with `jitter` drawn
/// uniformly from `[0, 1)` out of the fault plan's private RNG stream —
/// full-jitter-style spreading without touching simulation randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries before an invocation is declared failed.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimDuration,
    /// Ceiling the exponential curve saturates at.
    pub backoff_cap: SimDuration,
}

impl RetryPolicy {
    /// The orchestrator default: 3 attempts, 250 ms doubling to a 2 s cap.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_millis(250),
            backoff_cap: SimDuration::from_secs(2),
        }
    }

    /// Backoff before retry `attempt` (1-based), jittered by
    /// `jitter01 ∈ [0, 1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas::recovery::RetryPolicy;
    /// use microfaas_sim::SimDuration;
    ///
    /// let policy = RetryPolicy::standard();
    /// // Zero jitter halves the nominal delay; the curve still doubles.
    /// assert_eq!(policy.backoff(1, 0.0), SimDuration::from_millis(125));
    /// assert_eq!(policy.backoff(2, 0.0), SimDuration::from_millis(250));
    /// // The cap bounds late attempts regardless of the exponent.
    /// assert!(policy.backoff(30, 0.999) <= policy.backoff_cap);
    /// ```
    pub fn backoff(&self, attempt: u32, jitter01: f64) -> SimDuration {
        let doublings = attempt.saturating_sub(1).min(30);
        let nominal = self
            .base_backoff
            .mul_f64((1u64 << doublings) as f64)
            .min(self.backoff_cap);
        nominal.mul_f64(0.5 + 0.5 * jitter01.clamp(0.0, 1.0))
    }
}

/// Fault plan plus every recovery-policy knob a cluster run consumes.
#[derive(Debug, Clone)]
pub struct FaultsConfig {
    /// What goes wrong ([`FaultPlan::empty`] keeps runs bit-identical
    /// to a fault-free build). Shared behind an [`Arc`] so cloning a
    /// config — e.g. once per sweep point or replicate — never copies
    /// the plan's fault list.
    pub plan: Arc<FaultPlan>,
    /// Retry/backoff policy for recovered invocations.
    pub retry: RetryPolicy,
    /// Heartbeat lag before the orchestrator notices a dead worker and
    /// starts recovery.
    pub detection_delay: SimDuration,
    /// When live workers drop below this fraction of the fleet, queued
    /// [`Priority::Batch`] jobs are shed to protect interactive work.
    pub shed_below_capacity: f64,
    /// Watchdog deadline for a hung invocation (fires only when a hang
    /// fault was injected, so fault-free runs schedule nothing).
    pub hang_watchdog: SimDuration,
    /// Wait before retransmitting a lost result transfer.
    pub retransmit_delay: SimDuration,
    /// Consecutive boot failures before a worker is declared dead and
    /// its queue redistributed.
    pub max_boot_retries: u32,
}

impl FaultsConfig {
    /// No faults, standard policies — the default for every config
    /// constructor, guaranteeing unchanged behavior.
    pub fn none() -> Self {
        FaultsConfig::with_plan(FaultPlan::empty())
    }

    /// Standard policies around a specific plan (owned or pre-shared
    /// [`Arc`] — both convert).
    pub fn with_plan(plan: impl Into<Arc<FaultPlan>>) -> Self {
        FaultsConfig {
            plan: plan.into(),
            retry: RetryPolicy::standard(),
            detection_delay: SimDuration::from_millis(500),
            shed_below_capacity: 0.5,
            hang_watchdog: SimDuration::from_secs(30),
            retransmit_delay: SimDuration::from_millis(50),
            max_boot_retries: 3,
        }
    }
}

/// Per-run bookkeeping the cluster event loops thread through their
/// fault handling: the injector, per-job retry attempts, per-worker
/// boot-failure streaks and dead flags, and the dropped/summary output
/// that lands in [`crate::report::ClusterRun`].
#[derive(Debug)]
pub(crate) struct FaultRuntime {
    pub injector: FaultInjector,
    pub attempts: Vec<u32>,
    pub boot_failures: Vec<u32>,
    pub dead: Vec<bool>,
    pub dropped: Vec<DroppedJob>,
    pub summary: FaultSummary,
}

impl FaultRuntime {
    pub fn new(plan: &FaultPlan, workers: usize, total_jobs: usize) -> Self {
        FaultRuntime {
            injector: FaultInjector::new(plan),
            attempts: vec![0; total_jobs],
            boot_failures: vec![0; workers],
            dead: vec![false; workers],
            dropped: Vec::new(),
            summary: FaultSummary::default(),
        }
    }

    /// Consumes one retry attempt for `job` and reports the 1-based
    /// attempt number.
    pub fn next_attempt(&mut self, job: Job) -> u32 {
        let slot = &mut self.attempts[job.id as usize];
        *slot += 1;
        *slot
    }

    /// Workers that have not been declared permanently dead.
    pub fn live_workers(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_saturates() {
        let policy = RetryPolicy::standard();
        // Full jitter (≈1) gives the nominal curve.
        let near = |d: SimDuration, ms: u64| {
            let nominal = SimDuration::from_millis(ms);
            d > nominal.mul_f64(0.49) && d <= nominal
        };
        assert!(near(policy.backoff(1, 0.999), 250));
        assert!(near(policy.backoff(2, 0.999), 500));
        assert!(near(policy.backoff(3, 0.999), 1000));
        assert!(near(policy.backoff(4, 0.999), 2000));
        assert!(near(policy.backoff(5, 0.999), 2000), "cap holds");
        assert!(near(policy.backoff(64, 0.999), 2000), "huge attempts safe");
    }

    #[test]
    fn jitter_spreads_but_never_exceeds_nominal() {
        let policy = RetryPolicy::standard();
        let lo = policy.backoff(2, 0.0);
        let hi = policy.backoff(2, 0.999);
        assert!(lo < hi);
        assert_eq!(lo, SimDuration::from_millis(250), "floor is half nominal");
        assert!(hi <= SimDuration::from_millis(500));
    }

    #[test]
    fn priorities_split_the_suite_in_two() {
        let interactive = FunctionId::ALL
            .iter()
            .filter(|f| priority_of(**f) == Priority::Interactive)
            .count();
        // Table I: 9 CPU-bound, 8 network-bound functions.
        assert_eq!(interactive, 8);
        assert!(Priority::Batch < Priority::Interactive, "shed batch first");
    }

    #[test]
    fn runtime_tracks_attempts_and_liveness() {
        let mut rt = FaultRuntime::new(&FaultPlan::empty(), 4, 10);
        assert_eq!(rt.live_workers(), 4);
        let job = Job {
            id: 7,
            function: FunctionId::CascSha,
        };
        assert_eq!(rt.next_attempt(job), 1);
        assert_eq!(rt.next_attempt(job), 2);
        rt.dead[2] = true;
        assert_eq!(rt.live_workers(), 3);
        assert!(!rt.injector.is_active());
    }
}
