//! Content-addressed result caching with in-flight request coalescing.
//!
//! A cache **hit** is the cheapest invocation a serverless platform can
//! serve: no queueing, no boot, no execution — near-zero latency at
//! zero marginal energy. With the skewed popularity models of
//! `docs/WORKLOADS.md` (Zipf, hot/cold) most traffic repeats a small
//! set of idempotent function + input pairs, so a bounded cache in the
//! orchestration plane reshapes every latency–energy Pareto curve the
//! policy sweeps measure. `docs/CACHING.md` is the handbook page.
//!
//! The design is deliberately deterministic and dependency-free:
//!
//! * **Keys** are FNV-1a over the interned function identity plus the
//!   canonical input bytes ([`content_key`]).
//! * **Storage** is a hand-rolled bounded LRU (a [`HashMap`] from key
//!   to slot index over an index-linked slab — O(1) lookup, insert,
//!   and eviction) with TTL expiry checked lazily against simulated
//!   time, so equal seeds give bit-identical hit sequences.
//! * **Coalescing** ([`CoalesceTable`]) collapses concurrent identical
//!   invokes onto one leader execution; followers complete when the
//!   leader does, paying queue time only.
//!
//! Configuration is a spec string in the arrivals style
//! (`off` | `lru:CAP[,ttl=SECS][,inputs=N]`), parsed by
//! [`CacheConfig::parse`] and validated by [`CacheConfig::try_validate`].
//!
//! # Examples
//!
//! ```
//! use microfaas::cache::{content_key, CacheConfig, ResultCache};
//!
//! let config = CacheConfig::parse("lru:2,ttl=300").unwrap();
//! let mut cache: ResultCache<u32> = ResultCache::from_config(&config).unwrap();
//! let key = content_key(3, 7);
//!
//! assert!(cache.lookup(key, 0).is_none()); // cold
//! cache.insert(key, 42, 0);
//! assert_eq!(cache.lookup(key, 1_000_000), Some(&42)); // warm at t=1 s
//! assert!(cache.lookup(key, 400_000_000).is_none()); // expired at t=400 s
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 2);
//! ```

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use microfaas_sim::SimDuration;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a hash state (start from [`FNV_OFFSET`]).
#[inline]
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over one byte string.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// The content address of one invocation: the interned function
/// identity (`FunctionId::index`) folded with the canonical input
/// bytes. Two invocations share a key exactly when they would compute
/// the same result.
#[inline]
pub fn content_key(function_index: u8, input: u64) -> u64 {
    fnv1a_extend(
        fnv1a_extend(FNV_OFFSET, &[function_index]),
        &input.to_le_bytes(),
    )
}

/// Identity-strength FNV hasher for the cache's `u64`-keyed maps: the
/// keys are already FNV digests, so this avoids SipHash on the lookup
/// hot path while staying deterministic.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.0 = fnv1a_extend(self.0, bytes);
    }
}

type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// Input variants drawn per arrival when a spec omits `inputs=N`: a
/// proxy for "how many distinct request payloads a function sees".
pub const DEFAULT_INPUT_VARIANTS: u32 = 16;

/// The spec string the CLI treats as `--cache on`.
pub const DEFAULT_CACHE_SPEC: &str = "lru:4096,ttl=300";

/// Result-cache configuration, parsed from a spec string. The default
/// is [`CacheConfig::Off`], which keeps every engine byte-identical to
/// the pre-cache builds (the bit-compat goldens pin this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheConfig {
    /// No caching: the zero-cost default.
    #[default]
    Off,
    /// Bounded LRU keyed on content addresses.
    Lru {
        /// Maximum number of cached results.
        capacity: usize,
        /// Entries older than this (in simulated time) miss and are
        /// dropped; `None` never expires.
        ttl: Option<SimDuration>,
        /// Distinct canonical inputs drawn per function in the
        /// simulation engines (the gateway uses real request bodies).
        inputs: u32,
    },
}

impl CacheConfig {
    /// Whether this configuration caches at all.
    pub fn enabled(&self) -> bool {
        *self != CacheConfig::Off
    }

    /// The configured input-variant count (engines only consult this
    /// when the cache is enabled).
    pub fn input_variants(&self) -> u32 {
        match self {
            CacheConfig::Off => DEFAULT_INPUT_VARIANTS,
            CacheConfig::Lru { inputs, .. } => *inputs,
        }
    }

    /// Parses a spec string: `off`, `lru:CAP`, `lru:CAP,ttl=SECS`,
    /// `lru:CAP,ttl=SECS,inputs=N`.
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas::cache::CacheConfig;
    /// use microfaas_sim::SimDuration;
    ///
    /// assert_eq!(CacheConfig::parse("off").unwrap(), CacheConfig::Off);
    /// assert_eq!(
    ///     CacheConfig::parse("lru:4096,ttl=300").unwrap(),
    ///     CacheConfig::Lru {
    ///         capacity: 4096,
    ///         ttl: Some(SimDuration::from_secs(300)),
    ///         inputs: 16,
    ///     }
    /// );
    /// assert!(CacheConfig::parse("lru:0").is_err());
    /// assert!(CacheConfig::parse("arc:64").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<CacheConfig, String> {
        let (kind, args) = spec.split_once(':').unwrap_or((spec, ""));
        let config = match kind {
            "off" => {
                if !args.is_empty() {
                    return Err(format!(
                        "cache spec \"off\" takes no arguments, got \"{args}\""
                    ));
                }
                CacheConfig::Off
            }
            "lru" => {
                if args.is_empty() {
                    return Err(format!(
                        "cache spec \"{spec}\" needs a capacity (lru:CAP[,ttl=SECS][,inputs=N])"
                    ));
                }
                let mut parts = args.split(',');
                let cap_text = parts.next().unwrap_or("").trim();
                let capacity: usize = cap_text
                    .parse()
                    .map_err(|_| format!("bad capacity \"{cap_text}\" in cache spec \"{spec}\""))?;
                let mut ttl = None;
                let mut inputs = DEFAULT_INPUT_VARIANTS;
                for part in parts {
                    let (name, value) = part.split_once('=').ok_or_else(|| {
                        format!(
                            "bad option \"{part}\" in cache spec \"{spec}\" \
                             (expected ttl=SECS or inputs=N)"
                        )
                    })?;
                    match name.trim() {
                        "ttl" => {
                            let secs: u64 = value.trim().parse().map_err(|_| {
                                format!("bad number \"{value}\" in cache spec \"{spec}\"")
                            })?;
                            ttl = Some(SimDuration::from_secs(secs));
                        }
                        "inputs" => {
                            inputs = value.trim().parse().map_err(|_| {
                                format!("bad number \"{value}\" in cache spec \"{spec}\"")
                            })?;
                        }
                        other => {
                            return Err(format!(
                                "unknown option \"{other}\" in cache spec \"{spec}\" \
                                 (ttl | inputs)"
                            ));
                        }
                    }
                }
                CacheConfig::Lru {
                    capacity,
                    ttl,
                    inputs,
                }
            }
            other => {
                return Err(format!("unknown cache spec \"{other}\" (off | lru:CAP)"));
            }
        };
        config.try_validate()?;
        Ok(config)
    }

    /// Validates the configuration, mirroring the arrivals style:
    /// construction is infallible, use is not.
    pub fn try_validate(&self) -> Result<(), String> {
        match self {
            CacheConfig::Off => Ok(()),
            CacheConfig::Lru {
                capacity,
                ttl,
                inputs,
            } => {
                if *capacity == 0 {
                    return Err("cache capacity must be positive, got 0".to_string());
                }
                if let Some(ttl) = ttl {
                    if ttl.is_zero() {
                        return Err("cache ttl must be positive, got 0".to_string());
                    }
                }
                if *inputs == 0 {
                    return Err("cache inputs must be positive, got 0".to_string());
                }
                Ok(())
            }
        }
    }

    /// Round-trippable display label (`off` or `lru:CAP,...`).
    pub fn label(&self) -> String {
        match self {
            CacheConfig::Off => "off".to_string(),
            CacheConfig::Lru {
                capacity,
                ttl,
                inputs,
            } => {
                let mut label = format!("lru:{capacity}");
                if let Some(ttl) = ttl {
                    label.push_str(&format!(",ttl={}", ttl.as_micros() / 1_000_000));
                }
                if *inputs != DEFAULT_INPUT_VARIANTS {
                    label.push_str(&format!(",inputs={inputs}"));
                }
                label
            }
        }
    }
}

/// Monotonic cache telemetry, published as `cache_*` counters when an
/// engine runs with the cache enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing (including TTL expiries).
    pub misses: u64,
    /// Results stored.
    pub insertions: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries dropped because their TTL elapsed.
    pub expirations: u64,
    /// Invocations that collapsed onto an in-flight leader.
    pub coalesced: u64,
}

impl CacheStats {
    /// Fraction of completions served without executing: hits plus
    /// coalesced followers over all lookups plus followers.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.coalesced;
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Slot<V> {
    key: u64,
    value: V,
    stored_at: u64,
    prev: u32,
    next: u32,
}

/// A bounded, deterministic LRU result cache with lazy TTL expiry.
///
/// Time is a caller-supplied monotonic `u64`: the simulation engines
/// pass microseconds of sim time, the HTTP gateway passes its request
/// counter. Lookups, inserts, and evictions are all O(1) — the recency
/// list is index-linked over a slab, so the hot path never allocates.
#[derive(Debug)]
pub struct ResultCache<V> {
    capacity: usize,
    ttl: Option<u64>,
    map: HashMap<u64, u32, FnvBuildHasher>,
    slots: Vec<Slot<V>>,
    head: u32,
    tail: u32,
    free: Vec<u32>,
    stats: CacheStats,
}

impl<V> ResultCache<V> {
    /// Creates a cache holding at most `capacity` entries whose age may
    /// not exceed `ttl` time units (`None` never expires).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, ttl: Option<u64>) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        let reserve = capacity.min(1 << 16);
        ResultCache {
            capacity,
            ttl,
            map: HashMap::with_capacity_and_hasher(reserve, FnvBuildHasher::default()),
            slots: Vec::with_capacity(reserve),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Builds a cache from a [`CacheConfig`], with TTL converted to
    /// microseconds of simulated time. Returns `None` when the config
    /// is [`CacheConfig::Off`].
    pub fn from_config(config: &CacheConfig) -> Option<Self> {
        match config {
            CacheConfig::Off => None,
            CacheConfig::Lru { capacity, ttl, .. } => {
                Some(ResultCache::new(*capacity, ttl.map(|t| t.as_micros())))
            }
        }
    }

    /// Looks up `key` at time `now`, counting a hit or a miss; an entry
    /// older than the TTL is dropped and counts as a miss.
    pub fn lookup(&mut self, key: u64, now: u64) -> Option<&V> {
        let Some(&slot) = self.map.get(&key) else {
            self.stats.misses += 1;
            return None;
        };
        if let Some(ttl) = self.ttl {
            if now.saturating_sub(self.slots[slot as usize].stored_at) > ttl {
                self.unlink(slot);
                self.map.remove(&key);
                self.free.push(slot);
                self.stats.expirations += 1;
                self.stats.misses += 1;
                return None;
            }
        }
        self.touch(slot);
        self.stats.hits += 1;
        Some(&self.slots[slot as usize].value)
    }

    /// Stores `value` under `key` at time `now`, refreshing the entry's
    /// recency and TTL clock; evicts the least-recently-used entry at
    /// capacity.
    pub fn insert(&mut self, key: u64, value: V, now: u64) {
        if let Some(&slot) = self.map.get(&key) {
            let s = &mut self.slots[slot as usize];
            s.value = value;
            s.stored_at = now;
            self.touch(slot);
            self.stats.insertions += 1;
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity > 0 so a tail exists");
            self.unlink(victim);
            self.map.remove(&self.slots[victim as usize].key);
            self.free.push(victim);
            self.stats.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                s.key = key;
                s.value = value;
                s.stored_at = now;
                i
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Slot {
                    key,
                    value,
                    stored_at: now,
                    prev: NIL,
                    next: NIL,
                });
                i
            }
        };
        self.push_front(slot);
        self.map.insert(key, slot);
        self.stats.insertions += 1;
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Telemetry accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Counts one coalesced follower, reclassifying the miss its
    /// [`ResultCache::lookup`] just recorded (a follower neither hits
    /// nor executes, so each arrival lands in exactly one of the three
    /// buckets). The engines own the in-flight table; the cache owns
    /// the telemetry.
    pub fn note_coalesced(&mut self) {
        self.stats.misses = self.stats.misses.saturating_sub(1);
        self.stats.coalesced += 1;
    }

    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[slot as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
    }

    #[inline]
    fn touch(&mut self, slot: u32) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }
}

/// In-flight coalescing: maps a content key to the followers waiting on
/// its leader execution. The engines call [`CoalesceTable::try_lead`]
/// on a cache miss, park duplicates with [`CoalesceTable::follow`], and
/// drain them with [`CoalesceTable::complete`] when the leader's result
/// commits.
///
/// # Examples
///
/// ```
/// use microfaas::cache::CoalesceTable;
///
/// let mut table: CoalesceTable<u64> = CoalesceTable::new();
/// assert!(table.try_lead(9, 100)); // first invoke (job 100) executes
/// assert!(!table.try_lead(9, 101)); // duplicate while in flight
/// assert_eq!(table.leader(9), Some(100));
/// table.follow(9, 101);
/// table.follow(9, 102);
/// assert_eq!(table.complete(9), vec![101, 102]);
/// assert!(table.try_lead(9, 103)); // key free again
/// ```
#[derive(Debug, Default)]
pub struct CoalesceTable<J> {
    waiting: HashMap<u64, (u64, Vec<J>), FnvBuildHasher>,
}

impl<J> CoalesceTable<J> {
    /// Creates an empty table.
    pub fn new() -> Self {
        CoalesceTable {
            waiting: HashMap::with_hasher(FnvBuildHasher::default()),
        }
    }

    /// Claims leadership of `key` for the job `leader`: returns true if
    /// no identical invoke is in flight (the caller must execute),
    /// false if one is (the caller should [`CoalesceTable::follow`]).
    pub fn try_lead(&mut self, key: u64, leader: u64) -> bool {
        use std::collections::hash_map::Entry;
        match self.waiting.entry(key) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert((leader, Vec::new()));
                true
            }
        }
    }

    /// The job id leading `key`'s in-flight execution, if any.
    pub fn leader(&self, key: u64) -> Option<u64> {
        self.waiting.get(&key).map(|(leader, _)| *leader)
    }

    /// Parks a follower behind `key`'s in-flight leader.
    ///
    /// # Panics
    ///
    /// Panics if no leader holds `key` (callers must check
    /// [`CoalesceTable::try_lead`] first).
    pub fn follow(&mut self, key: u64, job: J) {
        self.waiting
            .get_mut(&key)
            .expect("follow() requires an in-flight leader")
            .1
            .push(job);
    }

    /// Releases `key` and returns its parked followers in arrival
    /// order (empty if the leader ran alone, or if the key was never
    /// led — completions of uncached work are fine to report).
    pub fn complete(&mut self, key: u64) -> Vec<J> {
        self.waiting
            .remove(&key)
            .map(|(_, jobs)| jobs)
            .unwrap_or_default()
    }

    /// Number of keys currently in flight.
    pub fn in_flight(&self) -> usize {
        self.waiting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_and_validates() {
        assert_eq!(CacheConfig::parse("off").unwrap(), CacheConfig::Off);
        let full = CacheConfig::parse("lru:128,ttl=60,inputs=4").unwrap();
        assert_eq!(
            full,
            CacheConfig::Lru {
                capacity: 128,
                ttl: Some(SimDuration::from_secs(60)),
                inputs: 4,
            }
        );
        assert_eq!(CacheConfig::parse(&full.label()).unwrap(), full);
        let no_ttl = CacheConfig::parse("lru:64").unwrap();
        assert_eq!(
            no_ttl,
            CacheConfig::Lru {
                capacity: 64,
                ttl: None,
                inputs: DEFAULT_INPUT_VARIANTS,
            }
        );
        assert_eq!(CacheConfig::parse(&no_ttl.label()).unwrap(), no_ttl);
        assert_eq!(CacheConfig::default(), CacheConfig::Off);
        assert!(CacheConfig::parse(DEFAULT_CACHE_SPEC).is_ok());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "lru",
            "lru:",
            "lru:0",
            "lru:abc",
            "lru:4,ttl=0",
            "lru:4,ttl=x",
            "lru:4,inputs=0",
            "lru:4,depth=2",
            "lru:4,ttl",
            "off:1",
            "arc:16",
        ] {
            assert!(CacheConfig::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn content_keys_separate_functions_and_inputs() {
        let a = content_key(0, 0);
        assert_ne!(a, content_key(1, 0), "function identity is part of the key");
        assert_ne!(a, content_key(0, 1), "input bytes are part of the key");
        assert_eq!(a, content_key(0, 0), "keys are pure");
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache: ResultCache<u32> = ResultCache::new(2, None);
        cache.insert(1, 10, 0);
        cache.insert(2, 20, 1);
        assert_eq!(cache.lookup(1, 2), Some(&10)); // 1 now most recent
        cache.insert(3, 30, 3); // evicts 2
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(2, 4).is_none());
        assert_eq!(cache.lookup(1, 5), Some(&10));
        assert_eq!(cache.lookup(3, 6), Some(&30));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn ttl_expires_lazily_and_refreshes_on_insert() {
        let mut cache: ResultCache<&str> = ResultCache::new(4, Some(100));
        cache.insert(7, "old", 0);
        assert_eq!(
            cache.lookup(7, 100),
            Some(&"old"),
            "exactly at ttl still hits"
        );
        assert!(cache.lookup(7, 101).is_none(), "past ttl expires");
        assert_eq!(cache.stats().expirations, 1);
        cache.insert(7, "new", 200);
        assert_eq!(
            cache.lookup(7, 290),
            Some(&"new"),
            "insert resets the clock"
        );
    }

    #[test]
    fn slot_reuse_keeps_the_map_and_list_consistent() {
        let mut cache: ResultCache<u64> = ResultCache::new(3, Some(10));
        for round in 0u64..50 {
            cache.insert(round % 5, round, round);
            let _ = cache.lookup((round + 2) % 5, round);
        }
        assert!(cache.len() <= 3);
        let stats = cache.stats();
        assert_eq!(stats.insertions, 50);
        assert!(stats.evictions > 0);
        // Every surviving key must still resolve through the map.
        let survivors: Vec<u64> = (0..5)
            .filter_map(|k| cache.lookup(k, 49).copied())
            .collect();
        assert!(!survivors.is_empty());
    }

    #[test]
    fn coalesce_table_round_trip() {
        let mut table: CoalesceTable<u32> = CoalesceTable::new();
        assert!(table.try_lead(1, 7));
        assert!(!table.try_lead(1, 8));
        assert_eq!(table.leader(1), Some(7));
        assert_eq!(table.leader(2), None);
        table.follow(1, 8);
        assert_eq!(table.in_flight(), 1);
        assert_eq!(table.complete(1), vec![8]);
        assert_eq!(table.complete(1), Vec::<u32>::new());
        assert_eq!(table.in_flight(), 0);
    }

    #[test]
    fn hit_rate_counts_followers_as_served() {
        let stats = CacheStats {
            hits: 3,
            misses: 5,
            coalesced: 2,
            ..CacheStats::default()
        };
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
