//! Open-loop (arrival-driven) simulation of the MicroFaaS cluster — the
//! paper's §IV-D mechanism taken literally: invocations *arrive* over
//! time, the orchestration plane places each one on a worker queue, and
//! workers power on and off as their queues fill and drain.
//!
//! The closed-loop simulator in [`crate::micro`] measures saturated
//! capacity; this module measures what the paper's Fig. 5 argues about —
//! how cluster power tracks offered load — plus the latency cost of
//! powering nodes down (a cold boot in front of a job).
//!
//! Placement and power policy are pluggable through `microfaas-sched`
//! (see `docs/SCHEDULING.md`): [`OpenLoopConfig::scheduler`] picks the
//! worker queue per arrival and [`OpenLoopConfig::governor`] decides
//! what a drained worker does. The historical open-loop policies
//! (`RandomStatic` — formerly `RandomQueue` — `LeastLoaded`, and
//! `PowerAware`) under the default [`GovernorKind::RebootPerJob`]
//! behave bit-identically to the pre-subsystem code.

use std::collections::VecDeque;

use microfaas_energy::attribution::{Attributor, EnergyLedger, IdlePolicy};
use microfaas_energy::EnergyMeter;
use microfaas_hw::gpio::{PowerAction, PowerController};
use microfaas_hw::sbc::{SbcNode, SbcState};
use microfaas_sched::{
    BudgetDecision, DrainAction, GovernorKind, NodeView, PlacementKind, PolicyEngine,
};
use microfaas_sim::faults::FaultKind;
use microfaas_sim::telemetry::{TelemetryConfig, TelemetrySeries};
use microfaas_sim::trace::{Observer, TraceEvent, TraceObserver, TypedObserver, WorkerState};
use microfaas_sim::{
    CounterId, EventId, EventQueue, HistogramId, MetricsRegistry, OnlineStats, QuantileSketch, Rng,
    Samples, SimDuration, SimTime, TimeWeighted,
};
use microfaas_workloads::calibration::{service_time, WorkerPlatform};
use microfaas_workloads::FunctionId;

use crate::cache::{content_key, CacheConfig, CoalesceTable, ResultCache};
use crate::config::Jitter;
use crate::micro::{SchedMetrics, EXEC_BUCKETS};
use crate::monitor::FlightRecorder;
use crate::recovery::FaultsConfig;

pub use crate::arrivals::ArrivalProcess;
use crate::arrivals::{
    ArrivalState, FunctionPicker, Popularity, TenantClass, TenantSummary, TenantTracker,
};

/// How the orchestration plane picks a worker queue for a new job.
///
/// Since the scheduling subsystem landed this is the full
/// [`PlacementKind`] family from `microfaas-sched`. The historical
/// open-loop policies map onto it: `RandomQueue` is now
/// [`PlacementKind::RandomStatic`] (same uniform draw, from the same
/// simulation-RNG site), and `LeastLoaded` / `PowerAware` keep their
/// names and exact picks. The alias keeps the old type name compiling.
pub type SchedulerPolicy = PlacementKind;

/// Configuration of an open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Worker (SBC) count.
    pub workers: usize,
    /// RNG seed.
    pub seed: u64,
    /// How long arrivals keep coming (the run then drains).
    pub duration: SimDuration,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Placement policy.
    pub scheduler: SchedulerPolicy,
    /// What a drained worker does with its power state. The default
    /// [`GovernorKind::RebootPerJob`] gates nodes off the moment they
    /// drain (the paper's policy); the alternatives hold nodes at
    /// 0.128 W standby to absorb the next arrival without the 1.51 s
    /// boot — the latency-energy trade `policy_sweep` charts.
    pub governor: GovernorKind,
    /// Service-time jitter.
    pub jitter: Jitter,
    /// Functions drawn per arrival, weighted by [`OpenLoopConfig::popularity`].
    pub functions: Vec<FunctionId>,
    /// How arrivals distribute over [`OpenLoopConfig::functions`]. The
    /// default [`Popularity::Uniform`] reproduces the historical draw
    /// exactly; the skewed distributions model the Azure-style few-hot
    /// functions / long-cold-tail mix (see `docs/WORKLOADS.md`).
    pub popularity: Popularity,
    /// Multi-tenant request classes with per-class SLO targets. Empty
    /// (the default) runs single-tenant, consumes no extra RNG draws,
    /// and leaves [`OpenLoopRun::tenants`] empty.
    pub tenants: Vec<TenantClass>,
    /// Fault plan; the open-loop simulator honours **scheduled node
    /// crashes** only (the probabilistic kinds are a closed-loop
    /// concern) and [`run_open_loop_conventional`] ignores faults
    /// entirely. A crash lands only if the node is executing at that
    /// instant — a powered-off node has nothing to kill.
    pub faults: FaultsConfig,
    /// Content-addressed result cache plus in-flight coalescing (see
    /// `docs/CACHING.md`). The default [`CacheConfig::Off`] draws no
    /// extra RNG and emits no cache telemetry, keeping runs
    /// byte-identical to pre-cache builds; any LRU spec turns repeat
    /// invocations into zero-boot, zero-exec completions.
    pub cache: CacheConfig,
}

impl OpenLoopConfig {
    /// The paper's arrangement: 10 workers, random placement, jobs
    /// arriving every second.
    pub fn paper_arrangement(jobs_per_tick: usize, duration: SimDuration, seed: u64) -> Self {
        OpenLoopConfig {
            workers: 10,
            seed,
            duration,
            arrival: ArrivalProcess::EverySecond { jobs_per_tick },
            scheduler: PlacementKind::RandomStatic,
            governor: GovernorKind::RebootPerJob,
            jitter: Jitter::default_run_to_run(),
            functions: FunctionId::ALL.to_vec(),
            popularity: Popularity::Uniform,
            tenants: Vec::new(),
            faults: FaultsConfig::none(),
            cache: CacheConfig::Off,
        }
    }
}

/// Results of an open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopRun {
    /// Jobs completed.
    pub completed: u64,
    /// Mean end-to-end latency (arrival → completion), seconds.
    pub mean_latency_s: f64,
    /// 95th-percentile end-to-end latency, seconds.
    pub p95_latency_s: f64,
    /// Time-averaged cluster power over the arrival window, watts.
    pub mean_power_w: f64,
    /// Energy per completed function, joules.
    pub joules_per_function: f64,
    /// Time-averaged number of powered-on workers.
    pub mean_powered_on: f64,
    /// Offered load that actually arrived, jobs per second.
    pub offered_per_second: f64,
    /// Total power-on actuations (GPIO wear; cold boots paid).
    pub power_cycles: u64,
    /// Scheduled crashes that actually landed on an executing node.
    pub faults_injected: u64,
    /// Per-tenant completions, latency, and SLO attainment, in
    /// [`OpenLoopConfig::tenants`] order. Empty when no tenant classes
    /// were configured.
    pub tenants: Vec<TenantSummary>,
    /// Completions served straight from the result cache (zero boot,
    /// exec, and energy). Always 0 with [`CacheConfig::Off`].
    pub cache_hits: u64,
    /// Cache lookups that missed and executed normally.
    pub cache_misses: u64,
    /// Completions that coalesced onto an in-flight identical invoke.
    pub cache_coalesced: u64,
}

/// Relative error of the streaming path's p95 estimate — the
/// [`QuantileSketch`] guarantee. The streaming mean is exact (Welford),
/// so only the quantile carries this tolerance.
pub const STREAMING_QUANTILE_EPSILON: f64 = 0.01;

/// One completed invocation, offered to a [`RunSink`] the instant the
/// job finishes. This is the streaming path's per-job record: a small
/// `Copy` value built on the stack, never stored by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Arrival ordinal (1-based), the job id used in trace events.
    pub job: u64,
    /// The function that ran.
    pub function: FunctionId,
    /// Worker that executed the invocation.
    pub worker: usize,
    /// When the invocation arrived at the orchestration plane.
    pub arrived: SimTime,
    /// When the invocation completed (response plus lumped overhead).
    pub finished: SimTime,
    /// Execution time on the worker — excludes queueing, boot, and
    /// overhead.
    pub exec: SimDuration,
    /// Index into [`OpenLoopConfig::tenants`]; `0` when no tenant
    /// classes are configured.
    pub tenant: u16,
}

impl Completion {
    /// End-to-end latency (arrival → completion), seconds.
    pub fn latency_s(&self) -> f64 {
        self.finished.duration_since(self.arrived).as_secs_f64()
    }
}

/// Streaming observer of per-job completions, for callers that want
/// per-job data from a [`run_open_loop_streaming`] run without the
/// engine materializing it: custom histograms, CSV writers, online
/// SLO monitors. Called in completion order, which is simulation-time
/// order.
pub trait RunSink {
    /// Called exactly once per completed invocation.
    fn on_completion(&mut self, completion: &Completion);
}

/// The sink that drops every observation — the streaming run then
/// holds only O(workers) state regardless of job count.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl RunSink for NullSink {
    fn on_completion(&mut self, _completion: &Completion) {}
}

/// How the event loop folds per-job latencies into the run's two
/// latency aggregates. The exact impl ([`Samples`]) materializes every
/// observation; the streaming impl folds online in O(1) memory.
trait LatencyAccum {
    fn record(&mut self, seconds: f64);
    /// `(mean, p95)` in seconds; `0.0` when nothing completed.
    fn finish(&mut self) -> (f64, f64);
}

impl LatencyAccum for Samples {
    fn record(&mut self, seconds: f64) {
        Samples::record(self, seconds);
    }

    fn finish(&mut self) -> (f64, f64) {
        (
            self.mean().unwrap_or(0.0),
            self.percentile(95.0).unwrap_or(0.0),
        )
    }
}

/// O(1)-memory accumulator: Welford mean plus a DDSketch-style p95.
struct StreamingLatency {
    stats: OnlineStats,
    sketch: QuantileSketch,
}

impl StreamingLatency {
    fn new() -> Self {
        StreamingLatency {
            stats: OnlineStats::new(),
            sketch: QuantileSketch::with_relative_error(STREAMING_QUANTILE_EPSILON),
        }
    }
}

impl LatencyAccum for StreamingLatency {
    fn record(&mut self, seconds: f64) {
        self.stats.record(seconds);
        self.sketch.record(seconds);
    }

    fn finish(&mut self) -> (f64, f64) {
        if self.stats.count() == 0 {
            return (0.0, 0.0);
        }
        (self.stats.mean(), self.sketch.quantile(95.0).unwrap_or(0.0))
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival,
    PowerEffective(usize),
    BootDone(usize),
    ExecDone(usize),
    JobDone(usize),
    Crash(usize),
    Recover(usize),
    /// A standby worker's governor idle window elapsed; it may gate off.
    IdleGate(usize),
    /// An [`EnergyBudget`](GovernorKind::EnergyBudget) deferral elapsed:
    /// the oldest parked job re-enters placement unconditionally.
    Release,
}

#[derive(Debug, Clone, Copy)]
struct QueuedJob {
    /// Arrival ordinal, used as the job id in trace events.
    id: u64,
    function: FunctionId,
    arrived: SimTime,
    /// Tenant-class index; 0 when no classes are configured.
    tenant: u16,
    /// Content-cache key; 0 (and never read) when the cache is off.
    key: u64,
    /// Execution-time multiplier applied by an
    /// [`EnergyBudget`](GovernorKind::EnergyBudget) throttle action;
    /// `1.0` everywhere else (exact under IEEE-754, so the multiply
    /// cannot perturb legacy bit-compatibility).
    throttle: f64,
}

struct Worker {
    node: SbcNode,
    queue: VecDeque<QueuedJob>,
    /// Set between the GPIO press and BootDone so the scheduler can see
    /// "waking" nodes as powered.
    waking: bool,
    /// `(job, exec, started)` for the in-flight invocation.
    current: Option<(QueuedJob, SimDuration, SimTime)>,
    /// The invocation's next lifecycle event (ExecDone or JobDone),
    /// cancelled when an injected crash interrupts it.
    pending: Option<EventId>,
    /// The governor's pending IdleGate event, cancelled when a job
    /// start pre-empts the idle window.
    gate: Option<EventId>,
}

/// Per-run metric handles for the open-loop simulation, prefixed `open_`.
struct OpenMetrics {
    jobs_arrived: CounterId,
    jobs_completed: CounterId,
    exec_seconds: HistogramId,
    latency_seconds: HistogramId,
}

impl OpenMetrics {
    fn register(metrics: &mut MetricsRegistry) -> Self {
        OpenMetrics {
            jobs_arrived: metrics.counter("open_jobs_arrived_total"),
            jobs_completed: metrics.counter("open_jobs_completed_total"),
            exec_seconds: metrics.histogram("open_exec_seconds", &EXEC_BUCKETS),
            latency_seconds: metrics.histogram(
                "open_latency_seconds",
                &[0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0],
            ),
        }
    }
}

impl Worker {
    fn is_powered(&self) -> bool {
        self.waking || self.node.state() != SbcState::Off
    }

    fn backlog(&self) -> usize {
        self.queue.len() + usize::from(self.current.is_some())
    }

    /// The placement-policy view of this worker. `load` is the backlog
    /// count (the open loop does not know function costs at placement
    /// time), which makes `LeastLoaded` pick exactly the historical
    /// min-backlog queue.
    fn view(&self) -> NodeView {
        NodeView {
            queued: self.queue.len(),
            busy: self.current.is_some(),
            powered: self.is_powered(),
            load: self.backlog() as f64,
        }
    }
}

/// Runs the open-loop simulation.
///
/// # Panics
///
/// Panics if `workers` is zero, `functions` is empty, or the arrival
/// process is non-positive.
pub fn run_open_loop(config: &OpenLoopConfig) -> OpenLoopRun {
    run_open_loop_with(config, &mut Observer::disabled())
}

/// Runs the open-loop simulation while reporting trace events and
/// `open_*` metrics into `observer`. [`run_open_loop`] is this entry
/// point with [`Observer::disabled`]; results are bit-identical either
/// way.
///
/// # Examples
///
/// ```
/// use microfaas::openloop::{run_open_loop_with, OpenLoopConfig};
/// use microfaas_sim::trace::{Observer, TraceBuffer};
/// use microfaas_sim::SimDuration;
///
/// let config = OpenLoopConfig::paper_arrangement(2, SimDuration::from_secs(30), 42);
/// let mut trace = TraceBuffer::new(65_536);
/// let run = run_open_loop_with(&config, &mut Observer::tracing(&mut trace));
/// let completions = trace
///     .iter()
///     .filter(|r| r.event.kind() == "job_completed")
///     .count() as u64;
/// assert_eq!(completions, run.completed);
/// ```
pub fn run_open_loop_with(config: &OpenLoopConfig, observer: &mut Observer<'_>) -> OpenLoopRun {
    run_open_loop_core(
        config,
        observer,
        Samples::new(),
        &mut NullSink,
        budget_attributor(config),
    )
    .0
}

/// Runs the open-loop simulation with **energy attribution** enabled:
/// alongside the usual [`OpenLoopRun`], returns an [`EnergyLedger`]
/// assigning every completed invocation an exact joule vector over the
/// five lifecycle phases, with leftover idle/standby energy apportioned
/// per `idle_policy`. Attribution is pure bookkeeping — it consumes no
/// RNG draws and perturbs nothing, so the run agrees bit-for-bit with
/// [`run_open_loop`] on the same config.
///
/// # Examples
///
/// ```
/// use microfaas::openloop::{run_open_loop_attributed, OpenLoopConfig};
/// use microfaas_energy::attribution::IdlePolicy;
/// use microfaas_sim::SimDuration;
///
/// let config = OpenLoopConfig::paper_arrangement(2, SimDuration::from_secs(60), 42);
/// let (run, ledger) = run_open_loop_attributed(&config, IdlePolicy::Equal);
/// assert!(ledger.conserves(), "attributed + idle must equal the meter");
/// let joules: f64 = ledger.total_joules();
/// assert!((joules - run.joules_per_function * run.completed as f64).abs() < 1e-6 * joules);
/// ```
///
/// # Panics
///
/// As [`run_open_loop`].
pub fn run_open_loop_attributed(
    config: &OpenLoopConfig,
    idle_policy: IdlePolicy,
) -> (OpenLoopRun, EnergyLedger) {
    let (run, ledger, _end) = run_open_loop_core(
        config,
        &mut Observer::disabled(),
        Samples::new(),
        &mut NullSink,
        Some(make_attributor(config, idle_policy)),
    );
    (run, ledger.expect("attributor was supplied"))
}

/// [`run_open_loop_attributed`] on the streaming results path: O(1)
/// latency aggregates, every completion offered to `sink`, and the
/// ledger's integer-µJ arithmetic untouched — conservation holds
/// bit-exactly on this path too.
///
/// # Panics
///
/// As [`run_open_loop`].
pub fn run_open_loop_streaming_attributed<S: RunSink>(
    config: &OpenLoopConfig,
    sink: &mut S,
    idle_policy: IdlePolicy,
) -> (OpenLoopRun, EnergyLedger) {
    let (run, ledger, _end) = run_open_loop_core(
        config,
        &mut Observer::disabled(),
        StreamingLatency::new(),
        sink,
        Some(make_attributor(config, idle_policy)),
    );
    (run, ledger.expect("attributor was supplied"))
}

/// Builds the attributor the [`GovernorKind::EnergyBudget`] control
/// loop needs even when the caller did not ask for a ledger: budget
/// charging requires exact per-job joules. Every other governor runs
/// without one (`None`), keeping the legacy paths untouched.
fn budget_attributor(config: &OpenLoopConfig) -> Option<Attributor> {
    matches!(config.governor, GovernorKind::EnergyBudget { .. })
        .then(|| make_attributor(config, IdlePolicy::None))
}

/// One attributor per run: a function row per [`FunctionId`] (so row
/// index equals [`FunctionId::index`]) and a tenant row per configured
/// class, or a single `"all"` row when the run is single-tenant.
fn make_attributor(config: &OpenLoopConfig, idle_policy: IdlePolicy) -> Attributor {
    let functions = FunctionId::ALL
        .iter()
        .map(|f| f.name().to_string())
        .collect();
    let tenants = if config.tenants.is_empty() {
        vec!["all".to_string()]
    } else {
        config.tenants.iter().map(|t| t.name.clone()).collect()
    };
    Attributor::new(idle_policy, functions, tenants)
}

/// Runs the open-loop simulation on the **streaming** results path:
/// per-job latencies fold into O(1)-memory online aggregates (a Welford
/// mean plus a DDSketch-style quantile sketch for p95, within
/// [`STREAMING_QUANTILE_EPSILON`] relative error) instead of a
/// materialized per-job vector, and every completion is offered to
/// `sink` the instant it happens. Everything else — arrivals, RNG
/// draws, placement, power accounting — is the same event loop as
/// [`run_open_loop`], so `completed`, `mean_power_w`, `power_cycles`,
/// and the rest agree exactly; only the two latency aggregates differ
/// (the mean at f64 rounding, the p95 within the sketch's guarantee).
///
/// This is the entry point for million-job capacity runs — memory
/// stays bounded by fleet size and in-flight backlog, not completed-job
/// count. Pass [`NullSink`] to drop per-job observations entirely, or
/// a custom [`RunSink`] to fold them yourself. See `docs/SCALING.md`
/// for the 10M-job recipe.
///
/// # Examples
///
/// ```
/// use microfaas::openloop::{run_open_loop, run_open_loop_streaming, NullSink, OpenLoopConfig};
/// use microfaas_sim::SimDuration;
///
/// let config = OpenLoopConfig::paper_arrangement(2, SimDuration::from_secs(30), 42);
/// let exact = run_open_loop(&config);
/// let streamed = run_open_loop_streaming(&config, &mut NullSink);
/// assert_eq!(streamed.completed, exact.completed);
/// assert_eq!(streamed.mean_power_w, exact.mean_power_w);
/// assert_eq!(streamed.power_cycles, exact.power_cycles);
/// ```
///
/// # Panics
///
/// As [`run_open_loop`].
pub fn run_open_loop_streaming<S: RunSink>(config: &OpenLoopConfig, sink: &mut S) -> OpenLoopRun {
    run_open_loop_core(
        config,
        &mut Observer::disabled(),
        StreamingLatency::new(),
        sink,
        budget_attributor(config),
    )
    .0
}

/// [`run_open_loop`] with the **flight recorder** attached: alongside
/// the usual aggregates, returns a [`TelemetrySeries`] of tumbling
/// windows (throughput, latency quantiles, queue depth, occupancy,
/// power, energy, cache and fault counts, per-tenant SLO attainment)
/// over the whole run. Telemetry is strictly an observer — it consumes
/// no RNG draws — so the [`OpenLoopRun`] agrees bit-for-bit with
/// [`run_open_loop`] on the same config. See `docs/MONITORING.md`.
///
/// # Panics
///
/// As [`run_open_loop`], plus if `telemetry` is invalid.
pub fn run_open_loop_monitored(
    config: &OpenLoopConfig,
    telemetry: &TelemetryConfig,
) -> (OpenLoopRun, TelemetrySeries) {
    let mut recorder = FlightRecorder::new(telemetry, &config.tenants);
    let (events, mut tap) = recorder.taps();
    let (run, _ledger, end) = run_open_loop_core(
        config,
        &mut TypedObserver::new(events),
        Samples::new(),
        &mut tap,
        budget_attributor(config),
    );
    (run, recorder.into_series(end))
}

/// [`run_open_loop_monitored`] on the **streaming** results path: O(1)
/// latency aggregates plus the windowed [`TelemetrySeries`]. This is
/// the `monitor` CLI's engine — windows stay bounded
/// ([`TelemetryConfig::max_windows`]) no matter how many jobs run.
///
/// # Panics
///
/// As [`run_open_loop`], plus if `telemetry` is invalid.
pub fn run_open_loop_monitored_streaming(
    config: &OpenLoopConfig,
    telemetry: &TelemetryConfig,
) -> (OpenLoopRun, TelemetrySeries) {
    let mut recorder = FlightRecorder::new(telemetry, &config.tenants);
    let (events, mut tap) = recorder.taps();
    let (run, _ledger, end) = run_open_loop_core(
        config,
        &mut TypedObserver::new(events),
        StreamingLatency::new(),
        &mut tap,
        budget_attributor(config),
    );
    (run, recorder.into_series(end))
}

/// [`run_open_loop_attributed`] with the flight recorder attached: the
/// exact per-job [`EnergyLedger`] and the windowed [`TelemetrySeries`]
/// from one run. The ledger's integer-µJ conservation argument is
/// untouched — telemetry integrates its own f64 power curve and never
/// feeds back.
///
/// # Panics
///
/// As [`run_open_loop`], plus if `telemetry` is invalid.
pub fn run_open_loop_monitored_attributed(
    config: &OpenLoopConfig,
    idle_policy: IdlePolicy,
    telemetry: &TelemetryConfig,
) -> (OpenLoopRun, EnergyLedger, TelemetrySeries) {
    let mut recorder = FlightRecorder::new(telemetry, &config.tenants);
    let (events, mut tap) = recorder.taps();
    let (run, ledger, end) = run_open_loop_core(
        config,
        &mut TypedObserver::new(events),
        StreamingLatency::new(),
        &mut tap,
        Some(make_attributor(config, idle_policy)),
    );
    (
        run,
        ledger.expect("attributor was supplied"),
        recorder.into_series(end),
    )
}

fn run_open_loop_core<L: LatencyAccum, S: RunSink, O: TraceObserver>(
    config: &OpenLoopConfig,
    observer: &mut O,
    mut latencies: L,
    sink: &mut S,
    mut attr: Option<Attributor>,
) -> (OpenLoopRun, Option<EnergyLedger>, SimTime) {
    assert!(config.workers > 0, "cluster needs at least one worker");
    assert!(!config.functions.is_empty(), "need at least one function");
    config.arrival.validate();
    // Compiles the popularity skew (validating it) and the tenant mix.
    // With the defaults both are draw-for-draw identical to the
    // historical code: one uniform index per arrival, no tenant draw.
    let picker = FunctionPicker::new(&config.popularity, config.functions.len());
    let mut tenant_tracker = TenantTracker::new(&config.tenants);
    let mut arrival_state = ArrivalState::default();
    let handles = observer.metrics().map(OpenMetrics::register);

    // The scheduling subsystem: placement + governor. The open loop's
    // historical policies (RandomStatic/LeastLoaded/PowerAware) under
    // the default governor are the legacy surface — all subsystem
    // telemetry stays silent there so traces and expositions remain
    // byte-identical to the pre-subsystem code.
    let mut policy = PolicyEngine::new(config.scheduler, config.governor, config.seed);
    let legacy_placement = matches!(
        config.scheduler,
        PlacementKind::RandomStatic | PlacementKind::LeastLoaded | PlacementKind::PowerAware
    );
    let sched_active = !(legacy_placement && config.governor == GovernorKind::RebootPerJob);
    let sched_handles = if sched_active {
        observer.metrics().map(SchedMetrics::register)
    } else {
        None
    };
    let mut views: Vec<NodeView> = Vec::with_capacity(config.workers);
    // Governors that never read the booted-idle census (every one but
    // WarmPool) let the drain and idle-gate paths skip their O(workers)
    // fleet scans — the placeholder they get instead is ignored.
    let wants_census = policy.wants_idle_census();

    // The result cache and its in-flight coalescing table. With the
    // default `Off` this is `None`, every cache branch below is dead,
    // and no extra RNG draw happens — the bit-compat goldens pin that.
    config.cache.try_validate().expect("invalid cache config");
    let mut cache: Option<ResultCache<()>> = ResultCache::from_config(&config.cache);
    let mut coalesce: CoalesceTable<QueuedJob> = CoalesceTable::new();
    let input_variants = config.cache.input_variants() as usize;

    let mut rng = Rng::new(config.seed);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut gpio = PowerController::new(config.workers);
    let mut meter = EnergyMeter::new(SimTime::ZERO);
    let channels: Vec<_> = (0..config.workers)
        .map(|w| meter.add_channel(format!("sbc-{w}")))
        .collect();
    if let Some(a) = attr.as_mut() {
        // Attribution channels mirror the meter's: index == worker.
        for _ in 0..config.workers {
            a.add_channel();
        }
    }
    // The EnergyBudget governor's admission loop; every other governor
    // answers `false` and the budget branches below are dead.
    let budget_active = policy.budget_active();
    debug_assert!(
        !budget_active || attr.is_some(),
        "budget charging requires per-job attribution"
    );
    // Jobs parked by a BudgetDecision::Defer, released FIFO by
    // Event::Release.
    let mut deferred: VecDeque<QueuedJob> = VecDeque::new();
    let mut workers: Vec<Worker> = (0..config.workers)
        .map(|w| Worker {
            node: SbcNode::new(w, SimTime::ZERO),
            queue: VecDeque::new(),
            waking: false,
            current: None,
            pending: None,
            gate: None,
        })
        .collect();

    let mut powered_on = TimeWeighted::new(SimTime::ZERO, 0.0);
    let mut completed: u64 = 0;
    let mut arrived: u64 = 0;
    let mut faults_injected: u64 = 0;
    let horizon = SimTime::ZERO + config.duration;

    let injector = microfaas_sim::faults::FaultInjector::new(&config.faults.plan);
    for (at, w) in injector.scheduled_crashes() {
        if *w < config.workers {
            queue.schedule(*at, Event::Crash(*w));
        }
    }
    queue.schedule(SimTime::ZERO, Event::Arrival);

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::Arrival => {
                if now >= horizon {
                    continue; // arrivals stop; drain what is queued
                }
                for _ in 0..config.arrival.batch() {
                    arrived += 1;
                    let function = config.functions[picker.pick(&mut rng)];
                    let mut job = QueuedJob {
                        id: arrived,
                        function,
                        arrived: now,
                        tenant: tenant_tracker.draw(&mut rng),
                        key: 0,
                        throttle: 1.0,
                    };
                    observer.emit(
                        now,
                        TraceEvent::JobEnqueued {
                            job: job.id,
                            function: function.name(),
                        },
                    );
                    if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
                        metrics.inc(h.jobs_arrived);
                    }
                    if let Some(cache) = cache.as_mut() {
                        // One extra sim-stream draw picks the canonical
                        // input this invocation carries.
                        job.key = content_key(function.index(), rng.index(input_variants) as u64);
                        if cache.lookup(job.key, now.as_micros()).is_some() {
                            // Zero-energy fast path: the stored result is
                            // served by the orchestration plane (worker 0
                            // by convention) with no queue, boot, or exec.
                            observer.emit(
                                now,
                                TraceEvent::CacheHit {
                                    job: job.id,
                                    function: function.name(),
                                    key: job.key,
                                },
                            );
                            completed += 1;
                            latencies.record(0.0);
                            tenant_tracker.record(job.tenant, 0.0);
                            if let Some(a) = attr.as_mut() {
                                // A hit costs zero joules but still
                                // counts as a completion for the
                                // usage-weighted idle split.
                                a.record_free(
                                    usize::from(job.function.index()),
                                    job.tenant as usize,
                                );
                            }
                            sink.on_completion(&Completion {
                                job: job.id,
                                function: job.function,
                                worker: 0,
                                arrived: job.arrived,
                                finished: now,
                                exec: SimDuration::ZERO,
                                tenant: job.tenant,
                            });
                            observer.emit(
                                now,
                                TraceEvent::JobCompleted {
                                    job: job.id,
                                    function: function.name(),
                                    worker: 0,
                                    exec: SimDuration::ZERO,
                                    overhead: SimDuration::ZERO,
                                },
                            );
                            if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref())
                            {
                                metrics.inc(h.jobs_completed);
                                metrics.observe(h.exec_seconds, 0.0);
                                metrics.observe(h.latency_seconds, 0.0);
                            }
                            continue;
                        }
                        if !coalesce.try_lead(job.key, job.id) {
                            // An identical invoke is already executing:
                            // park this one behind its leader.
                            cache.note_coalesced();
                            let leader = coalesce.leader(job.key).expect("key in flight");
                            observer.emit(
                                now,
                                TraceEvent::Coalesced {
                                    job: job.id,
                                    leader,
                                    function: function.name(),
                                },
                            );
                            coalesce.follow(job.key, job);
                            continue;
                        }
                        observer.emit(
                            now,
                            TraceEvent::CacheMiss {
                                job: job.id,
                                function: function.name(),
                                key: job.key,
                            },
                        );
                    }
                    if budget_active {
                        // Admission control at the orchestration plane's
                        // front door: the tenant's token bucket decides
                        // whether this invocation runs, waits, or runs
                        // slowly. Cache hits above bypass it — a served
                        // result costs no joules.
                        match policy.budget_admit(job.tenant, now) {
                            BudgetDecision::Admit => {}
                            BudgetDecision::Shed => {
                                observer.emit(
                                    now,
                                    TraceEvent::BudgetAction {
                                        tenant: job.tenant,
                                        action: "shed",
                                    },
                                );
                                // Release any coalesce leadership the
                                // cache block just took, so a later
                                // identical invoke can lead.
                                if cache.is_some() {
                                    let _ = coalesce.complete(job.key);
                                }
                                continue;
                            }
                            BudgetDecision::Defer(delay) => {
                                observer.emit(
                                    now,
                                    TraceEvent::BudgetAction {
                                        tenant: job.tenant,
                                        action: "defer",
                                    },
                                );
                                // Coalesce leadership (if any) stays with
                                // the deferred job; followers drain when
                                // it eventually completes.
                                deferred.push_back(job);
                                queue.schedule(now + delay, Event::Release);
                                continue;
                            }
                            BudgetDecision::Throttle(factor) => {
                                observer.emit(
                                    now,
                                    TraceEvent::BudgetAction {
                                        tenant: job.tenant,
                                        action: "throttle",
                                    },
                                );
                                job.throttle = factor;
                            }
                        }
                    }
                    dispatch_job(
                        job,
                        now,
                        config,
                        &mut policy,
                        cache.is_some(),
                        sched_active,
                        &mut views,
                        &mut workers,
                        &mut powered_on,
                        &mut gpio,
                        &mut queue,
                        &mut meter,
                        &channels,
                        &mut rng,
                        observer,
                        &sched_handles,
                        attr.as_mut(),
                    );
                }
                // WarmPool prewarm: wake gated-off nodes until the
                // booted reserve matches the governor's target. Zero for
                // every other governor, so the legacy paths never enter.
                let target = policy.warm_target(config.workers);
                if target > 0 {
                    let mut powered = workers.iter().filter(|x| x.is_powered()).count();
                    for w in 0..config.workers {
                        if powered >= target {
                            break;
                        }
                        if !workers[w].is_powered() {
                            workers[w].waking = true;
                            powered += 1;
                            powered_on.add(now, 1.0);
                            observer.emit(
                                now,
                                TraceEvent::WakeRequested {
                                    worker: w,
                                    reason: "prewarm",
                                },
                            );
                            let effective = gpio.actuate(now, w, PowerAction::On);
                            queue.schedule(effective, Event::PowerEffective(w));
                            observer.emit(
                                now,
                                TraceEvent::GovernorTransition {
                                    worker: w,
                                    action: "prewarm",
                                },
                            );
                            if let (Some(metrics), Some(h)) =
                                (observer.metrics(), sched_handles.as_ref())
                            {
                                metrics.inc(h.governor_transitions);
                            }
                        }
                    }
                }
                let gap = config.arrival.next_gap(now, &mut rng, &mut arrival_state);
                queue.schedule(now + gap, Event::Arrival);
            }
            Event::PowerEffective(w) => {
                workers[w].waking = false;
                workers[w].node.power_on(now).expect("was off");
                let watts = workers[w].node.power().value();
                meter.set_power(now, channels[w], watts);
                if let Some(a) = attr.as_mut() {
                    a.set_power(w, now, watts);
                    a.boot_started(w, now);
                }
                observer.emit(
                    now,
                    TraceEvent::WorkerStateChange {
                        worker: w,
                        state: WorkerState::Booting,
                    },
                );
                observer.emit(now, TraceEvent::PowerSample { worker: w, watts });
                queue.schedule(now + workers[w].node.boot_duration(), Event::BootDone(w));
            }
            Event::BootDone(w) => {
                workers[w].node.boot_complete(now).expect("was booting");
                let watts = workers[w].node.power().value();
                meter.set_power(now, channels[w], watts);
                if let Some(a) = attr.as_mut() {
                    a.set_power(w, now, watts);
                    a.boot_done(w, now);
                }
                observer.emit(
                    now,
                    TraceEvent::WorkerStateChange {
                        worker: w,
                        state: WorkerState::Idle,
                    },
                );
                observer.emit(now, TraceEvent::PowerSample { worker: w, watts });
                if workers[w].queue.is_empty() {
                    // Only a prewarmed node boots to an empty queue (the
                    // legacy policies wake a node exclusively for queued
                    // work): it joins the warm reserve and idles.
                    continue;
                }
                begin_job(
                    w,
                    now,
                    config,
                    &mut workers,
                    &mut queue,
                    &mut meter,
                    &channels,
                    &mut rng,
                    observer,
                    attr.as_mut(),
                );
            }
            Event::ExecDone(w) => {
                let (job, _exec, _started) = workers[w].current.expect("job in flight");
                if let Some(a) = attr.as_mut() {
                    // The draw does not change here, but the phase does:
                    // everything from this instant to JobDone is the
                    // response/overhead window.
                    a.response_started(w, now, job.id);
                }
                // The response leaves the worker here; the lumped
                // overhead that follows is orchestration + network time.
                observer.emit(
                    now,
                    TraceEvent::ResponseSent {
                        job: job.id,
                        function: job.function.name(),
                        worker: w,
                    },
                );
                let overhead = service_time(job.function)
                    .overhead(WorkerPlatform::ArmSbc)
                    .mul_f64(config.jitter.factor(&mut rng));
                workers[w].pending = Some(queue.schedule(now + overhead, Event::JobDone(w)));
            }
            Event::JobDone(w) => {
                workers[w].pending = None;
                let (job, exec, started) = workers[w].current.take().expect("job in flight");
                // Settle the job's joule vector before any power change
                // below, then charge its tenant's budget with the exact
                // figure (picojoules → joules).
                let job_pj = attr.as_mut().map(|a| a.job_finished(w, now, job.id));
                if budget_active {
                    let pj = job_pj.expect("budget runs carry an attributor");
                    if policy.budget_note_energy(job.tenant, pj as f64 / 1e12, now) {
                        observer.emit(now, TraceEvent::BudgetBreach { tenant: job.tenant });
                    }
                }
                completed += 1;
                let latency = now.duration_since(job.arrived);
                latencies.record(latency.as_secs_f64());
                tenant_tracker.record(job.tenant, latency.as_secs_f64());
                sink.on_completion(&Completion {
                    job: job.id,
                    function: job.function,
                    worker: w,
                    arrived: job.arrived,
                    finished: now,
                    exec,
                    tenant: job.tenant,
                });
                observer.emit(
                    now,
                    TraceEvent::JobCompleted {
                        job: job.id,
                        function: job.function.name(),
                        worker: w,
                        exec,
                        overhead: now.duration_since(started + exec),
                    },
                );
                if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
                    metrics.inc(h.jobs_completed);
                    metrics.observe(h.exec_seconds, exec.as_secs_f64());
                    metrics.observe(h.latency_seconds, latency.as_secs_f64());
                }
                if let Some(cache) = cache.as_mut() {
                    // The leader's result commits: store it, then drain
                    // every coalesced follower at this instant. Each
                    // follower pays only its queue wait — zero boot,
                    // exec, overhead, and energy.
                    cache.insert(job.key, (), now.as_micros());
                    for follower in coalesce.complete(job.key) {
                        completed += 1;
                        let wait = now.duration_since(follower.arrived);
                        latencies.record(wait.as_secs_f64());
                        tenant_tracker.record(follower.tenant, wait.as_secs_f64());
                        if let Some(a) = attr.as_mut() {
                            a.record_free(
                                usize::from(follower.function.index()),
                                follower.tenant as usize,
                            );
                        }
                        sink.on_completion(&Completion {
                            job: follower.id,
                            function: follower.function,
                            worker: w,
                            arrived: follower.arrived,
                            finished: now,
                            exec: SimDuration::ZERO,
                            tenant: follower.tenant,
                        });
                        observer.emit(
                            now,
                            TraceEvent::JobCompleted {
                                job: follower.id,
                                function: follower.function.name(),
                                worker: w,
                                exec: SimDuration::ZERO,
                                overhead: SimDuration::ZERO,
                            },
                        );
                        if let (Some(metrics), Some(h)) = (observer.metrics(), handles.as_ref()) {
                            metrics.inc(h.jobs_completed);
                            metrics.observe(h.exec_seconds, 0.0);
                            metrics.observe(h.latency_seconds, wait.as_secs_f64());
                        }
                    }
                }
                if workers[w].queue.is_empty() {
                    // Queue drained: the governor picks the power regime.
                    // RebootPerJob (the default) always answers PowerOff,
                    // keeping the legacy gate-off path byte-identical.
                    let warm_idle = if wants_census {
                        1 + workers
                            .iter()
                            .filter(|x| x.node.state() == SbcState::Idle)
                            .count()
                    } else {
                        1 // never read — the census scan is skipped
                    };
                    match policy.on_drain(now, warm_idle) {
                        DrainAction::PowerOff => {
                            workers[w]
                                .node
                                .finish_job_and_power_off(now)
                                .expect("was executing");
                            powered_on.add(now, -1.0);
                            gpio.actuate(now, w, PowerAction::Off);
                            meter.set_power(now, channels[w], 0.0);
                            if let Some(a) = attr.as_mut() {
                                a.set_power(w, now, 0.0);
                            }
                            observer.emit(
                                now,
                                TraceEvent::WorkerStateChange {
                                    worker: w,
                                    state: WorkerState::Off,
                                },
                            );
                            observer.emit(
                                now,
                                TraceEvent::PowerSample {
                                    worker: w,
                                    watts: 0.0,
                                },
                            );
                        }
                        DrainAction::Standby { idle_timeout } => {
                            // Hold the node booted-idle at standby draw
                            // so the next arrival skips the boot window.
                            workers[w]
                                .node
                                .finish_job_and_standby(now)
                                .expect("was executing");
                            let watts = workers[w].node.power().value();
                            meter.set_power(now, channels[w], watts);
                            if let Some(a) = attr.as_mut() {
                                a.set_power(w, now, watts);
                            }
                            observer.emit(
                                now,
                                TraceEvent::WorkerStateChange {
                                    worker: w,
                                    state: WorkerState::Idle,
                                },
                            );
                            observer.emit(now, TraceEvent::PowerSample { worker: w, watts });
                            observer.emit(
                                now,
                                TraceEvent::GovernorTransition {
                                    worker: w,
                                    action: "standby",
                                },
                            );
                            if let (Some(metrics), Some(h)) =
                                (observer.metrics(), sched_handles.as_ref())
                            {
                                metrics.inc(h.governor_transitions);
                            }
                            if let Some(window) = idle_timeout {
                                workers[w].gate =
                                    Some(queue.schedule(now + window, Event::IdleGate(w)));
                            }
                        }
                    }
                } else if policy.reboot_between_jobs(true) {
                    if let (Some(metrics), Some(h)) = (observer.metrics(), sched_handles.as_ref()) {
                        metrics.inc(h.cold_boots);
                    }
                    workers[w]
                        .node
                        .finish_job_and_reboot(now)
                        .expect("was executing");
                    let watts = workers[w].node.power().value();
                    meter.set_power(now, channels[w], watts);
                    if let Some(a) = attr.as_mut() {
                        a.set_power(w, now, watts);
                        a.boot_started(w, now);
                    }
                    observer.emit(
                        now,
                        TraceEvent::WorkerStateChange {
                            worker: w,
                            state: WorkerState::Rebooting,
                        },
                    );
                    observer.emit(now, TraceEvent::PowerSample { worker: w, watts });
                    queue.schedule(now + workers[w].node.boot_duration(), Event::BootDone(w));
                } else {
                    // Warm continuation: skip the between-jobs reboot
                    // and start the next queued job immediately.
                    if let (Some(metrics), Some(h)) = (observer.metrics(), sched_handles.as_ref()) {
                        metrics.inc(h.warm_hits);
                    }
                    workers[w]
                        .node
                        .finish_job_and_standby(now)
                        .expect("was executing");
                    begin_job(
                        w,
                        now,
                        config,
                        &mut workers,
                        &mut queue,
                        &mut meter,
                        &channels,
                        &mut rng,
                        observer,
                        attr.as_mut(),
                    );
                }
            }
            Event::Crash(w) => {
                // A crash only lands on a node that is actually running
                // an invocation; a gated-off node has nothing to kill.
                if workers[w].node.state() != SbcState::Executing {
                    continue;
                }
                faults_injected += 1;
                observer.emit(
                    now,
                    TraceEvent::FaultInjected {
                        worker: w,
                        fault: FaultKind::Crash.label(),
                    },
                );
                if let Some(pending) = workers[w].pending.take() {
                    queue.cancel(pending);
                }
                // The invocation is re-queued at the front, keeping its
                // original arrival time so the latency metrics absorb
                // the full recovery cost.
                if let Some((job, _, _)) = workers[w].current.take() {
                    if let Some(a) = attr.as_mut() {
                        // The partial joules stay with the job; the
                        // accumulator resumes when it restarts.
                        a.interrupted(w, now, job.id);
                    }
                    workers[w].queue.push_front(job);
                }
                workers[w].node.crash(now).expect("node was executing");
                powered_on.add(now, -1.0);
                meter.set_power(now, channels[w], 0.0);
                if let Some(a) = attr.as_mut() {
                    a.set_power(w, now, 0.0);
                }
                observer.emit(
                    now,
                    TraceEvent::WorkerStateChange {
                        worker: w,
                        state: WorkerState::Crashed,
                    },
                );
                observer.emit(
                    now,
                    TraceEvent::PowerSample {
                        worker: w,
                        watts: 0.0,
                    },
                );
                queue.schedule(now + config.faults.detection_delay, Event::Recover(w));
            }
            Event::Recover(w) => {
                workers[w].node.recover(now).expect("node was crashed");
                powered_on.add(now, 1.0);
                let watts = workers[w].node.power().value();
                meter.set_power(now, channels[w], watts);
                if let Some(a) = attr.as_mut() {
                    a.set_power(w, now, watts);
                    a.boot_started(w, now);
                }
                observer.emit(
                    now,
                    TraceEvent::WorkerStateChange {
                        worker: w,
                        state: WorkerState::Booting,
                    },
                );
                observer.emit(now, TraceEvent::PowerSample { worker: w, watts });
                queue.schedule(now + workers[w].node.boot_duration(), Event::BootDone(w));
            }
            Event::IdleGate(w) => {
                workers[w].gate = None;
                // Stale gates (the node picked up work, crashed, or was
                // already gated off) are dropped silently.
                if workers[w].node.state() != SbcState::Idle {
                    continue;
                }
                let warm_idle = if wants_census {
                    workers
                        .iter()
                        .filter(|x| x.node.state() == SbcState::Idle)
                        .count()
                } else {
                    0 // never read — the census scan is skipped
                };
                if policy.gate_on_idle_expiry(now, warm_idle) {
                    workers[w].node.power_off(now).expect("node was idle");
                    powered_on.add(now, -1.0);
                    gpio.actuate(now, w, PowerAction::Off);
                    meter.set_power(now, channels[w], 0.0);
                    if let Some(a) = attr.as_mut() {
                        a.set_power(w, now, 0.0);
                    }
                    observer.emit(
                        now,
                        TraceEvent::WorkerStateChange {
                            worker: w,
                            state: WorkerState::Off,
                        },
                    );
                    observer.emit(
                        now,
                        TraceEvent::PowerSample {
                            worker: w,
                            watts: 0.0,
                        },
                    );
                    observer.emit(
                        now,
                        TraceEvent::GovernorTransition {
                            worker: w,
                            action: "gate-off",
                        },
                    );
                    if let (Some(metrics), Some(h)) = (observer.metrics(), sched_handles.as_ref()) {
                        metrics.inc(h.governor_transitions);
                    }
                }
            }
            Event::Release => {
                // One Release is scheduled per deferred job, FIFO; the
                // job re-enters placement with no further admission
                // check (the governor already priced the wait).
                if let Some(job) = deferred.pop_front() {
                    dispatch_job(
                        job,
                        now,
                        config,
                        &mut policy,
                        cache.is_some(),
                        sched_active,
                        &mut views,
                        &mut workers,
                        &mut powered_on,
                        &mut gpio,
                        &mut queue,
                        &mut meter,
                        &channels,
                        &mut rng,
                        observer,
                        &sched_handles,
                        attr.as_mut(),
                    );
                }
            }
        }
    }

    let end = queue.now().max(horizon);
    let report = meter.report(end, completed);
    let (mean_latency_s, p95_latency_s) = latencies.finish();
    let cache_stats = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
    let run = OpenLoopRun {
        completed,
        mean_latency_s,
        p95_latency_s,
        mean_power_w: report.average_watts,
        joules_per_function: report.joules_per_function().unwrap_or(f64::NAN),
        mean_powered_on: powered_on.time_average(end),
        offered_per_second: arrived as f64 / config.duration.as_secs_f64(),
        power_cycles: (0..config.workers)
            .map(|w| gpio.power_on_count(w) as u64)
            .sum(),
        faults_injected,
        tenants: tenant_tracker.summaries(),
        cache_hits: cache_stats.hits,
        cache_misses: cache_stats.misses,
        cache_coalesced: cache_stats.coalesced,
    };
    // Gauges come from the finished run so the exposition agrees
    // bit-for-bit with the returned aggregates.
    if let Some(metrics) = observer.metrics() {
        meter.publish_metrics(metrics, "open", end);
        let cycles = metrics.counter("open_power_cycles_total");
        metrics.add(cycles, run.power_cycles);
        let pairs = [
            ("open_mean_latency_seconds", run.mean_latency_s),
            ("open_p95_latency_seconds", run.p95_latency_s),
            ("open_mean_power_watts", run.mean_power_w),
            (
                "open_joules_per_function",
                if run.joules_per_function.is_finite() {
                    run.joules_per_function
                } else {
                    0.0
                },
            ),
            ("open_mean_powered_on", run.mean_powered_on),
            ("open_offered_per_second", run.offered_per_second),
        ];
        for (name, value) in pairs {
            let gauge = metrics.gauge(name);
            metrics.set_gauge(gauge, value);
        }
        // Cache counters only exist when a cache ran: the default
        // exposition must stay byte-identical to pre-cache builds.
        if config.cache.enabled() {
            crate::micro::publish_cache_counters(metrics, "open", &cache_stats);
        }
    }
    // Settle every channel through the common end instant so the
    // ledger's integer total covers exactly the meter's window.
    let ledger = attr.map(|a| a.finalize(end));
    (run, ledger, end)
}

/// Runs the same arrival process against the conventional cluster:
/// `vms` microVMs that are always powered (the host never drops below
/// its 60 W idle floor). The contrast with [`run_open_loop`] is the
/// paper's energy-proportionality argument made dynamic: at low load
/// the conventional J/function explodes while MicroFaaS stays flat.
///
/// # Panics
///
/// Panics if `vms` is zero or the config is invalid per
/// [`run_open_loop`].
pub fn run_open_loop_conventional(config: &OpenLoopConfig, vms: usize) -> OpenLoopRun {
    run_open_loop_conventional_core(
        config,
        vms,
        &mut Observer::disabled(),
        Samples::new(),
        &mut NullSink,
        None,
    )
    .0
}

/// [`run_open_loop_conventional`] on the streaming results path: O(1)
/// latency aggregates and every completion offered to `sink` the
/// instant it happens, exactly as [`run_open_loop_streaming`] does for
/// the MicroFaaS cluster.
///
/// # Panics
///
/// As [`run_open_loop_conventional`].
pub fn run_open_loop_conventional_streaming<S: RunSink>(
    config: &OpenLoopConfig,
    vms: usize,
    sink: &mut S,
) -> OpenLoopRun {
    run_open_loop_conventional_core(
        config,
        vms,
        &mut Observer::disabled(),
        StreamingLatency::new(),
        sink,
        None,
    )
    .0
}

/// [`run_open_loop_conventional`] with the **flight recorder**
/// attached: the same run plus a windowed [`TelemetrySeries`], so the
/// baseline's time-resolved power floor can sit next to MicroFaaS
/// telemetry from [`run_open_loop_monitored_streaming`]. Power samples
/// carry the rack server's single metered channel.
///
/// # Panics
///
/// As [`run_open_loop_conventional`], plus if `telemetry` is invalid.
pub fn run_open_loop_conventional_monitored(
    config: &OpenLoopConfig,
    vms: usize,
    telemetry: &TelemetryConfig,
) -> (OpenLoopRun, TelemetrySeries) {
    let mut recorder = FlightRecorder::new(telemetry, &config.tenants);
    let (events, mut tap) = recorder.taps();
    let (run, _ledger, end) = run_open_loop_conventional_core(
        config,
        vms,
        &mut TypedObserver::new(events),
        StreamingLatency::new(),
        &mut tap,
        None,
    );
    (run, recorder.into_series(end))
}

/// [`run_open_loop_conventional`] with **energy attribution**: the
/// host's single metered channel is split equally among the VMs'
/// concurrently executing jobs at every instant, and the (dominant)
/// idle-floor remainder is apportioned per `idle_policy`. The
/// conventional model has no per-job boot window the attributor can
/// see — VM reboot energy lands on whatever else is running, or on the
/// idle pool — so the `boot_j` column is always zero here. Budgets
/// never apply: this simulator ignores [`OpenLoopConfig::governor`].
///
/// # Panics
///
/// As [`run_open_loop_conventional`].
pub fn run_open_loop_conventional_attributed(
    config: &OpenLoopConfig,
    vms: usize,
    idle_policy: IdlePolicy,
) -> (OpenLoopRun, EnergyLedger) {
    let (run, ledger, _end) = run_open_loop_conventional_core(
        config,
        vms,
        &mut Observer::disabled(),
        Samples::new(),
        &mut NullSink,
        Some(make_attributor(config, idle_policy)),
    );
    (run, ledger.expect("attributor was supplied"))
}

fn run_open_loop_conventional_core<L: LatencyAccum, S: RunSink, O: TraceObserver>(
    config: &OpenLoopConfig,
    vms: usize,
    observer: &mut O,
    mut latencies: L,
    sink: &mut S,
    mut attr: Option<Attributor>,
) -> (OpenLoopRun, Option<EnergyLedger>, SimTime) {
    assert!(vms > 0, "cluster needs at least one VM");
    assert!(!config.functions.is_empty(), "need at least one function");
    config.arrival.validate();
    let picker = FunctionPicker::new(&config.popularity, config.functions.len());
    let mut tenant_tracker = TenantTracker::new(&config.tenants);
    let mut arrival_state = ArrivalState::default();

    let mut rng = Rng::new(config.seed);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut meter = EnergyMeter::new(SimTime::ZERO);
    let mut server = microfaas_hw::RackServer::new(vms, SimTime::ZERO);
    let host = meter.add_channel("rack-server");
    meter.set_power(SimTime::ZERO, host, server.power().value());
    if let Some(a) = attr.as_mut() {
        // One attribution channel for the whole host: concurrent jobs
        // split its draw equally instant by instant.
        a.add_channel();
        a.set_power(0, SimTime::ZERO, server.power().value());
    }
    // The host's one metered channel reports as worker 0; the idle
    // floor draws from the first instant.
    observer.emit(
        SimTime::ZERO,
        TraceEvent::PowerSample {
            worker: 0,
            watts: server.power().value(),
        },
    );

    let mut queues: Vec<VecDeque<QueuedJob>> = vec![VecDeque::new(); vms];
    let mut current: Vec<Option<(QueuedJob, SimDuration, SimTime)>> = vec![None; vms];
    let mut completed: u64 = 0;
    let mut arrived: u64 = 0;
    let horizon = SimTime::ZERO + config.duration;

    // Same cache discipline as the MicroFaaS loop: `Off` means no extra
    // draws and dead branches; hits complete at arrival, followers at
    // their leader's commit.
    config.cache.try_validate().expect("invalid cache config");
    let mut cache: Option<ResultCache<()>> = ResultCache::from_config(&config.cache);
    let mut coalesce: CoalesceTable<QueuedJob> = CoalesceTable::new();
    let input_variants = config.cache.input_variants() as usize;

    queue.schedule(SimTime::ZERO, Event::Arrival);
    while let Some((now, event)) = queue.pop() {
        match event {
            Event::Arrival => {
                if now >= horizon {
                    continue;
                }
                for _ in 0..config.arrival.batch() {
                    arrived += 1;
                    let function = config.functions[picker.pick(&mut rng)];
                    let mut job = QueuedJob {
                        id: arrived,
                        function,
                        arrived: now,
                        tenant: tenant_tracker.draw(&mut rng),
                        key: 0,
                        throttle: 1.0,
                    };
                    observer.emit(
                        now,
                        TraceEvent::JobEnqueued {
                            job: job.id,
                            function: function.name(),
                        },
                    );
                    if let Some(cache) = cache.as_mut() {
                        job.key = content_key(function.index(), rng.index(input_variants) as u64);
                        if cache.lookup(job.key, now.as_micros()).is_some() {
                            observer.emit(
                                now,
                                TraceEvent::CacheHit {
                                    job: job.id,
                                    function: function.name(),
                                    key: job.key,
                                },
                            );
                            completed += 1;
                            latencies.record(0.0);
                            tenant_tracker.record(job.tenant, 0.0);
                            if let Some(a) = attr.as_mut() {
                                a.record_free(
                                    usize::from(job.function.index()),
                                    job.tenant as usize,
                                );
                            }
                            sink.on_completion(&Completion {
                                job: job.id,
                                function: job.function,
                                worker: 0,
                                arrived: job.arrived,
                                finished: now,
                                exec: SimDuration::ZERO,
                                tenant: job.tenant,
                            });
                            observer.emit(
                                now,
                                TraceEvent::JobCompleted {
                                    job: job.id,
                                    function: function.name(),
                                    worker: 0,
                                    exec: SimDuration::ZERO,
                                    overhead: SimDuration::ZERO,
                                },
                            );
                            continue;
                        }
                        if !coalesce.try_lead(job.key, job.id) {
                            cache.note_coalesced();
                            let leader = coalesce.leader(job.key).expect("key in flight");
                            observer.emit(
                                now,
                                TraceEvent::Coalesced {
                                    job: job.id,
                                    leader,
                                    function: function.name(),
                                },
                            );
                            coalesce.follow(job.key, job);
                            continue;
                        }
                        observer.emit(
                            now,
                            TraceEvent::CacheMiss {
                                job: job.id,
                                function: function.name(),
                                key: job.key,
                            },
                        );
                    }
                    // Pick the emptiest VM (work-conserving enough for a
                    // fair comparison; the scheduler study lives on the
                    // MicroFaaS side).
                    let v = (0..vms)
                        .min_by_key(|&v| queues[v].len() + usize::from(current[v].is_some()))
                        .expect("at least one vm");
                    queues[v].push_back(job);
                    if current[v].is_none() && server.vm(v).state() == microfaas_hw::VmState::Idle {
                        let job = queues[v].pop_front().expect("just pushed");
                        vm_start_job(
                            v,
                            job,
                            now,
                            config,
                            &mut server,
                            &mut current,
                            &mut meter,
                            host,
                            &mut queue,
                            &mut rng,
                            observer,
                            attr.as_mut(),
                        );
                    }
                }
                let gap = config.arrival.next_gap(now, &mut rng, &mut arrival_state);
                queue.schedule(now + gap, Event::Arrival);
            }
            Event::ExecDone(v) => {
                let (job, _exec, _started) = current[v].expect("job in flight");
                if let Some(a) = attr.as_mut() {
                    a.response_started(0, now, job.id);
                }
                observer.emit(
                    now,
                    TraceEvent::ResponseSent {
                        job: job.id,
                        function: job.function.name(),
                        worker: v,
                    },
                );
                let overhead = service_time(job.function)
                    .overhead(WorkerPlatform::X86Vm)
                    .mul_f64(config.jitter.factor(&mut rng));
                queue.schedule(now + overhead, Event::JobDone(v));
            }
            Event::JobDone(v) => {
                let (job, exec, started) = current[v].take().expect("job in flight");
                if let Some(a) = attr.as_mut() {
                    a.job_finished(0, now, job.id);
                }
                completed += 1;
                let latency_s = now.duration_since(job.arrived).as_secs_f64();
                latencies.record(latency_s);
                tenant_tracker.record(job.tenant, latency_s);
                sink.on_completion(&Completion {
                    job: job.id,
                    function: job.function,
                    worker: v,
                    arrived: job.arrived,
                    finished: now,
                    exec,
                    tenant: job.tenant,
                });
                observer.emit(
                    now,
                    TraceEvent::JobCompleted {
                        job: job.id,
                        function: job.function.name(),
                        worker: v,
                        exec,
                        overhead: now.duration_since(started + exec),
                    },
                );
                if let Some(cache) = cache.as_mut() {
                    cache.insert(job.key, (), now.as_micros());
                    for follower in coalesce.complete(job.key) {
                        completed += 1;
                        let wait_s = now.duration_since(follower.arrived).as_secs_f64();
                        latencies.record(wait_s);
                        tenant_tracker.record(follower.tenant, wait_s);
                        if let Some(a) = attr.as_mut() {
                            a.record_free(
                                usize::from(follower.function.index()),
                                follower.tenant as usize,
                            );
                        }
                        sink.on_completion(&Completion {
                            job: follower.id,
                            function: follower.function,
                            worker: v,
                            arrived: follower.arrived,
                            finished: now,
                            exec: SimDuration::ZERO,
                            tenant: follower.tenant,
                        });
                        observer.emit(
                            now,
                            TraceEvent::JobCompleted {
                                job: follower.id,
                                function: follower.function.name(),
                                worker: v,
                                exec: SimDuration::ZERO,
                                overhead: SimDuration::ZERO,
                            },
                        );
                    }
                }
                server.finish_job(v, now).expect("vm was executing");
                let watts = server.power().value();
                meter.set_power(now, host, watts);
                if let Some(a) = attr.as_mut() {
                    a.set_power(0, now, watts);
                }
                observer.emit(
                    now,
                    TraceEvent::WorkerStateChange {
                        worker: v,
                        state: WorkerState::Rebooting,
                    },
                );
                observer.emit(now, TraceEvent::PowerSample { worker: 0, watts });
                // Between-jobs reboot, then take the next job if queued.
                queue.schedule(
                    now + server.vm_boot_duration().mul_f64(server.current_slowdown()),
                    Event::BootDone(v),
                );
            }
            Event::BootDone(v) => {
                server.reboot_complete(v, now).expect("vm was rebooting");
                let watts = server.power().value();
                meter.set_power(now, host, watts);
                if let Some(a) = attr.as_mut() {
                    a.set_power(0, now, watts);
                }
                observer.emit(
                    now,
                    TraceEvent::WorkerStateChange {
                        worker: v,
                        state: WorkerState::Idle,
                    },
                );
                observer.emit(now, TraceEvent::PowerSample { worker: 0, watts });
                if let Some(job) = queues[v].pop_front() {
                    vm_start_job(
                        v,
                        job,
                        now,
                        config,
                        &mut server,
                        &mut current,
                        &mut meter,
                        host,
                        &mut queue,
                        &mut rng,
                        observer,
                        attr.as_mut(),
                    );
                }
            }
            Event::PowerEffective(_) => unreachable!("VMs never power-cycle"),
            Event::IdleGate(_) => unreachable!("governors do not gate VMs"),
            Event::Release => unreachable!("budgets do not gate the conventional loop"),
            Event::Crash(_) | Event::Recover(_) => {
                unreachable!("fault plans are ignored on the conventional open loop")
            }
        }
    }

    let end = queue.now().max(horizon);
    let report = meter.report(end, completed);
    let (mean_latency_s, p95_latency_s) = latencies.finish();
    let cache_stats = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
    let run = OpenLoopRun {
        completed,
        mean_latency_s,
        p95_latency_s,
        mean_power_w: report.average_watts,
        joules_per_function: report.joules_per_function().unwrap_or(f64::NAN),
        mean_powered_on: vms as f64,
        offered_per_second: arrived as f64 / config.duration.as_secs_f64(),
        power_cycles: 0,
        faults_injected: 0,
        tenants: tenant_tracker.summaries(),
        cache_hits: cache_stats.hits,
        cache_misses: cache_stats.misses,
        cache_coalesced: cache_stats.coalesced,
    };
    let ledger = attr.map(|a| a.finalize(end));
    (run, ledger, end)
}

/// Starts the next invocation on an idle VM: the conventional loop's
/// counterpart of [`begin_job`], shared by the arrival and post-reboot
/// paths. Same RNG site and draw order as the historical inline code,
/// so conventional runs cannot move.
#[allow(clippy::too_many_arguments)]
fn vm_start_job<O: TraceObserver>(
    v: usize,
    job: QueuedJob,
    now: SimTime,
    config: &OpenLoopConfig,
    server: &mut microfaas_hw::RackServer,
    current: &mut [Option<(QueuedJob, SimDuration, SimTime)>],
    meter: &mut EnergyMeter,
    host: microfaas_energy::ChannelId,
    queue: &mut EventQueue<Event>,
    rng: &mut Rng,
    observer: &mut O,
    attr: Option<&mut Attributor>,
) {
    server.start_job(v, now).expect("vm is idle");
    let watts = server.power().value();
    meter.set_power(now, host, watts);
    if let Some(a) = attr {
        a.set_power(0, now, watts);
        a.job_started(
            0,
            now,
            job.id,
            usize::from(job.function.index()),
            job.tenant as usize,
        );
    }
    observer.emit(
        now,
        TraceEvent::JobStarted {
            job: job.id,
            function: job.function.name(),
            worker: v,
        },
    );
    observer.emit(
        now,
        TraceEvent::WorkerStateChange {
            worker: v,
            state: WorkerState::Executing,
        },
    );
    observer.emit(now, TraceEvent::PowerSample { worker: 0, watts });
    let exec = service_time(job.function)
        .exec(WorkerPlatform::X86Vm)
        .mul_f64(config.jitter.factor(rng) * server.current_slowdown());
    current[v] = Some((job, exec, now));
    queue.schedule(now + exec, Event::ExecDone(v));
}

/// Places one admitted job and drives the chosen worker's power state —
/// the per-job tail of the Arrival handler, shared with the
/// budget-deferral [`Event::Release`] path. Pure code motion from the
/// historical Arrival arm: same RNG sites, same draw order, so the
/// legacy goldens cannot move.
#[allow(clippy::too_many_arguments)]
fn dispatch_job<O: TraceObserver>(
    job: QueuedJob,
    now: SimTime,
    config: &OpenLoopConfig,
    policy: &mut PolicyEngine,
    cache_on: bool,
    sched_active: bool,
    views: &mut Vec<NodeView>,
    workers: &mut [Worker],
    powered_on: &mut TimeWeighted,
    gpio: &mut PowerController,
    queue: &mut EventQueue<Event>,
    meter: &mut EnergyMeter,
    channels: &[microfaas_energy::ChannelId],
    rng: &mut Rng,
    observer: &mut O,
    sched_handles: &Option<SchedMetrics>,
    attr: Option<&mut Attributor>,
) {
    // Rate tracking for WarmPool (a no-op elsewhere).
    policy.observe_arrival(now);
    let w = if config.scheduler == PlacementKind::RandomStatic {
        // O(1) placement: RandomStatic draws exactly one
        // uniform index over the full fleet and never
        // reads the views, so building them is pure
        // overhead. Same RNG site, same draw —
        // bit-identical to routing through the engine.
        rng.index(config.workers)
    } else {
        views.clear();
        views.extend(workers.iter().map(Worker::view));
        if cache_on {
            // Key-aware routing: CacheAffine pins hot
            // keys to home nodes; other policies ignore
            // the key and behave exactly as place().
            policy.place_keyed(job.key, views, rng)
        } else {
            policy.place(views, rng)
        }
    };
    if sched_active {
        observer.emit(
            now,
            TraceEvent::PlacementDecision {
                job: job.id,
                worker: w,
                policy: config.scheduler.label(),
            },
        );
        if let (Some(metrics), Some(h)) = (observer.metrics(), sched_handles.as_ref()) {
            metrics.inc(h.placements);
        }
    }
    workers[w].queue.push_back(job);
    match workers[w].node.state() {
        SbcState::Off if !workers[w].waking => {
            if let (Some(metrics), Some(h)) = (observer.metrics(), sched_handles.as_ref()) {
                metrics.inc(h.cold_boots);
            }
            workers[w].waking = true;
            powered_on.add(now, 1.0);
            observer.emit(
                now,
                TraceEvent::WakeRequested {
                    worker: w,
                    reason: "dispatch",
                },
            );
            let effective = gpio.actuate(now, w, PowerAction::On);
            queue.schedule(effective, Event::PowerEffective(w));
        }
        SbcState::Idle => {
            // A warm (standby) node absorbs the arrival
            // with no boot in front of it.
            if let (Some(metrics), Some(h)) = (observer.metrics(), sched_handles.as_ref()) {
                metrics.inc(h.warm_hits);
            }
            begin_job(
                w, now, config, workers, queue, meter, channels, rng, observer, attr,
            );
        }
        _ => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn begin_job<O: TraceObserver>(
    w: usize,
    now: SimTime,
    config: &OpenLoopConfig,
    workers: &mut [Worker],
    queue: &mut EventQueue<Event>,
    meter: &mut EnergyMeter,
    channels: &[microfaas_energy::ChannelId],
    rng: &mut Rng,
    observer: &mut O,
    attr: Option<&mut Attributor>,
) {
    if let Some(gate) = workers[w].gate.take() {
        queue.cancel(gate);
    }
    match workers[w].queue.pop_front() {
        Some(job) => {
            workers[w].node.start_job(now).expect("node is idle");
            let watts = workers[w].node.power().value();
            meter.set_power(now, channels[w], watts);
            if let Some(a) = attr {
                a.set_power(w, now, watts);
                a.job_started(
                    w,
                    now,
                    job.id,
                    usize::from(job.function.index()),
                    job.tenant as usize,
                );
            }
            observer.emit(
                now,
                TraceEvent::JobStarted {
                    job: job.id,
                    function: job.function.name(),
                    worker: w,
                },
            );
            observer.emit(
                now,
                TraceEvent::WorkerStateChange {
                    worker: w,
                    state: WorkerState::Executing,
                },
            );
            observer.emit(now, TraceEvent::PowerSample { worker: w, watts });
            // The throttle multiplier is 1.0 on every non-budget path,
            // and x * 1.0 == x exactly in IEEE-754 — legacy runs cannot
            // move by a ULP.
            let exec = service_time(job.function)
                .exec(WorkerPlatform::ArmSbc)
                .mul_f64(config.jitter.factor(rng) * job.throttle);
            workers[w].current = Some((job, exec, now));
            workers[w].pending = Some(queue.schedule(now + exec, Event::ExecDone(w)));
        }
        None => {
            // A node is only woken or rebooted when its queue holds work,
            // and nothing else can drain that queue first.
            unreachable!("worker {w} reached idle with an empty queue at {now}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microfaas_sched::{
        DEFAULT_KEEP_ALIVE_TIMEOUT, DEFAULT_WARM_POOL_ALPHA, DEFAULT_WARM_POOL_HEADROOM,
    };
    use microfaas_sim::faults::{FaultPlan, FaultSpec, FaultTrigger};

    fn config(arrival: ArrivalProcess, scheduler: SchedulerPolicy, seed: u64) -> OpenLoopConfig {
        OpenLoopConfig {
            workers: 10,
            seed,
            duration: SimDuration::from_secs(600),
            arrival,
            scheduler,
            governor: GovernorKind::RebootPerJob,
            jitter: Jitter::default_run_to_run(),
            functions: FunctionId::ALL.to_vec(),
            popularity: Popularity::Uniform,
            tenants: Vec::new(),
            faults: FaultsConfig::none(),
            cache: CacheConfig::Off,
        }
    }

    #[test]
    fn paper_arrangement_runs() {
        let run = run_open_loop(&OpenLoopConfig::paper_arrangement(
            2,
            SimDuration::from_secs(300),
            1,
        ));
        assert!(
            run.completed > 500,
            "about 600 jobs should arrive and finish"
        );
        assert!(run.mean_latency_s > 0.0);
    }

    #[test]
    fn power_tracks_load() {
        // Offered load 0.5 vs 2.5 jobs/s: power should scale roughly
        // proportionally (energy-proportional computing).
        let low = run_open_loop(&config(
            ArrivalProcess::Poisson { per_second: 0.5 },
            SchedulerPolicy::RandomStatic,
            2,
        ));
        let high = run_open_loop(&config(
            ArrivalProcess::Poisson { per_second: 2.5 },
            SchedulerPolicy::RandomStatic,
            2,
        ));
        let ratio = high.mean_power_w / low.mean_power_w;
        assert!(
            (3.5..6.5).contains(&ratio),
            "5x load should be ~5x power, got {ratio:.2} ({:.2} -> {:.2} W)",
            low.mean_power_w,
            high.mean_power_w
        );
    }

    #[test]
    fn joules_per_function_stays_flat_across_load() {
        // The MicroFaaS selling point: per-function energy is nearly
        // load-independent because idle nodes are off.
        let low = run_open_loop(&config(
            ArrivalProcess::Poisson { per_second: 0.4 },
            SchedulerPolicy::RandomStatic,
            3,
        ));
        let high = run_open_loop(&config(
            ArrivalProcess::Poisson { per_second: 2.0 },
            SchedulerPolicy::RandomStatic,
            3,
        ));
        let drift = (high.joules_per_function / low.joules_per_function - 1.0).abs();
        assert!(
            drift < 0.15,
            "J/func drift {:.1}% across a 5x load swing ({:.2} vs {:.2})",
            drift * 100.0,
            low.joules_per_function,
            high.joules_per_function
        );
    }

    #[test]
    fn least_loaded_cuts_latency_vs_random() {
        let random = run_open_loop(&config(
            ArrivalProcess::Poisson { per_second: 2.5 },
            SchedulerPolicy::RandomStatic,
            4,
        ));
        let least = run_open_loop(&config(
            ArrivalProcess::Poisson { per_second: 2.5 },
            SchedulerPolicy::LeastLoaded,
            4,
        ));
        assert!(
            least.p95_latency_s < random.p95_latency_s,
            "least-loaded p95 {:.1}s should beat random p95 {:.1}s",
            least.p95_latency_s,
            random.p95_latency_s
        );
    }

    #[test]
    fn power_aware_cuts_power_cycles() {
        // Power-gating already makes *energy* proportional regardless of
        // placement; what packing buys is far fewer cold boots (GPIO
        // power cycles), concentrating work on a few always-hot nodes.
        let random = run_open_loop(&config(
            ArrivalProcess::Poisson { per_second: 1.0 },
            SchedulerPolicy::RandomStatic,
            5,
        ));
        let packed = run_open_loop(&config(
            ArrivalProcess::Poisson { per_second: 1.0 },
            SchedulerPolicy::PowerAware,
            5,
        ));
        assert!(
            (packed.power_cycles as f64) < random.power_cycles as f64 * 0.5,
            "packing should at least halve power cycles: {} vs {}",
            packed.power_cycles,
            random.power_cycles
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_open_loop(&config(
            ArrivalProcess::Poisson { per_second: 1.0 },
            SchedulerPolicy::RandomStatic,
            6,
        ));
        let b = run_open_loop(&config(
            ArrivalProcess::Poisson { per_second: 1.0 },
            SchedulerPolicy::RandomStatic,
            6,
        ));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_power_w, b.mean_power_w);
    }

    #[test]
    fn drains_after_horizon() {
        // Every arrived job eventually completes even though arrivals
        // stop at the horizon.
        let run = run_open_loop(&config(
            ArrivalProcess::Poisson { per_second: 1.5 },
            SchedulerPolicy::LeastLoaded,
            7,
        ));
        let expected = run.offered_per_second * 600.0;
        assert!(
            (run.completed as f64 - expected).abs() < 1.0,
            "completed {} vs arrived {expected}",
            run.completed
        );
    }

    #[test]
    fn conventional_jpf_explodes_at_low_load() {
        // The idle floor means a lightly loaded conventional cluster
        // burns enormous energy per function; MicroFaaS does not.
        let cfg_low = config(
            ArrivalProcess::Poisson { per_second: 0.3 },
            SchedulerPolicy::RandomStatic,
            9,
        );
        let micro = run_open_loop(&cfg_low);
        let conv = run_open_loop_conventional(&cfg_low, 6);
        assert!(
            conv.joules_per_function > 10.0 * micro.joules_per_function,
            "at 0.3 jobs/s conventional {:.1} J/f should dwarf MicroFaaS {:.1} J/f",
            conv.joules_per_function,
            micro.joules_per_function
        );
        // The two simulators advance their RNG streams differently, so
        // arrival counts only agree statistically.
        let ratio = conv.completed as f64 / micro.completed as f64;
        assert!(
            (0.8..1.2).contains(&ratio),
            "completions should be comparable"
        );
    }

    #[test]
    fn conventional_open_loop_completes_everything() {
        let cfg = config(
            ArrivalProcess::EverySecond { jobs_per_tick: 2 },
            SchedulerPolicy::RandomStatic,
            10,
        );
        let run = run_open_loop_conventional(&cfg, 6);
        let expected = run.offered_per_second * 600.0;
        assert!((run.completed as f64 - expected).abs() < 1.0);
        assert!(run.mean_power_w >= 60.0, "never below the idle floor");
    }

    #[test]
    fn scheduled_crash_recovers_and_nothing_is_lost() {
        // Saturating load keeps every node executing, so crashes at
        // t=30 s and t=90 s land mid-invocation; the re-queued jobs
        // complete after recovery and the drain still finishes clean.
        let mut cfg = config(
            ArrivalProcess::Poisson { per_second: 2.0 },
            SchedulerPolicy::LeastLoaded,
            12,
        );
        cfg.faults = FaultsConfig::with_plan(FaultPlan {
            seed: 3,
            faults: vec![
                FaultSpec {
                    kind: FaultKind::Crash,
                    worker: Some(1),
                    trigger: FaultTrigger::At(SimTime::from_secs(30)),
                },
                FaultSpec {
                    kind: FaultKind::Crash,
                    worker: Some(4),
                    trigger: FaultTrigger::At(SimTime::from_secs(90)),
                },
            ],
        });
        let run = run_open_loop(&cfg);
        // A crash scheduled while the target happens to be powered off
        // or rebooting is a no-op, so only a lower bound is guaranteed.
        assert!(run.faults_injected >= 1, "at least one crash must land");
        let expected = run.offered_per_second * 600.0;
        assert!(
            (run.completed as f64 - expected).abs() < 1.0,
            "completed {} vs arrived {expected}",
            run.completed
        );
    }

    #[test]
    fn empty_plan_changes_nothing_in_open_loop() {
        let base = config(
            ArrivalProcess::Poisson { per_second: 1.0 },
            SchedulerPolicy::RandomStatic,
            6,
        );
        let mut explicit = base.clone();
        explicit.faults = FaultsConfig::with_plan(FaultPlan::empty());
        let a = run_open_loop(&base);
        let b = run_open_loop(&explicit);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_power_w, b.mean_power_w);
        assert_eq!(a.mean_latency_s, b.mean_latency_s);
        assert_eq!(b.faults_injected, 0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        run_open_loop(&config(
            ArrivalProcess::Poisson { per_second: 0.0 },
            SchedulerPolicy::RandomStatic,
            8,
        ));
    }

    fn governed(rate: f64, governor: GovernorKind, seed: u64) -> OpenLoopConfig {
        // Random placement spreads arrivals across the fleet, so each
        // node's idle gaps (~workers/rate seconds) sit well above the
        // ~23 s standby/boot break-even — the regime where holding
        // nodes warm costs energy and buys latency.
        let mut cfg = config(
            ArrivalProcess::Poisson { per_second: rate },
            SchedulerPolicy::RandomStatic,
            seed,
        );
        cfg.governor = governor;
        cfg
    }

    #[test]
    fn keep_alive_trades_energy_for_latency() {
        // At sparse load the idle gaps usually stay under the keep-alive
        // window, so the boot penalty vanishes from the latency path while
        // standby draw shows up on the meter — the Pareto trade the sweep
        // exists to surface.
        let reboot = run_open_loop(&governed(0.25, GovernorKind::RebootPerJob, 21));
        let keep = run_open_loop(&governed(
            0.25,
            GovernorKind::KeepAlive {
                idle_timeout: SimDuration::from_secs(30),
            },
            21,
        ));
        assert!(
            keep.mean_latency_s < reboot.mean_latency_s,
            "keep-alive mean latency {:.3}s should beat reboot-per-job {:.3}s",
            keep.mean_latency_s,
            reboot.mean_latency_s
        );
        assert!(
            keep.joules_per_function > reboot.joules_per_function,
            "keep-alive J/func {:.2} should exceed reboot-per-job {:.2}",
            keep.joules_per_function,
            reboot.joules_per_function
        );
    }

    #[test]
    fn always_on_floors_latency_at_peak_energy() {
        let keep = run_open_loop(&governed(
            0.25,
            GovernorKind::KeepAlive {
                idle_timeout: DEFAULT_KEEP_ALIVE_TIMEOUT,
            },
            22,
        ));
        let always = run_open_loop(&governed(0.25, GovernorKind::AlwaysOn, 22));
        assert!(
            always.mean_latency_s <= keep.mean_latency_s + 1e-9,
            "always-on latency {:.3}s should not exceed keep-alive {:.3}s",
            always.mean_latency_s,
            keep.mean_latency_s
        );
        assert!(
            always.mean_power_w > keep.mean_power_w,
            "always-on power {:.2}W should exceed keep-alive {:.2}W",
            always.mean_power_w,
            keep.mean_power_w
        );
        // Nothing ever gates off, so the only power cycles are the
        // initial wakes.
        assert!(always.mean_powered_on > 9.0, "fleet should stay booted");
    }

    #[test]
    fn warm_pool_sits_between_reboot_and_always_on() {
        let reboot = run_open_loop(&governed(0.25, GovernorKind::RebootPerJob, 23));
        let warm = run_open_loop(&governed(
            0.25,
            GovernorKind::WarmPool {
                alpha: DEFAULT_WARM_POOL_ALPHA,
                headroom: DEFAULT_WARM_POOL_HEADROOM,
            },
            23,
        ));
        let always = run_open_loop(&governed(0.25, GovernorKind::AlwaysOn, 23));
        assert!(
            warm.mean_power_w > reboot.mean_power_w,
            "a warm reserve must draw more than power-gating everything"
        );
        assert!(
            warm.mean_power_w < always.mean_power_w,
            "an EWMA-sized reserve must draw less than the whole fleet"
        );
        assert!(
            warm.mean_latency_s < reboot.mean_latency_s,
            "warm hits should shave the boot penalty off the mean"
        );
    }

    #[test]
    fn governors_are_deterministic_per_seed() {
        for governor in GovernorKind::ALL {
            let a = run_open_loop(&governed(0.5, governor, 31));
            let b = run_open_loop(&governed(0.5, governor, 31));
            assert_eq!(a.completed, b.completed, "{governor:?}");
            assert_eq!(a.mean_power_w, b.mean_power_w, "{governor:?}");
            assert_eq!(a.mean_latency_s, b.mean_latency_s, "{governor:?}");
            assert_eq!(a.power_cycles, b.power_cycles, "{governor:?}");
        }
    }

    /// Folds completions into counts so the tests can check the sink
    /// contract without materializing anything.
    struct CountingSink {
        completions: u64,
        last_finished: SimTime,
        monotonic: bool,
        max_latency_s: f64,
    }

    impl CountingSink {
        fn new() -> Self {
            CountingSink {
                completions: 0,
                last_finished: SimTime::ZERO,
                monotonic: true,
                max_latency_s: 0.0,
            }
        }
    }

    impl RunSink for CountingSink {
        fn on_completion(&mut self, completion: &Completion) {
            self.completions += 1;
            if completion.finished < self.last_finished {
                self.monotonic = false;
            }
            self.last_finished = completion.finished;
            self.max_latency_s = self.max_latency_s.max(completion.latency_s());
        }
    }

    #[test]
    fn streaming_matches_exact_aggregates() {
        for governor in GovernorKind::ALL {
            let cfg = governed(1.0, governor, 41);
            let exact = run_open_loop(&cfg);
            let streamed = run_open_loop_streaming(&cfg, &mut NullSink);
            assert_eq!(streamed.completed, exact.completed, "{governor:?}");
            assert_eq!(streamed.mean_power_w, exact.mean_power_w, "{governor:?}");
            assert_eq!(streamed.power_cycles, exact.power_cycles, "{governor:?}");
            assert_eq!(
                streamed.joules_per_function, exact.joules_per_function,
                "{governor:?}"
            );
            // Latency aggregates are the only approximate fields: the
            // Welford mean differs from sum/len at rounding, the p95
            // within the sketch's relative-error guarantee.
            let mean_err = (streamed.mean_latency_s / exact.mean_latency_s - 1.0).abs();
            assert!(mean_err < 1e-9, "{governor:?}: mean err {mean_err:e}");
            let p95_err = (streamed.p95_latency_s / exact.p95_latency_s - 1.0).abs();
            assert!(
                p95_err < 2.5 * STREAMING_QUANTILE_EPSILON,
                "{governor:?}: p95 {:.4} vs exact {:.4}",
                streamed.p95_latency_s,
                exact.p95_latency_s
            );
        }
    }

    #[test]
    fn streaming_sink_sees_every_completion_in_time_order() {
        let cfg = config(
            ArrivalProcess::Poisson { per_second: 1.5 },
            SchedulerPolicy::LeastLoaded,
            17,
        );
        let mut sink = CountingSink::new();
        let run = run_open_loop_streaming(&cfg, &mut sink);
        assert_eq!(sink.completions, run.completed);
        assert!(sink.monotonic, "completions must arrive in time order");
        assert!(sink.max_latency_s >= run.p95_latency_s);
    }

    #[test]
    fn streaming_is_deterministic_per_seed() {
        let cfg = governed(
            0.5,
            GovernorKind::KeepAlive {
                idle_timeout: DEFAULT_KEEP_ALIVE_TIMEOUT,
            },
            19,
        );
        let a = run_open_loop_streaming(&cfg, &mut NullSink);
        let b = run_open_loop_streaming(&cfg, &mut NullSink);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_latency_s, b.mean_latency_s);
        assert_eq!(a.p95_latency_s, b.p95_latency_s);
        assert_eq!(a.mean_power_w, b.mean_power_w);
    }

    #[test]
    fn cache_turns_repeats_into_free_completions() {
        let mut cfg = config(
            ArrivalProcess::Poisson { per_second: 2.0 },
            SchedulerPolicy::LeastLoaded,
            51,
        );
        cfg.popularity = Popularity::Zipf { exponent: 1.1 };
        let baseline = run_open_loop(&cfg);
        cfg.cache = CacheConfig::parse("lru:4096,ttl=300").unwrap();
        let cached = run_open_loop(&cfg);
        assert_eq!(
            cached.cache_hits + cached.cache_misses + cached.cache_coalesced,
            cached.completed,
            "every arrival lands in exactly one bucket"
        );
        assert!(cached.cache_hits > 0, "Zipf repeats must hit");
        assert!(
            cached.p95_latency_s < baseline.p95_latency_s,
            "hits should cut p95: {:.2}s vs {:.2}s",
            cached.p95_latency_s,
            baseline.p95_latency_s
        );
        assert!(
            cached.joules_per_function < baseline.joules_per_function,
            "skipped executions should cut J/function"
        );
        // Nothing is lost: every arrival still completes after drain.
        let expected = cached.offered_per_second * 600.0;
        assert!((cached.completed as f64 - expected).abs() < 1.0);
        assert_eq!(baseline.cache_hits, 0, "cache off must stay silent");
    }

    #[test]
    fn cached_runs_are_deterministic_and_streaming_parity_holds() {
        let mut cfg = config(
            ArrivalProcess::Poisson { per_second: 2.0 },
            SchedulerPolicy::CacheAffine,
            52,
        );
        cfg.popularity = Popularity::Zipf { exponent: 1.1 };
        cfg.cache = CacheConfig::parse(crate::cache::DEFAULT_CACHE_SPEC).unwrap();
        let a = run_open_loop(&cfg);
        let b = run_open_loop(&cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_latency_s, b.mean_latency_s);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.cache_coalesced, b.cache_coalesced);
        let streamed = run_open_loop_streaming(&cfg, &mut NullSink);
        assert_eq!(streamed.completed, a.completed);
        assert_eq!(streamed.cache_hits, a.cache_hits);
        assert_eq!(streamed.cache_misses, a.cache_misses);
        assert_eq!(streamed.cache_coalesced, a.cache_coalesced);
        assert_eq!(streamed.mean_power_w, a.mean_power_w);
    }

    #[test]
    fn cached_streaming_sink_stays_monotonic_and_complete() {
        let mut cfg = config(
            ArrivalProcess::Poisson { per_second: 3.0 },
            SchedulerPolicy::LeastLoaded,
            53,
        );
        cfg.popularity = Popularity::HotCold {
            hot_functions: 3,
            hot_share: 0.9,
        };
        cfg.cache = CacheConfig::parse("lru:512,ttl=120").unwrap();
        let mut sink = CountingSink::new();
        let run = run_open_loop_streaming(&cfg, &mut sink);
        assert_eq!(sink.completions, run.completed);
        assert!(sink.monotonic, "cached completions must stay in time order");
    }

    #[test]
    fn conventional_open_loop_honours_the_cache() {
        let mut cfg = config(
            ArrivalProcess::Poisson { per_second: 2.0 },
            SchedulerPolicy::RandomStatic,
            54,
        );
        cfg.popularity = Popularity::Zipf { exponent: 1.1 };
        let baseline = run_open_loop_conventional(&cfg, 6);
        cfg.cache = CacheConfig::parse("lru:4096,ttl=300").unwrap();
        let cached = run_open_loop_conventional(&cfg, 6);
        assert!(cached.cache_hits > 0);
        assert!(cached.mean_latency_s < baseline.mean_latency_s);
        let expected = cached.offered_per_second * 600.0;
        assert!((cached.completed as f64 - expected).abs() < 1.0);
    }

    #[test]
    fn attributed_runs_conserve_and_match_the_meter() {
        use microfaas_sched::BudgetAction;
        for governor in [
            GovernorKind::RebootPerJob,
            GovernorKind::KeepAlive {
                idle_timeout: DEFAULT_KEEP_ALIVE_TIMEOUT,
            },
            GovernorKind::EnergyBudget {
                cap_w: 0.5,
                burst_j: 10.0,
                action: BudgetAction::Shed,
            },
        ] {
            for policy in IdlePolicy::ALL {
                let cfg = governed(0.6, governor, 61);
                let (run, ledger) = run_open_loop_attributed(&cfg, policy);
                assert!(ledger.conserves(), "{governor:?}/{policy}");
                // The integer ledger and the f64 meter integrate the
                // same piecewise-constant trace.
                let meter_joules = run.joules_per_function * run.completed as f64;
                let err = (ledger.total_joules() - meter_joules).abs();
                assert!(
                    err < 1e-6 * meter_joules.max(1.0),
                    "{governor:?}/{policy}: ledger {} vs meter {meter_joules}",
                    ledger.total_joules()
                );
                // Attribution is pure observation: the run itself is
                // bit-identical to the unattributed entry point.
                let plain = run_open_loop(&cfg);
                assert_eq!(run.completed, plain.completed, "{governor:?}/{policy}");
                assert_eq!(
                    run.mean_power_w, plain.mean_power_w,
                    "{governor:?}/{policy}"
                );
                assert_eq!(
                    run.mean_latency_s, plain.mean_latency_s,
                    "{governor:?}/{policy}"
                );
            }
        }
    }

    #[test]
    fn attributed_streaming_ledger_is_byte_identical_to_exact() {
        let mut cfg = governed(1.0, GovernorKind::RebootPerJob, 62);
        cfg.popularity = Popularity::Zipf { exponent: 1.1 };
        cfg.cache = CacheConfig::parse("lru:1024,ttl=300").unwrap();
        let (exact_run, exact_ledger) = run_open_loop_attributed(&cfg, IdlePolicy::UsageWeighted);
        let (streamed_run, streamed_ledger) =
            run_open_loop_streaming_attributed(&cfg, &mut NullSink, IdlePolicy::UsageWeighted);
        assert_eq!(streamed_run.completed, exact_run.completed);
        assert_eq!(streamed_run.cache_hits, exact_run.cache_hits);
        assert_eq!(exact_ledger.to_csv(), streamed_ledger.to_csv());
        assert!(exact_ledger.conserves());
    }

    #[test]
    fn budget_actions_gate_shed_defer_and_throttle() {
        use microfaas_sched::BudgetAction;
        let budget = |action| {
            governed(
                4.0,
                GovernorKind::EnergyBudget {
                    cap_w: 0.5,
                    burst_j: 10.0,
                    action,
                },
                63,
            )
        };
        let baseline = run_open_loop(&governed(
            4.0,
            GovernorKind::KeepAlive {
                idle_timeout: DEFAULT_KEEP_ALIVE_TIMEOUT,
            },
            63,
        ));
        let shed = run_open_loop(&budget(BudgetAction::Shed));
        let expected = shed.offered_per_second * 600.0;
        assert!(
            (shed.completed as f64) < 0.5 * expected,
            "a binding shed cap must reject most of the overload: {} of {expected}",
            shed.completed
        );
        let shed_joules = shed.joules_per_function * shed.completed as f64;
        let base_joules = baseline.joules_per_function * baseline.completed as f64;
        assert!(
            shed_joules < 0.5 * base_joules,
            "shedding must cut cluster energy: {shed_joules:.0} J vs {base_joules:.0} J"
        );
        // Defer completes everything — jobs wait out the bucket refill
        // instead of dying. (Each action reshapes the shared RNG
        // interleaving, so every run is scored against its own arrival
        // count.)
        let defer = run_open_loop(&budget(BudgetAction::Defer));
        let defer_expected = defer.offered_per_second * 600.0;
        assert!(
            (defer.completed as f64 - defer_expected).abs() < 1.0,
            "deferred jobs must all complete: {} vs {defer_expected}",
            defer.completed
        );
        assert!(
            defer.mean_latency_s > baseline.mean_latency_s,
            "deferral queues the excess load behind the cap"
        );
        // Throttle completes everything too, but stretched executions
        // push the mean up without shedding a single request.
        let throttle = run_open_loop(&budget(BudgetAction::Throttle));
        let throttle_expected = throttle.offered_per_second * 600.0;
        assert!((throttle.completed as f64 - throttle_expected).abs() < 1.0);
        assert!(throttle.mean_latency_s > baseline.mean_latency_s);
    }

    #[test]
    fn budget_runs_are_deterministic_and_stream_exactly() {
        use microfaas_sched::BudgetAction;
        for action in [
            BudgetAction::Shed,
            BudgetAction::Defer,
            BudgetAction::Throttle,
        ] {
            let cfg = governed(
                3.0,
                GovernorKind::EnergyBudget {
                    cap_w: 0.5,
                    burst_j: 10.0,
                    action,
                },
                64,
            );
            let a = run_open_loop(&cfg);
            let b = run_open_loop(&cfg);
            assert_eq!(a.completed, b.completed, "{action}");
            assert_eq!(a.mean_latency_s, b.mean_latency_s, "{action}");
            assert_eq!(a.mean_power_w, b.mean_power_w, "{action}");
            let streamed = run_open_loop_streaming(&cfg, &mut NullSink);
            assert_eq!(streamed.completed, a.completed, "{action}");
            assert_eq!(streamed.mean_power_w, a.mean_power_w, "{action}");
        }
    }

    #[test]
    fn conventional_attribution_conserves_with_idle_floor() {
        let cfg = config(
            ArrivalProcess::Poisson { per_second: 1.0 },
            SchedulerPolicy::RandomStatic,
            65,
        );
        let (run, ledger) = run_open_loop_conventional_attributed(&cfg, 6, IdlePolicy::Equal);
        assert!(ledger.conserves());
        let meter_joules = run.joules_per_function * run.completed as f64;
        let err = (ledger.total_joules() - meter_joules).abs();
        assert!(err < 1e-6 * meter_joules, "ledger vs meter: {err}");
        // While any VM is busy the whole host draw — 60 W idle floor
        // included — splits across the active jobs, so conventional
        // per-job joules come out near the paper's ~32 J/function,
        // nowhere near the MicroFaaS ~6 J. Truly-empty stretches still
        // land in the idle pool.
        let attributed: u128 = (0..ledger.functions().len())
            .map(|f| ledger.function_attributed_pj(f))
            .sum();
        let per_job = attributed as f64 / 1e12 / run.completed as f64;
        assert!(
            per_job > 10.0,
            "conventional jobs must carry the idle floor: {per_job:.1} J/job"
        );
        assert!(ledger.idle_pj() > 0, "empty stretches still idle");
        let plain = run_open_loop_conventional(&cfg, 6);
        assert_eq!(run.completed, plain.completed);
        assert_eq!(run.mean_power_w, plain.mean_power_w);
    }

    #[test]
    fn monitored_run_is_inert_and_covers_every_completion() {
        // Telemetry is an observer: the run's aggregates must agree
        // bit-for-bit with the unmonitored engine, and the windows must
        // account for every completion and the full meter energy.
        let cfg = config(
            ArrivalProcess::Poisson { per_second: 2.0 },
            SchedulerPolicy::LeastLoaded,
            77,
        );
        let plain = run_open_loop(&cfg);
        let (run, series) = run_open_loop_monitored(&cfg, &TelemetryConfig::default());
        assert_eq!(run.completed, plain.completed);
        assert_eq!(run.mean_latency_s, plain.mean_latency_s);
        assert_eq!(run.p95_latency_s, plain.p95_latency_s);
        assert_eq!(run.mean_power_w, plain.mean_power_w);
        assert_eq!(run.power_cycles, plain.power_cycles);
        assert_eq!(series.total_completed(), run.completed);
        // The windowed energy integral and the meter integrate the same
        // step curve; only f64 summation order differs.
        let meter_joules =
            run.mean_power_w * series.end.duration_since(SimTime::ZERO).as_secs_f64();
        let err = (series.total_energy_j() - meter_joules).abs();
        assert!(
            err < 1e-6 * meter_joules.max(1.0),
            "windowed energy {} vs meter {meter_joules}",
            series.total_energy_j()
        );
    }

    #[test]
    fn monitored_streaming_and_attributed_agree_with_their_engines() {
        let mut cfg = governed(
            2.0,
            GovernorKind::KeepAlive {
                idle_timeout: DEFAULT_KEEP_ALIVE_TIMEOUT,
            },
            78,
        );
        cfg.tenants = vec![
            TenantClass {
                name: "paid".into(),
                weight: 0.3,
                slo_latency_s: 5.0,
            },
            TenantClass {
                name: "free".into(),
                weight: 0.7,
                slo_latency_s: 60.0,
            },
        ];
        let plain = run_open_loop_streaming(&cfg, &mut NullSink);
        let (run, series) = run_open_loop_monitored_streaming(&cfg, &TelemetryConfig::default());
        assert_eq!(run.completed, plain.completed);
        assert_eq!(run.mean_latency_s, plain.mean_latency_s);
        assert_eq!(run.mean_power_w, plain.mean_power_w);
        assert_eq!(series.total_completed(), run.completed);
        assert_eq!(series.tenants.len(), 2, "tenant columns follow config");
        // Per-tenant windowed completions must total the run's
        // per-tenant summaries.
        for (t, summary) in run.tenants.iter().enumerate() {
            let windowed: u64 = series.windows.iter().map(|w| w.tenants[t].completed).sum();
            assert_eq!(windowed, summary.completed, "tenant {t}");
        }
        let (arun, ledger, aseries) = run_open_loop_monitored_attributed(
            &cfg,
            IdlePolicy::Equal,
            &TelemetryConfig::default(),
        );
        assert_eq!(arun.completed, run.completed);
        assert_eq!(arun.mean_power_w, run.mean_power_w);
        assert!(ledger.conserves());
        assert_eq!(aseries.to_csv(), series.to_csv(), "attribution is inert");
    }

    #[test]
    fn monitored_series_is_deterministic() {
        let cfg = config(
            ArrivalProcess::FlashCrowd {
                base_per_second: 0.5,
                spike_at_s: 120.0,
                spike_duration_s: 60.0,
                spike_per_second: 10.0,
            },
            SchedulerPolicy::LeastLoaded,
            79,
        );
        let (_, a) = run_open_loop_monitored_streaming(&cfg, &TelemetryConfig::default());
        let (_, b) = run_open_loop_monitored_streaming(&cfg, &TelemetryConfig::default());
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.render_prometheus(), b.render_prometheus());
    }

    #[test]
    fn conventional_monitored_matches_and_carries_the_idle_floor() {
        let cfg = config(
            ArrivalProcess::Poisson { per_second: 1.0 },
            SchedulerPolicy::RandomStatic,
            80,
        );
        let plain = run_open_loop_conventional(&cfg, 6);
        let streamed = run_open_loop_conventional_streaming(&cfg, 6, &mut NullSink);
        assert_eq!(streamed.completed, plain.completed);
        assert_eq!(streamed.mean_power_w, plain.mean_power_w);
        let (run, series) =
            run_open_loop_conventional_monitored(&cfg, 6, &TelemetryConfig::default());
        assert_eq!(run.completed, plain.completed);
        assert_eq!(run.mean_power_w, plain.mean_power_w);
        assert_eq!(series.total_completed(), run.completed);
        // The rack server never drops below its idle floor, so every
        // full window reports tens of watts even when nothing runs.
        let floor = series
            .windows
            .iter()
            .map(|w| w.power_w)
            .fold(f64::INFINITY, f64::min);
        assert!(floor > 50.0, "idle floor should hold, got {floor:.1} W");
    }

    #[test]
    fn new_placements_complete_everything() {
        for scheduler in [
            SchedulerPolicy::WorkConserving,
            SchedulerPolicy::JoinShortestQueue,
            SchedulerPolicy::WarmFirst,
        ] {
            let run = run_open_loop(&config(
                ArrivalProcess::Poisson { per_second: 1.0 },
                scheduler,
                13,
            ));
            let expected = run.offered_per_second * 600.0;
            assert!(
                (run.completed as f64 - expected).abs() < 1.0,
                "{scheduler:?}: completed {} vs arrived {expected}",
                run.completed
            );
        }
    }
}
