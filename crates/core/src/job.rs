//! Jobs (function invocations) and their timing records.

use std::collections::BTreeMap;

use microfaas_sim::{OnlineStats, SimDuration, SimTime};
use microfaas_workloads::FunctionId;

/// One function invocation flowing through a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Unique id within the run.
    pub id: u64,
    /// Which Table-I function to execute.
    pub function: FunctionId,
}

/// Completed-job timing record, the raw material for Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// The job.
    pub job: Job,
    /// Worker that ran it.
    pub worker: usize,
    /// When execution began on the worker.
    pub started: SimTime,
    /// Time spent executing the function body ("Working").
    pub exec: SimDuration,
    /// Time spent receiving input / returning results ("Overhead").
    pub overhead: SimDuration,
}

impl JobRecord {
    /// Total worker-visible time for the job.
    pub fn total(&self) -> SimDuration {
        self.exec + self.overhead
    }
}

/// Aggregated per-function timing (one Fig. 3 bar pair).
#[derive(Debug, Clone, Default)]
pub struct FunctionStats {
    /// Execution-time distribution in milliseconds.
    pub exec_ms: OnlineStats,
    /// Overhead distribution in milliseconds.
    pub overhead_ms: OnlineStats,
}

impl FunctionStats {
    /// Records one completed job.
    pub fn record(&mut self, record: &JobRecord) {
        self.exec_ms.record(record.exec.as_millis_f64());
        self.overhead_ms.record(record.overhead.as_millis_f64());
    }

    /// Mean total (exec + overhead) in milliseconds.
    pub fn mean_total_ms(&self) -> f64 {
        self.exec_ms.mean() + self.overhead_ms.mean()
    }

    /// Number of completed invocations.
    pub fn count(&self) -> u64 {
        self.exec_ms.count()
    }
}

/// The orchestration plane's job queues under a chosen assignment policy.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    mode: crate::config::Assignment,
    shared: std::collections::VecDeque<Job>,
    per_worker: Vec<std::collections::VecDeque<Job>>,
}

impl Dispatcher {
    /// Distributes `jobs` over `workers` queues according to `mode`,
    /// using `rng` for the random-static split.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(
        mode: crate::config::Assignment,
        workers: usize,
        jobs: Vec<Job>,
        rng: &mut microfaas_sim::Rng,
    ) -> Self {
        assert!(workers > 0, "dispatcher needs at least one worker");
        // Reserve each queue for its expected share up front (the full
        // workload for the shared queue, jobs/workers plus slack for the
        // static split) so dispatch never regrows a ring buffer.
        let (shared_cap, per_worker_cap) = match mode {
            crate::config::Assignment::WorkConserving => (jobs.len(), 0),
            crate::config::Assignment::RandomStatic => (0, jobs.len() / workers + workers),
        };
        let mut dispatcher = Dispatcher {
            mode,
            shared: std::collections::VecDeque::with_capacity(shared_cap),
            per_worker: vec![std::collections::VecDeque::with_capacity(per_worker_cap); workers],
        };
        match mode {
            crate::config::Assignment::WorkConserving => dispatcher.shared.extend(jobs),
            crate::config::Assignment::RandomStatic => {
                for job in jobs {
                    dispatcher.per_worker[rng.index(workers)].push_back(job);
                }
            }
        }
        dispatcher
    }

    /// Whether worker `w` has any work available.
    pub fn has_work(&self, w: usize) -> bool {
        match self.mode {
            crate::config::Assignment::WorkConserving => !self.shared.is_empty(),
            crate::config::Assignment::RandomStatic => !self.per_worker[w].is_empty(),
        }
    }

    /// Takes the next job for worker `w`, if any.
    pub fn pull(&mut self, w: usize) -> Option<Job> {
        match self.mode {
            crate::config::Assignment::WorkConserving => self.shared.pop_front(),
            crate::config::Assignment::RandomStatic => self.per_worker[w].pop_front(),
        }
    }

    /// Jobs still queued across all workers.
    pub fn remaining(&self) -> usize {
        self.shared.len() + self.per_worker.iter().map(|q| q.len()).sum::<usize>()
    }

    /// Puts a recovered job back at the *head* of worker `w`'s queue so
    /// a retried invocation runs before fresh arrivals.
    pub fn requeue_front(&mut self, w: usize, job: Job) {
        match self.mode {
            crate::config::Assignment::WorkConserving => self.shared.push_front(job),
            crate::config::Assignment::RandomStatic => self.per_worker[w].push_front(job),
        }
    }

    /// Appends a job to worker `w`'s queue (redistribution target).
    pub fn enqueue_back(&mut self, w: usize, job: Job) {
        match self.mode {
            crate::config::Assignment::WorkConserving => self.shared.push_back(job),
            crate::config::Assignment::RandomStatic => self.per_worker[w].push_back(job),
        }
    }

    /// Removes every queued job matching `drop`, returning them in
    /// deterministic order (shared queue first, then per-worker queues
    /// by index). Used for graceful degradation under lost capacity.
    pub fn shed_where(&mut self, mut drop: impl FnMut(&Job) -> bool) -> Vec<Job> {
        let mut shed = Vec::new();
        let mut strain = |queue: &mut std::collections::VecDeque<Job>| {
            let mut kept = std::collections::VecDeque::with_capacity(queue.len());
            for job in queue.drain(..) {
                if drop(&job) {
                    shed.push(job);
                } else {
                    kept.push_back(job);
                }
            }
            *queue = kept;
        };
        strain(&mut self.shared);
        for queue in &mut self.per_worker {
            strain(queue);
        }
        shed
    }

    /// Drains everything statically assigned to a dead worker so the
    /// orchestrator can redistribute it. The shared (work-conserving)
    /// queue is untouched: surviving workers already pull from it.
    pub fn drain_worker(&mut self, w: usize) -> Vec<Job> {
        self.per_worker[w].drain(..).collect()
    }
}

/// Builds the per-function aggregation from raw records.
pub fn aggregate(records: &[JobRecord]) -> BTreeMap<FunctionId, FunctionStats> {
    let mut map: BTreeMap<FunctionId, FunctionStats> = BTreeMap::new();
    for record in records {
        map.entry(record.job.function).or_default().record(record);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(function: FunctionId, exec_ms: u64, overhead_ms: u64) -> JobRecord {
        JobRecord {
            job: Job { id: 0, function },
            worker: 0,
            started: SimTime::ZERO,
            exec: SimDuration::from_millis(exec_ms),
            overhead: SimDuration::from_millis(overhead_ms),
        }
    }

    #[test]
    fn total_is_exec_plus_overhead() {
        assert_eq!(
            rec(FunctionId::FloatOps, 100, 25).total(),
            SimDuration::from_millis(125)
        );
    }

    #[test]
    fn requeue_front_jumps_the_line() {
        let mut rng = microfaas_sim::Rng::new(1);
        let jobs: Vec<Job> = (0..4)
            .map(|id| Job {
                id,
                function: FunctionId::FloatOps,
            })
            .collect();
        let mut d = Dispatcher::new(crate::config::Assignment::WorkConserving, 2, jobs, &mut rng);
        let retried = Job {
            id: 99,
            function: FunctionId::CascSha,
        };
        d.requeue_front(0, retried);
        assert_eq!(d.pull(1), Some(retried), "retry runs before fresh work");
        assert_eq!(d.remaining(), 4);
    }

    #[test]
    fn shed_where_keeps_order_of_survivors() {
        let mut rng = microfaas_sim::Rng::new(2);
        let jobs: Vec<Job> = (0..6)
            .map(|id| Job {
                id,
                function: if id % 2 == 0 {
                    FunctionId::MatMul
                } else {
                    FunctionId::RedisInsert
                },
            })
            .collect();
        let mut d = Dispatcher::new(crate::config::Assignment::WorkConserving, 2, jobs, &mut rng);
        let shed = d.shed_where(|job| job.function == FunctionId::MatMul);
        assert_eq!(shed.iter().map(|j| j.id).collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(d.pull(0).map(|j| j.id), Some(1), "survivors keep order");
        assert_eq!(d.remaining(), 2);
    }

    #[test]
    fn drain_worker_empties_only_the_static_queue() {
        let mut rng = microfaas_sim::Rng::new(3);
        let jobs: Vec<Job> = (0..10)
            .map(|id| Job {
                id,
                function: FunctionId::FloatOps,
            })
            .collect();
        let mut d = Dispatcher::new(crate::config::Assignment::RandomStatic, 2, jobs, &mut rng);
        let before = d.remaining();
        let drained = d.drain_worker(0);
        assert!(!drained.is_empty(), "seed 3 assigns worker 0 some jobs");
        assert_eq!(d.remaining(), before - drained.len());
        assert!(!d.has_work(0));
        for job in drained {
            d.enqueue_back(1, job);
        }
        assert_eq!(d.remaining(), before, "redistribution conserves jobs");
    }

    #[test]
    fn aggregate_groups_by_function() {
        let records = vec![
            rec(FunctionId::FloatOps, 100, 10),
            rec(FunctionId::FloatOps, 200, 30),
            rec(FunctionId::CascSha, 500, 20),
        ];
        let stats = aggregate(&records);
        assert_eq!(stats.len(), 2);
        let fo = &stats[&FunctionId::FloatOps];
        assert_eq!(fo.count(), 2);
        assert_eq!(fo.exec_ms.mean(), 150.0);
        assert_eq!(fo.overhead_ms.mean(), 20.0);
        assert_eq!(fo.mean_total_ms(), 170.0);
    }
}
