//! Jobs (function invocations) and their timing records.

use std::collections::BTreeMap;

use microfaas_sim::{OnlineStats, SimDuration, SimTime};
use microfaas_workloads::FunctionId;

/// One function invocation flowing through a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Unique id within the run.
    pub id: u64,
    /// Which Table-I function to execute.
    pub function: FunctionId,
}

/// Completed-job timing record, the raw material for Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// The job.
    pub job: Job,
    /// Worker that ran it.
    pub worker: usize,
    /// When execution began on the worker.
    pub started: SimTime,
    /// Time spent executing the function body ("Working").
    pub exec: SimDuration,
    /// Time spent receiving input / returning results ("Overhead").
    pub overhead: SimDuration,
}

impl JobRecord {
    /// Total worker-visible time for the job.
    pub fn total(&self) -> SimDuration {
        self.exec + self.overhead
    }
}

/// Struct-of-arrays store for completed-job records.
///
/// Semantically a `Vec<JobRecord>`, physically six parallel columns
/// (ids, interned function bytes, worker indices, and three µs
/// timestamps) — [`JobTable::BYTES_PER_JOB`] = 37 bytes per completion
/// against 48 for the array-of-structs layout, and the function column
/// is one byte instead of a padded enum. Rows are append-only and
/// reconstructed on demand as [`JobRecord`] values, so every consumer
/// (aggregation, percentiles, the bit-compat golden tests) sees the
/// exact records the old vector held.
///
/// # Examples
///
/// ```
/// use microfaas::job::{Job, JobRecord, JobTable};
/// use microfaas_sim::{SimDuration, SimTime};
/// use microfaas_workloads::FunctionId;
///
/// let record = JobRecord {
///     job: Job { id: 7, function: FunctionId::MatMul },
///     worker: 3,
///     started: SimTime::from_millis(10),
///     exec: SimDuration::from_millis(100),
///     overhead: SimDuration::from_millis(5),
/// };
/// let table: JobTable = std::iter::once(record).collect();
/// assert_eq!(table.len(), 1);
/// assert_eq!(table.iter().next(), Some(record));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobTable {
    ids: Vec<u64>,
    functions: Vec<u8>,
    workers: Vec<u32>,
    started_us: Vec<u64>,
    exec_us: Vec<u64>,
    overhead_us: Vec<u64>,
}

impl JobTable {
    /// Column bytes per completed job (8 id + 1 function + 4 worker +
    /// 3 × 8 µs timestamps) — the figure `docs/SCALING.md` budgets with.
    pub const BYTES_PER_JOB: usize = 37;

    /// Creates an empty table.
    pub fn new() -> Self {
        JobTable::default()
    }

    /// Creates an empty table with room for `capacity` completions in
    /// every column.
    pub fn with_capacity(capacity: usize) -> Self {
        JobTable {
            ids: Vec::with_capacity(capacity),
            functions: Vec::with_capacity(capacity),
            workers: Vec::with_capacity(capacity),
            started_us: Vec::with_capacity(capacity),
            exec_us: Vec::with_capacity(capacity),
            overhead_us: Vec::with_capacity(capacity),
        }
    }

    /// Appends one completion.
    pub fn push(&mut self, record: JobRecord) {
        self.ids.push(record.job.id);
        self.functions.push(record.job.function.index());
        self.workers.push(record.worker as u32);
        self.started_us.push(record.started.as_micros());
        self.exec_us.push(record.exec.as_micros());
        self.overhead_us.push(record.overhead.as_micros());
    }

    /// Number of completions stored.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns true if no completions were recorded.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Reconstructs row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> JobRecord {
        JobRecord {
            job: Job {
                id: self.ids[i],
                function: FunctionId::from_index(self.functions[i]),
            },
            worker: self.workers[i] as usize,
            started: SimTime::from_micros(self.started_us[i]),
            exec: SimDuration::from_micros(self.exec_us[i]),
            overhead: SimDuration::from_micros(self.overhead_us[i]),
        }
    }

    /// Iterates the rows in completion order, reconstructing each
    /// [`JobRecord`] by value.
    pub fn iter(&self) -> Rows<'_> {
        Rows {
            table: self,
            range: 0..self.len(),
        }
    }
}

/// Iterator over [`JobTable`] rows, yielding reconstructed
/// [`JobRecord`]s by value.
#[derive(Debug, Clone)]
pub struct Rows<'a> {
    table: &'a JobTable,
    range: std::ops::Range<usize>,
}

impl Iterator for Rows<'_> {
    type Item = JobRecord;

    fn next(&mut self) -> Option<JobRecord> {
        self.range.next().map(|i| self.table.get(i))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl FromIterator<JobRecord> for JobTable {
    fn from_iter<I: IntoIterator<Item = JobRecord>>(iter: I) -> Self {
        let mut table = JobTable::new();
        table.extend(iter);
        table
    }
}

impl Extend<JobRecord> for JobTable {
    fn extend<I: IntoIterator<Item = JobRecord>>(&mut self, iter: I) {
        for record in iter {
            self.push(record);
        }
    }
}

impl<'a> IntoIterator for &'a JobTable {
    type Item = JobRecord;
    type IntoIter = Rows<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Aggregated per-function timing (one Fig. 3 bar pair).
#[derive(Debug, Clone, Default)]
pub struct FunctionStats {
    /// Execution-time distribution in milliseconds.
    pub exec_ms: OnlineStats,
    /// Overhead distribution in milliseconds.
    pub overhead_ms: OnlineStats,
}

impl FunctionStats {
    /// Records one completed job.
    pub fn record(&mut self, record: &JobRecord) {
        self.exec_ms.record(record.exec.as_millis_f64());
        self.overhead_ms.record(record.overhead.as_millis_f64());
    }

    /// Mean total (exec + overhead) in milliseconds.
    pub fn mean_total_ms(&self) -> f64 {
        self.exec_ms.mean() + self.overhead_ms.mean()
    }

    /// Number of completed invocations.
    pub fn count(&self) -> u64 {
        self.exec_ms.count()
    }
}

/// The orchestration plane's job queues under a chosen assignment policy.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    mode: crate::config::Assignment,
    shared: std::collections::VecDeque<Job>,
    per_worker: Vec<std::collections::VecDeque<Job>>,
}

impl Dispatcher {
    /// Distributes `jobs` over `workers` queues according to `mode`
    /// with every job weighted equally. Engines that know per-function
    /// costs use [`Dispatcher::with_weights`] so `LeastLoaded` balances
    /// expected seconds instead of job counts.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(
        mode: crate::config::Assignment,
        workers: usize,
        jobs: Vec<Job>,
        rng: &mut microfaas_sim::Rng,
    ) -> Self {
        Self::with_weights(mode, workers, jobs, rng, |_| 1.0)
    }

    /// Distributes `jobs` over `workers` queues according to `mode`.
    ///
    /// `WorkConserving` keeps the single shared FIFO; every other
    /// [`PlacementKind`](crate::config::Assignment) places each job
    /// statically through the `microfaas-sched` policy, with `weight`
    /// supplying the expected cost a `LeastLoaded` policy balances.
    ///
    /// Determinism: `rng` is the simulation stream, and the only policy
    /// that draws from it is the legacy `RandomStatic` — exactly one
    /// `index(workers)` per job, the historical sequence the bit-compat
    /// goldens pin. The four new placements are deterministic picks.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_weights(
        mode: crate::config::Assignment,
        workers: usize,
        jobs: Vec<Job>,
        rng: &mut microfaas_sim::Rng,
        weight: impl Fn(FunctionId) -> f64,
    ) -> Self {
        assert!(workers > 0, "dispatcher needs at least one worker");
        let mut placement = microfaas_sched::placement(mode);
        // Reserve each queue for its expected share up front (the full
        // workload for the shared queue, jobs/workers plus slack for the
        // static splits) so dispatch never regrows a ring buffer.
        let (shared_cap, per_worker_cap) = if placement.shared_queue() {
            (jobs.len(), 0)
        } else {
            (0, jobs.len() / workers + workers)
        };
        let mut dispatcher = Dispatcher {
            mode,
            shared: std::collections::VecDeque::with_capacity(shared_cap),
            per_worker: vec![std::collections::VecDeque::with_capacity(per_worker_cap); workers],
        };
        if placement.shared_queue() {
            dispatcher.shared.extend(jobs);
        } else {
            // A worker holding at least one job boots at t = 0, so the
            // packing policies treat "has work" as "will be warm".
            let mut views = vec![
                microfaas_sched::NodeView {
                    queued: 0,
                    busy: false,
                    powered: false,
                    load: 0.0,
                };
                workers
            ];
            for job in jobs {
                let w = placement.place(&views, rng);
                views[w].queued += 1;
                views[w].load += weight(job.function);
                views[w].powered = true;
                dispatcher.per_worker[w].push_back(job);
            }
        }
        dispatcher
    }

    /// Whether this dispatcher runs one shared FIFO (work-conserving)
    /// instead of static per-worker queues.
    fn is_shared(&self) -> bool {
        self.mode == crate::config::Assignment::WorkConserving
    }

    /// Whether worker `w` has any work available.
    pub fn has_work(&self, w: usize) -> bool {
        if self.is_shared() {
            !self.shared.is_empty()
        } else {
            !self.per_worker[w].is_empty()
        }
    }

    /// Takes the next job for worker `w`, if any.
    pub fn pull(&mut self, w: usize) -> Option<Job> {
        if self.is_shared() {
            self.shared.pop_front()
        } else {
            self.per_worker[w].pop_front()
        }
    }

    /// Jobs still queued across all workers.
    pub fn remaining(&self) -> usize {
        self.shared.len() + self.per_worker.iter().map(|q| q.len()).sum::<usize>()
    }

    /// Puts a recovered job back at the *head* of worker `w`'s queue so
    /// a retried invocation runs before fresh arrivals.
    pub fn requeue_front(&mut self, w: usize, job: Job) {
        if self.is_shared() {
            self.shared.push_front(job);
        } else {
            self.per_worker[w].push_front(job);
        }
    }

    /// Appends a job to worker `w`'s queue (redistribution target).
    pub fn enqueue_back(&mut self, w: usize, job: Job) {
        if self.is_shared() {
            self.shared.push_back(job);
        } else {
            self.per_worker[w].push_back(job);
        }
    }

    /// Removes every queued job matching `drop`, returning them in
    /// deterministic order (shared queue first, then per-worker queues
    /// by index). Used for graceful degradation under lost capacity.
    pub fn shed_where(&mut self, mut drop: impl FnMut(&Job) -> bool) -> Vec<Job> {
        let mut shed = Vec::new();
        let mut strain = |queue: &mut std::collections::VecDeque<Job>| {
            let mut kept = std::collections::VecDeque::with_capacity(queue.len());
            for job in queue.drain(..) {
                if drop(&job) {
                    shed.push(job);
                } else {
                    kept.push_back(job);
                }
            }
            *queue = kept;
        };
        strain(&mut self.shared);
        for queue in &mut self.per_worker {
            strain(queue);
        }
        shed
    }

    /// Drains everything statically assigned to a dead worker so the
    /// orchestrator can redistribute it. The shared (work-conserving)
    /// queue is untouched: surviving workers already pull from it.
    pub fn drain_worker(&mut self, w: usize) -> Vec<Job> {
        self.per_worker[w].drain(..).collect()
    }

    /// Iterates the static `(worker, job)` placements, worker-major
    /// (empty for the shared-queue policy, which places at pull time).
    /// The engines trace these as `placement_decision` events when a
    /// non-default policy is active.
    pub fn placements(&self) -> impl Iterator<Item = (usize, &Job)> + '_ {
        self.per_worker
            .iter()
            .enumerate()
            .flat_map(|(w, queue)| queue.iter().map(move |job| (w, job)))
    }
}

/// Builds the per-function aggregation from completed-job rows.
pub fn aggregate(records: &JobTable) -> BTreeMap<FunctionId, FunctionStats> {
    let mut map: BTreeMap<FunctionId, FunctionStats> = BTreeMap::new();
    for record in records {
        map.entry(record.job.function).or_default().record(&record);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(function: FunctionId, exec_ms: u64, overhead_ms: u64) -> JobRecord {
        JobRecord {
            job: Job { id: 0, function },
            worker: 0,
            started: SimTime::ZERO,
            exec: SimDuration::from_millis(exec_ms),
            overhead: SimDuration::from_millis(overhead_ms),
        }
    }

    #[test]
    fn job_table_round_trips_every_column() {
        let records: Vec<JobRecord> = FunctionId::ALL
            .iter()
            .enumerate()
            .map(|(i, &function)| JobRecord {
                job: {
                    Job {
                        id: i as u64 * 1_000_000_007,
                        function,
                    }
                },
                worker: i * 13,
                started: SimTime::from_micros(i as u64 * 17),
                exec: SimDuration::from_micros(i as u64 * 19),
                overhead: SimDuration::from_micros(i as u64 * 23),
            })
            .collect();
        let table: JobTable = records.iter().copied().collect();
        assert_eq!(table.len(), records.len());
        assert!(!table.is_empty());
        assert!(table.iter().eq(records.iter().copied()));
        assert_eq!(table.get(3), records[3]);
        let clone = table.clone();
        assert_eq!(clone, table, "column-wise equality");
    }

    #[test]
    fn total_is_exec_plus_overhead() {
        assert_eq!(
            rec(FunctionId::FloatOps, 100, 25).total(),
            SimDuration::from_millis(125)
        );
    }

    #[test]
    fn requeue_front_jumps_the_line() {
        let mut rng = microfaas_sim::Rng::new(1);
        let jobs: Vec<Job> = (0..4)
            .map(|id| Job {
                id,
                function: FunctionId::FloatOps,
            })
            .collect();
        let mut d = Dispatcher::new(crate::config::Assignment::WorkConserving, 2, jobs, &mut rng);
        let retried = Job {
            id: 99,
            function: FunctionId::CascSha,
        };
        d.requeue_front(0, retried);
        assert_eq!(d.pull(1), Some(retried), "retry runs before fresh work");
        assert_eq!(d.remaining(), 4);
    }

    #[test]
    fn shed_where_keeps_order_of_survivors() {
        let mut rng = microfaas_sim::Rng::new(2);
        let jobs: Vec<Job> = (0..6)
            .map(|id| Job {
                id,
                function: if id % 2 == 0 {
                    FunctionId::MatMul
                } else {
                    FunctionId::RedisInsert
                },
            })
            .collect();
        let mut d = Dispatcher::new(crate::config::Assignment::WorkConserving, 2, jobs, &mut rng);
        let shed = d.shed_where(|job| job.function == FunctionId::MatMul);
        assert_eq!(shed.iter().map(|j| j.id).collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(d.pull(0).map(|j| j.id), Some(1), "survivors keep order");
        assert_eq!(d.remaining(), 2);
    }

    #[test]
    fn drain_worker_empties_only_the_static_queue() {
        let mut rng = microfaas_sim::Rng::new(3);
        let jobs: Vec<Job> = (0..10)
            .map(|id| Job {
                id,
                function: FunctionId::FloatOps,
            })
            .collect();
        let mut d = Dispatcher::new(crate::config::Assignment::RandomStatic, 2, jobs, &mut rng);
        let before = d.remaining();
        let drained = d.drain_worker(0);
        assert!(!drained.is_empty(), "seed 3 assigns worker 0 some jobs");
        assert_eq!(d.remaining(), before - drained.len());
        assert!(!d.has_work(0));
        for job in drained {
            d.enqueue_back(1, job);
        }
        assert_eq!(d.remaining(), before, "redistribution conserves jobs");
    }

    #[test]
    fn random_static_with_more_workers_than_jobs() {
        // 3 jobs across 8 workers: every job must land somewhere, most
        // workers stay empty, and the empty queues behave (no work, no
        // panic on pull/drain).
        let mut rng = microfaas_sim::Rng::new(5);
        let jobs: Vec<Job> = (0..3)
            .map(|id| Job {
                id,
                function: FunctionId::FloatOps,
            })
            .collect();
        let mut d = Dispatcher::new(crate::config::Assignment::RandomStatic, 8, jobs, &mut rng);
        assert_eq!(d.remaining(), 3);
        let occupied = (0..8).filter(|&w| d.has_work(w)).count();
        assert!((1..=3).contains(&occupied));
        let mut pulled = 0;
        for w in 0..8 {
            if !d.has_work(w) {
                assert_eq!(d.pull(w), None, "empty queue pulls nothing");
                assert!(d.drain_worker(w).is_empty());
            }
            while let Some(_job) = d.pull(w) {
                pulled += 1;
            }
        }
        assert_eq!(pulled, 3, "no job may vanish");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn drain_after_requeue_recovers_the_crashed_job_first() {
        // A mid-job crash requeues the in-flight job at the head of its
        // worker's queue; if the worker then never comes back, draining
        // it must surface that job *first* so redistribution preserves
        // the retry-before-fresh-work ordering.
        let mut rng = microfaas_sim::Rng::new(3);
        let jobs: Vec<Job> = (0..10)
            .map(|id| Job {
                id,
                function: FunctionId::FloatOps,
            })
            .collect();
        let mut d = Dispatcher::new(crate::config::Assignment::RandomStatic, 2, jobs, &mut rng);
        let in_flight = d.pull(0).expect("seed 3 assigns worker 0 work");
        let queued_behind = d.remaining();
        d.requeue_front(0, in_flight);
        assert_eq!(d.remaining(), queued_behind + 1);
        let drained = d.drain_worker(0);
        assert_eq!(
            drained.first(),
            Some(&in_flight),
            "the crashed job leads the drained queue"
        );
        assert!(!d.has_work(0), "the dead worker's queue is empty");
        for job in drained {
            d.enqueue_back(1, job);
        }
        assert_eq!(
            d.remaining(),
            queued_behind + 1,
            "redistribution conserves jobs"
        );
        let mut survivors = Vec::new();
        while let Some(job) = d.pull(1) {
            survivors.push(job);
        }
        assert!(
            survivors.contains(&in_flight),
            "the recovered job reaches the surviving worker"
        );
    }

    #[test]
    fn least_loaded_balances_by_weight_not_count() {
        let mut rng = microfaas_sim::Rng::new(1);
        // Four heavy jobs then four light ones: weighted placement puts
        // each heavy job on its own worker, then packs the light jobs
        // onto the emptiest weighted queues.
        let jobs: Vec<Job> = (0..4)
            .map(|id| Job {
                id,
                function: FunctionId::MatMul,
            })
            .chain((4..8).map(|id| Job {
                id,
                function: FunctionId::RegexMatch,
            }))
            .collect();
        let d = Dispatcher::with_weights(
            crate::config::Assignment::LeastLoaded,
            4,
            jobs,
            &mut rng,
            |f| if f == FunctionId::MatMul { 10.0 } else { 1.0 },
        );
        for w in 0..4 {
            assert!(d.has_work(w), "every worker gets a share");
        }
        assert_eq!(d.remaining(), 8);
    }

    #[test]
    fn join_shortest_queue_round_robins_a_uniform_batch() {
        let mut rng = microfaas_sim::Rng::new(1);
        let jobs: Vec<Job> = (0..9)
            .map(|id| Job {
                id,
                function: FunctionId::FloatOps,
            })
            .collect();
        let mut d = Dispatcher::new(
            crate::config::Assignment::JoinShortestQueue,
            3,
            jobs,
            &mut rng,
        );
        // 9 jobs over 3 workers, ties to the lowest index: 3 each, and
        // worker 0 holds jobs 0, 3, 6.
        assert_eq!(d.pull(0).map(|j| j.id), Some(0));
        assert_eq!(d.pull(0).map(|j| j.id), Some(3));
        assert_eq!(d.pull(0).map(|j| j.id), Some(6));
        assert_eq!(d.pull(0), None);
    }

    #[test]
    fn warm_first_packs_the_whole_batch_onto_one_node() {
        let mut rng = microfaas_sim::Rng::new(1);
        let jobs: Vec<Job> = (0..6)
            .map(|id| Job {
                id,
                function: FunctionId::FloatOps,
            })
            .collect();
        let mut d = Dispatcher::new(crate::config::Assignment::WarmFirst, 4, jobs, &mut rng);
        assert!(d.has_work(0), "the first node warms up");
        for w in 1..4 {
            assert!(!d.has_work(w), "worker {w} never boots for a batch");
        }
        assert_eq!(d.drain_worker(0).len(), 6);
    }

    #[test]
    fn power_aware_fills_in_backlog_waves() {
        let mut rng = microfaas_sim::Rng::new(1);
        let jobs: Vec<Job> = (0..6)
            .map(|id| Job {
                id,
                function: FunctionId::FloatOps,
            })
            .collect();
        let mut d = Dispatcher::new(crate::config::Assignment::PowerAware, 4, jobs, &mut rng);
        // Packing threshold 2: six jobs warm exactly three nodes.
        assert_eq!((0..4).filter(|&w| d.has_work(w)).count(), 3);
        assert_eq!(d.drain_worker(0).len(), 2);
    }

    #[test]
    fn new_placements_leave_the_simulation_stream_untouched() {
        let jobs: Vec<Job> = (0..12)
            .map(|id| Job {
                id,
                function: FunctionId::FloatOps,
            })
            .collect();
        for mode in [
            crate::config::Assignment::WorkConserving,
            crate::config::Assignment::LeastLoaded,
            crate::config::Assignment::JoinShortestQueue,
            crate::config::Assignment::WarmFirst,
            crate::config::Assignment::PowerAware,
        ] {
            let mut rng = microfaas_sim::Rng::new(17);
            let _ = Dispatcher::new(mode, 5, jobs.clone(), &mut rng);
            let mut untouched = microfaas_sim::Rng::new(17);
            assert_eq!(
                rng.next_u64(),
                untouched.next_u64(),
                "{mode:?} must not draw from the simulation stream"
            );
        }
    }

    #[test]
    fn aggregate_groups_by_function() {
        let records: JobTable = [
            rec(FunctionId::FloatOps, 100, 10),
            rec(FunctionId::FloatOps, 200, 30),
            rec(FunctionId::CascSha, 500, 20),
        ]
        .into_iter()
        .collect();
        let stats = aggregate(&records);
        assert_eq!(stats.len(), 2);
        let fo = &stats[&FunctionId::FloatOps];
        assert_eq!(fo.count(), 2);
        assert_eq!(fo.exec_ms.mean(), 150.0);
        assert_eq!(fo.overhead_ms.mean(), 20.0);
        assert_eq!(fo.mean_total_ms(), 170.0);
    }
}
