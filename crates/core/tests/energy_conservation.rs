//! The energy-attribution subsystem's two contracts (docs/ENERGY.md):
//!
//! 1. **Conservation is bit-exact.** For arbitrary seeds, traffic
//!    shapes, placements, governors, and idle policies, the sum of
//!    per-function attributed picojoules plus the idle pool equals the
//!    whole-cluster integral exactly — integer picojoules, no epsilon.
//!    The same holds per tenant, and the integer ledger agrees with the
//!    f64 `EnergyMeter` to float precision.
//! 2. **Off = inert.** `run_open_loop` (no attributor) must stay
//!    byte-identical to the attributed run's aggregates: attribution
//!    observes the engine, it never perturbs it. Fanning attributed
//!    runs over 1 or 8 threads renders byte-identical ledger CSV.

use microfaas::openloop::{
    run_open_loop, run_open_loop_attributed, run_open_loop_conventional,
    run_open_loop_conventional_attributed, run_open_loop_streaming_attributed, ArrivalProcess,
    NullSink, OpenLoopConfig,
};
use microfaas::Popularity;
use microfaas_energy::attribution::IdlePolicy;
use microfaas_sched::{BudgetAction, GovernorKind, PlacementKind};
use microfaas_sim::exec::par_map_indexed;
use microfaas_sim::{Jobs, SimDuration};
use proptest::prelude::*;

/// The governor menu the proptest samples from — every node policy
/// family plus a binding energy budget.
fn governor(idx: usize) -> GovernorKind {
    match idx % 4 {
        0 => GovernorKind::RebootPerJob,
        1 => GovernorKind::KeepAlive {
            idle_timeout: SimDuration::from_secs(10),
        },
        2 => GovernorKind::AlwaysOn,
        _ => GovernorKind::EnergyBudget {
            cap_w: 1.0,
            burst_j: 25.0,
            action: BudgetAction::Shed,
        },
    }
}

/// Traffic-shape menu: steady Poisson, the paper's fixed batch, and a
/// bursty MMPP.
fn arrival(idx: usize) -> ArrivalProcess {
    match idx % 3 {
        0 => ArrivalProcess::Poisson { per_second: 1.5 },
        1 => ArrivalProcess::EverySecond { jobs_per_tick: 1 },
        _ => ArrivalProcess::parse("mmpp:0.2,3,60,15").expect("valid spec"),
    }
}

fn config(seed: u64, shape: usize, placement: usize, gov: usize) -> OpenLoopConfig {
    let mut config = OpenLoopConfig::paper_arrangement(1, SimDuration::from_secs(120), seed);
    config.workers = 4;
    config.arrival = arrival(shape);
    config.scheduler = PlacementKind::ALL[placement % PlacementKind::ALL.len()];
    config.governor = governor(gov);
    config.popularity = Popularity::Zipf { exponent: 1.1 };
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The conservation invariant, re-derived from the raw accessors
    /// rather than trusting `EnergyLedger::conserves`: function rows +
    /// idle pool == total, tenant rows + idle pool == total, idle
    /// shares fit in the pool, and the integer total matches the f64
    /// meter the engine always runs.
    #[test]
    fn attribution_conserves_for_arbitrary_runs(
        seed in 0u64..10_000,
        shape in 0usize..3,
        placement in 0usize..7,
        gov in 0usize..4,
        idle in 0usize..3,
    ) {
        let config = config(seed, shape, placement, gov);
        let idle_policy = IdlePolicy::ALL[idle];
        let (run, ledger) = run_open_loop_attributed(&config, idle_policy);

        let attributed: u128 = (0..ledger.functions().len())
            .map(|f| ledger.function_attributed_pj(f))
            .sum();
        prop_assert_eq!(attributed + ledger.idle_pj(), ledger.total_pj());
        let tenant_attributed: u128 = (0..ledger.tenants().len())
            .map(|t| ledger.tenant_attributed_pj(t))
            .sum();
        prop_assert_eq!(tenant_attributed + ledger.idle_pj(), ledger.total_pj());
        let func_shares: u128 = (0..ledger.functions().len())
            .map(|f| ledger.function_idle_pj(f))
            .sum();
        prop_assert!(func_shares <= ledger.idle_pj());
        prop_assert!(ledger.conserves());

        let completions: u64 = (0..ledger.functions().len())
            .map(|f| ledger.function_completions(f))
            .sum();
        prop_assert_eq!(completions, run.completed);

        // Integer ledger vs the f64 meter the engine always integrates
        // (`joules_per_function` is the meter total over completions).
        let meter_j = run.joules_per_function * run.completed as f64;
        let err = (ledger.total_joules() - meter_j).abs();
        prop_assert!(
            err < 1e-6 * meter_j.max(1.0),
            "ledger {} vs meter {meter_j}",
            ledger.total_joules()
        );
    }

    /// Attribution off must be inert: the plain entry point returns the
    /// same bits as the attributed run's engine-side aggregates.
    #[test]
    fn attribution_off_is_byte_identical(
        seed in 0u64..10_000,
        shape in 0usize..3,
        gov in 0usize..4,
    ) {
        let config = config(seed, shape, 0, gov);
        let plain = run_open_loop(&config);
        let (attributed, _) = run_open_loop_attributed(&config, IdlePolicy::Equal);
        prop_assert_eq!(plain.completed, attributed.completed);
        prop_assert_eq!(plain.mean_latency_s.to_bits(), attributed.mean_latency_s.to_bits());
        prop_assert_eq!(plain.p95_latency_s.to_bits(), attributed.p95_latency_s.to_bits());
        prop_assert_eq!(plain.mean_power_w.to_bits(), attributed.mean_power_w.to_bits());
        prop_assert_eq!(
            plain.joules_per_function.to_bits(),
            attributed.joules_per_function.to_bits()
        );
        prop_assert_eq!(plain.power_cycles, attributed.power_cycles);
    }
}

/// The exact-decimal ledger CSV is `--jobs`-invariant: fanning the same
/// grid of attributed runs over one thread or eight renders the same
/// bytes, row for row.
#[test]
fn ledger_csv_is_identical_across_job_counts() {
    let grid: Vec<(u64, usize, usize, usize)> = (0..8)
        .map(|i| (40 + i as u64, i % 3, i % 7, i % 4))
        .collect();
    let render = |jobs: Jobs| -> Vec<String> {
        par_map_indexed(jobs, grid.len(), |i| {
            let (seed, shape, placement, gov) = grid[i];
            let (_, ledger) = run_open_loop_attributed(
                &config(seed, shape, placement, gov),
                IdlePolicy::ALL[i % 3],
            );
            ledger.to_csv()
        })
    };
    let serial = render(Jobs::new(1));
    let parallel = render(Jobs::new(8));
    assert_eq!(serial, parallel, "ledger CSV must not depend on --jobs");
    for csv in &serial {
        assert!(csv.starts_with("idle_policy,function,completions,"));
    }
}

/// The streaming (O(1)-memory) path finalizes the same ledger bytes as
/// the exact path.
#[test]
fn streaming_ledger_matches_exact() {
    let config = config(77, 0, 3, 3);
    let (_, exact) = run_open_loop_attributed(&config, IdlePolicy::UsageWeighted);
    let (_, streamed) =
        run_open_loop_streaming_attributed(&config, &mut NullSink, IdlePolicy::UsageWeighted);
    assert_eq!(exact.to_csv(), streamed.to_csv());
    assert_eq!(exact.render_prometheus(), streamed.render_prometheus());
}

/// The conventional (always-on host) engine conserves too, and its
/// attributor is just as inert.
#[test]
fn conventional_attribution_conserves_and_is_inert() {
    let mut cfg = config(91, 0, 0, 0);
    cfg.governor = GovernorKind::RebootPerJob;
    let plain = run_open_loop_conventional(&cfg, 8);
    let (attributed, ledger) = run_open_loop_conventional_attributed(&cfg, 8, IdlePolicy::Equal);
    assert_eq!(plain.completed, attributed.completed);
    assert_eq!(
        plain.joules_per_function.to_bits(),
        attributed.joules_per_function.to_bits()
    );
    assert!(ledger.conserves());
    let meter_j = attributed.joules_per_function * attributed.completed as f64;
    let err = (ledger.total_joules() - meter_j).abs();
    assert!(err < 1e-6 * meter_j.max(1.0), "ledger vs meter: {err}");
}
