//! Backward-compatibility pin for the scheduling subsystem.
//!
//! The golden table below hashes every observable surface of a run:
//! aggregate results (as exact f64 bit patterns), the full JSON trace,
//! and the Prometheus exposition. The paper-default policies —
//! `WorkConserving` / `RandomStatic` placement under the
//! `RebootPerJob` governor — must reproduce all of them bit for bit;
//! the subsystem is required to be invisible until a non-default
//! policy is selected.
//!
//! The aggregate columns date from the commit *before*
//! `microfaas-sched` existed and have never moved. The trace and
//! exposition hashes were re-captured when span tracing landed: the
//! `wake_requested` / `response_sent` causal anchors and the `# HELP`
//! exposition lines change the bytes without touching any simulated
//! decision — the unchanged makespan/joules/records columns prove it.

use std::sync::Arc;

use microfaas::config::{Assignment, WorkloadMix};
use microfaas::conventional::{run_conventional_with, ConventionalConfig};
use microfaas::micro::{run_microfaas_with, MicroFaasConfig};
use microfaas::openloop::{run_open_loop_with, ArrivalProcess, OpenLoopConfig, SchedulerPolicy};
use microfaas_sim::trace::{Observer, TraceBuffer};
use microfaas_sim::{MetricsRegistry, SimDuration};
use proptest::prelude::*;

/// FNV-1a 64-bit, the same hash the capture harness used.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// `(makespan_bits, joules_bits, records, trace_fnv, expo_fnv)` for a
/// closed-loop run.
type ClosedFingerprint = (u64, u64, usize, u64, u64);

fn micro_fingerprint(assignment: Assignment, seed: u64) -> ClosedFingerprint {
    let quick: Arc<WorkloadMix> = Arc::new(WorkloadMix::quick());
    let mut config = MicroFaasConfig::paper_prototype(quick, seed);
    config.assignment = assignment;
    let mut trace = TraceBuffer::new(1 << 21);
    let mut metrics = MetricsRegistry::new();
    let run = run_microfaas_with(&config, &mut Observer::full(&mut trace, &mut metrics));
    (
        run.makespan.as_secs_f64().to_bits(),
        run.energy.total_joules.to_bits(),
        run.records.len(),
        fnv1a(trace.to_json_lines().as_bytes()),
        fnv1a(metrics.render_prometheus().as_bytes()),
    )
}

fn conv_fingerprint(assignment: Assignment, seed: u64) -> ClosedFingerprint {
    let quick: Arc<WorkloadMix> = Arc::new(WorkloadMix::quick());
    let mut config = ConventionalConfig::paper_baseline(quick, seed);
    config.assignment = assignment;
    let mut trace = TraceBuffer::new(1 << 21);
    let mut metrics = MetricsRegistry::new();
    let run = run_conventional_with(&config, &mut Observer::full(&mut trace, &mut metrics));
    (
        run.makespan.as_secs_f64().to_bits(),
        run.energy.total_joules.to_bits(),
        run.records.len(),
        fnv1a(trace.to_json_lines().as_bytes()),
        fnv1a(metrics.render_prometheus().as_bytes()),
    )
}

/// `(mean_latency_bits, jpf_bits, completed, power_cycles, trace_fnv,
/// expo_fnv)` for an open-loop run.
type OpenFingerprint = (u64, u64, u64, u64, u64, u64);

fn open_fingerprint(scheduler: SchedulerPolicy, seed: u64) -> OpenFingerprint {
    let mut config = OpenLoopConfig::paper_arrangement(2, SimDuration::from_secs(600), seed);
    config.scheduler = scheduler;
    config.arrival = ArrivalProcess::Poisson { per_second: 2.0 };
    let mut trace = TraceBuffer::new(1 << 21);
    let mut metrics = MetricsRegistry::new();
    let run = run_open_loop_with(&config, &mut Observer::full(&mut trace, &mut metrics));
    (
        run.mean_latency_s.to_bits(),
        run.joules_per_function.to_bits(),
        run.completed,
        run.power_cycles,
        fnv1a(trace.to_json_lines().as_bytes()),
        fnv1a(metrics.render_prometheus().as_bytes()),
    )
}

fn assignment(label: &str) -> Assignment {
    match label {
        "wc" => Assignment::WorkConserving,
        "rs" => Assignment::RandomStatic,
        other => panic!("unknown assignment label {other}"),
    }
}

#[test]
fn micro_defaults_are_bit_identical_to_pre_subsystem_runs() {
    // Captured by tools/capture_goldens (since deleted) on the last
    // commit before crates/sched existed.
    let goldens: [(&str, u64, u64, u64, usize, u64, u64); 6] = [
        (
            "wc",
            3,
            0x4070_1985_e5f3_0e80,
            0x40b3_8beb_b9c3_85af,
            850,
            0xd3dd_b71b_4638_1f19,
            0xebc6_8c6c_68e1_23e3,
        ),
        (
            "rs",
            3,
            0x4072_c8a4_ba94_bbe4,
            0x40b3_7999_7619_0bf3,
            850,
            0xc54c_3359_64c1_5f17,
            0x67e8_f80a_bd5f_26cd,
        ),
        (
            "wc",
            7,
            0x4070_14c8_7b99_d452,
            0x40b3_8816_596c_82e9,
            850,
            0xa81c_5bed_a989_b2c1,
            0x7784_956d_cb91_dd4b,
        ),
        (
            "rs",
            7,
            0x4072_7ec9_b1fa_b96f,
            0x40b3_7a33_5ddd_d6be,
            850,
            0xc551_2df4_8be4_e67c,
            0xe59f_28c3_6dc0_cc84,
        ),
        (
            "wc",
            11,
            0x4070_156c_e896_56ef,
            0x40b3_85e7_d5b1_4cf2,
            850,
            0x5482_b55e_44b3_fd11,
            0x4429_7f94_4426_80ad,
        ),
        (
            "rs",
            11,
            0x4072_6401_ede1_198b,
            0x40b3_7669_ae0a_1409,
            850,
            0xd640_a489_4778_76a3,
            0xeda6_4503_97c0_f4c1,
        ),
    ];
    for (label, seed, makespan, joules, records, trace_fnv, expo_fnv) in goldens {
        let got = micro_fingerprint(assignment(label), seed);
        assert_eq!(
            got,
            (makespan, joules, records, trace_fnv, expo_fnv),
            "micro {label} seed {seed} diverged from the pre-subsystem golden"
        );
    }
}

#[test]
fn conventional_defaults_are_bit_identical_to_pre_subsystem_runs() {
    let goldens: [(&str, u64, u64, u64, usize, u64, u64); 6] = [
        (
            "wc",
            3,
            0x406e_6e3e_4473_cd57,
            0x40da_dedd_71c1_0d77,
            850,
            0x9097_599d_8667_24bb,
            0x87f3_f6a8_cd08_3b97,
        ),
        (
            "rs",
            3,
            0x4070_4b0f_7db6_e504,
            0x40db_df63_71c9_70fa,
            850,
            0x0afc_a468_3908_9ba2,
            0xea4e_1567_ca6c_6236,
        ),
        (
            "wc",
            7,
            0x406e_6f53_f9e7_b80b,
            0x40da_e05b_3743_632c,
            850,
            0x1a75_c3a0_f6ec_0d96,
            0xfd6c_7722_35e2_c7a6,
        ),
        (
            "rs",
            7,
            0x4070_400b_8e08_6bdf,
            0x40db_da1b_e1f1_f7f6,
            850,
            0x3d93_dc1b_ff2f_11b3,
            0x057f_af77_f2c2_c60b,
        ),
        (
            "wc",
            11,
            0x406e_7451_5ce9_e5e2,
            0x40da_e1d9_a86c_9b33,
            850,
            0x8b65_5b79_2461_129a,
            0x37a5_afc3_8d38_544b,
        ),
        (
            "rs",
            11,
            0x406f_48f2_1709_3101,
            0x40db_46ef_18f2_3f5a,
            850,
            0xde69_d87c_b420_fa8c,
            0x31ad_d38a_f734_df95,
        ),
    ];
    for (label, seed, makespan, joules, records, trace_fnv, expo_fnv) in goldens {
        let got = conv_fingerprint(assignment(label), seed);
        assert_eq!(
            got,
            (makespan, joules, records, trace_fnv, expo_fnv),
            "conventional {label} seed {seed} diverged from the pre-subsystem golden"
        );
    }
}

#[test]
fn open_loop_defaults_are_bit_identical_to_pre_subsystem_runs() {
    // Label, seed, then the OpenFingerprint fields flattened:
    // latency bits, jpf bits, completed, power cycles, trace FNV,
    // exposition FNV. "rq" is the historical RandomQueue spelling,
    // now RandomStatic.
    type OpenGolden = (&'static str, u64, u64, u64, u64, u64, u64, u64);
    let goldens: [OpenGolden; 6] = [
        (
            "rq",
            7,
            0x4013_c792_61ce_d88e,
            0x4016_f41d_4c1e_6ac9,
            1168,
            519,
            0x1aa3_d01d_2c84_fc12,
            0x1c1f_25c9_144d_1ab6,
        ),
        (
            "ll",
            7,
            0x4009_9dd5_67e9_eb02,
            0x4017_ad18_bc78_a57c,
            1170,
            1093,
            0x87a0_f978_9570_e46c,
            0xa63f_2858_accb_9844,
        ),
        (
            "pa",
            7,
            0x4013_d8ed_6830_9d62,
            0x4017_7d91_ebeb_f5f5,
            1215,
            192,
            0x1d60_7dc6_964c_dbd9,
            0x8f99_64fe_e7a9_f85b,
        ),
        (
            "rq",
            2022,
            0x4016_4764_5017_452c,
            0x4017_7be3_1baa_0386,
            1187,
            494,
            0x63d2_638f_8191_cae4,
            0x94bd_5b6a_74ee_7573,
        ),
        (
            "ll",
            2022,
            0x4008_aaea_81e3_b5ce,
            0x4017_1716_baa1_50e2,
            1192,
            1133,
            0x006b_c296_f129_289b,
            0x4ce4_6db0_8271_7886,
        ),
        (
            "pa",
            2022,
            0x4013_d2fd_cb97_4adc,
            0x4017_5e95_2096_e378,
            1151,
            175,
            0x4a12_3abd_43fe_8f74,
            0xf908_278b_9916_0b1c,
        ),
    ];
    for (label, seed, latency, jpf, completed, cycles, trace_fnv, expo_fnv) in goldens {
        let scheduler = match label {
            "rq" => SchedulerPolicy::RandomStatic,
            "ll" => SchedulerPolicy::LeastLoaded,
            "pa" => SchedulerPolicy::PowerAware,
            other => panic!("unknown scheduler label {other}"),
        };
        let got = open_fingerprint(scheduler, seed);
        assert_eq!(
            got,
            (latency, jpf, completed, cycles, trace_fnv, expo_fnv),
            "open-loop {label} seed {seed} diverged from the pre-subsystem golden"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed, not just the pinned ones: equal seeds give equal bits
    /// on every observable surface, for both default placements.
    #[test]
    fn micro_default_runs_are_deterministic(seed in 0u64..10_000) {
        for assignment in [Assignment::WorkConserving, Assignment::RandomStatic] {
            let a = micro_fingerprint(assignment, seed);
            let b = micro_fingerprint(assignment, seed);
            prop_assert_eq!(a, b);
        }
    }

    /// The default governor leaves zero footprint: no scheduler metric
    /// families, no scheduler trace events, for any seed.
    #[test]
    fn default_policies_emit_no_scheduler_telemetry(seed in 0u64..10_000) {
        let quick: Arc<WorkloadMix> = Arc::new(WorkloadMix::quick());
        let config = MicroFaasConfig::paper_prototype(quick, seed);
        let mut trace = TraceBuffer::new(1 << 21);
        let mut metrics = MetricsRegistry::new();
        run_microfaas_with(&config, &mut Observer::full(&mut trace, &mut metrics));
        let expo = metrics.render_prometheus();
        prop_assert!(!expo.contains("sched_"), "default run leaked sched metrics");
        let lines = trace.to_json_lines();
        prop_assert!(!lines.contains("placement_decision"));
        prop_assert!(!lines.contains("governor_transition"));
    }

    /// Open loop: the historical schedulers under the default governor
    /// are deterministic for any seed.
    #[test]
    fn open_loop_default_runs_are_deterministic(seed in 0u64..10_000) {
        for scheduler in [
            SchedulerPolicy::RandomStatic,
            SchedulerPolicy::LeastLoaded,
            SchedulerPolicy::PowerAware,
        ] {
            let a = open_fingerprint(scheduler, seed);
            let b = open_fingerprint(scheduler, seed);
            prop_assert_eq!(a, b);
        }
    }
}
