//! The result cache's two determinism contracts (docs/CACHING.md):
//!
//! 1. **Off = inert.** `CacheConfig::Off` (the default) leaves every
//!    observable surface byte-identical to pre-cache builds: sweeps
//!    render the same CSV bytes as the uncached entry points, traces
//!    contain no cache events, and Prometheus expositions contain no
//!    `cache` substring. (The 18 golden fingerprints in
//!    `sched_compat.rs` pin the absolute bytes; this file pins the
//!    cache-specific surfaces.)
//! 2. **On = `--jobs`-invariant.** Cached runs are bit-identical at
//!    every job count: the same sweep serialized through one thread or
//!    fanned over eight must produce the same CSV bytes, hit counts,
//!    and derived columns.

use microfaas::cache::{CacheConfig, ResultCache};
use microfaas::experiment::{
    policy_sweep_cached_jobs, policy_sweep_csv, policy_sweep_jobs, scenario_sweep_cached_jobs,
    scenario_sweep_csv,
};
use microfaas::openloop::{run_open_loop, ArrivalProcess, OpenLoopConfig};
use microfaas::Popularity;
use microfaas::Scenario;
use microfaas_sim::trace::{Observer, TraceBuffer};
use microfaas_sim::{Jobs, MetricsRegistry, SimDuration};
use proptest::prelude::*;

fn cached_config(seed: u64, rate: f64, cache: CacheConfig) -> OpenLoopConfig {
    let mut config = OpenLoopConfig::paper_arrangement(0, SimDuration::from_secs(120), seed);
    config.arrival = ArrivalProcess::Poisson { per_second: rate };
    config.popularity = Popularity::Zipf { exponent: 1.1 };
    config.cache = cache;
    config
}

#[test]
fn off_spec_is_the_default_config() {
    assert_eq!(CacheConfig::parse("off").unwrap(), CacheConfig::Off);
    assert_eq!(CacheConfig::default(), CacheConfig::Off);
    assert!(!CacheConfig::Off.enabled());
    assert!(ResultCache::<u64>::from_config(&CacheConfig::Off).is_none());
}

#[test]
fn cache_off_traces_and_expositions_are_cache_free() {
    let config = cached_config(7, 2.0, CacheConfig::Off);
    let mut trace = TraceBuffer::new(1 << 20);
    let mut metrics = MetricsRegistry::new();
    let run = microfaas::openloop::run_open_loop_with(
        &config,
        &mut Observer::full(&mut trace, &mut metrics),
    );
    assert_eq!(run.cache_hits + run.cache_misses + run.cache_coalesced, 0);
    let json = trace.to_json_lines();
    for kind in ["cache_hit", "cache_miss", "coalesced"] {
        assert!(!json.contains(kind), "{kind} leaked into a cache-off trace");
    }
    assert!(
        !metrics.render_prometheus().contains("cache"),
        "cache metric leaked into a cache-off exposition"
    );
}

#[test]
fn cache_off_sweeps_match_the_uncached_entry_points_byte_for_byte() {
    let duration = SimDuration::from_secs(60);
    let plain = policy_sweep_jobs(0.5, duration, 4, 7, Jobs::serial());
    let off = policy_sweep_cached_jobs(0.5, duration, 4, 7, &CacheConfig::Off, Jobs::serial());
    assert_eq!(policy_sweep_csv(&plain), policy_sweep_csv(&off));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cached single runs: the same seed gives the same bits whether
    /// the run is repeated or not, including every cache counter.
    #[test]
    fn cached_runs_are_deterministic(seed in 0u64..10_000) {
        let config = cached_config(seed, 2.0, CacheConfig::parse("lru:512,ttl=60").unwrap());
        let a = run_open_loop(&config);
        let b = run_open_loop(&config);
        prop_assert_eq!(a.mean_latency_s.to_bits(), b.mean_latency_s.to_bits());
        prop_assert_eq!(a.joules_per_function.to_bits(), b.joules_per_function.to_bits());
        prop_assert_eq!(
            (a.completed, a.cache_hits, a.cache_misses, a.cache_coalesced),
            (b.completed, b.cache_hits, b.cache_misses, b.cache_coalesced)
        );
        prop_assert_eq!(
            a.cache_hits + a.cache_misses + a.cache_coalesced,
            a.completed,
            "every completion is exactly one of hit/miss/coalesced"
        );
    }

    /// Cached policy sweeps: serial and eight-way-parallel fan-out must
    /// render byte-identical CSV, hit-rate columns included.
    #[test]
    fn cached_policy_sweeps_are_jobs_invariant(seed in 0u64..1_000) {
        let cache = CacheConfig::parse("lru:1024,ttl=120").unwrap();
        let duration = SimDuration::from_secs(60);
        let serial = policy_sweep_cached_jobs(0.5, duration, 4, seed, &cache, Jobs::serial());
        let parallel = policy_sweep_cached_jobs(0.5, duration, 4, seed, &cache, Jobs::new(8));
        prop_assert_eq!(policy_sweep_csv(&serial), policy_sweep_csv(&parallel));
        prop_assert!(
            serial.iter().any(|p| p.hit_rate > 0.0),
            "a 60 s Zipf-free sweep still repeats inputs enough to hit"
        );
    }

    /// Cached scenario sweeps: same contract across the regime suite,
    /// winner column included.
    #[test]
    fn cached_scenario_sweeps_are_jobs_invariant(seed in 0u64..1_000) {
        let cache = CacheConfig::parse("lru:1024").unwrap();
        let suite = Scenario::standard_suite();
        let duration = SimDuration::from_secs(30);
        let serial =
            scenario_sweep_cached_jobs(&suite, duration, 4, seed, &cache, Jobs::serial());
        let parallel =
            scenario_sweep_cached_jobs(&suite, duration, 4, seed, &cache, Jobs::new(8));
        prop_assert_eq!(scenario_sweep_csv(&serial), scenario_sweep_csv(&parallel));
    }
}
