//! Differential test: the hierarchical timing wheel behind
//! [`EventQueue`] against a straightforward reference model (a sorted
//! list with tombstones). Random interleavings of schedule / pop /
//! cancel — including same-tick ties and delays far past the wheel's
//! horizon (which land in the overflow heap) — must produce the exact
//! pop order the reference produces, at every wheel depth.
//!
//! A 1M-event smoke test then pins the streaming property: pushing a
//! million events through the wheel in waves reuses the same slots, so
//! live occupancy (and therefore memory) stays bounded by the wave
//! size, not the event count.

use microfaas_sim::queue::{EventQueue, DEFAULT_LEVELS, MAX_LEVELS};
use microfaas_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// One step of the differential drive, with knobs chosen so shrunk
/// failures stay readable.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + delay_us`. Zero delays create same-tick ties;
    /// large delays overshoot shallow wheels into the overflow heap.
    Schedule { delay_us: u64 },
    /// Pop the earliest live event from both sides and compare.
    Pop,
    /// Cancel the `k`-th issued id (mod the issued count) when it is
    /// still live; both sides must remove exactly that event.
    Cancel { k: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Dense same-tick ties.
        (0u64..4).prop_map(|delay_us| Op::Schedule { delay_us }),
        // In-horizon spread for shallow wheels.
        (0u64..10_000).prop_map(|delay_us| Op::Schedule { delay_us }),
        // Far future: past the horizon of every wheel under test with
        // fewer than four levels (2^18 us), deep into overflow for
        // one- and two-level wheels.
        (1u64 << 14..1u64 << 22).prop_map(|delay_us| Op::Schedule { delay_us }),
        Just(Op::Pop),
        (0usize..64).prop_map(|k| Op::Cancel { k }),
    ]
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Live,
    Popped,
    Cancelled,
}

/// The reference: every scheduled event kept in a Vec, popped by a
/// linear scan for the minimum `(time, seq)`. Obviously correct,
/// obviously slow — exactly what a reference model should be.
///
/// One contract subtlety it mirrors: only cancels of *live* (pending,
/// never-cancelled) ids have a specified outcome. Cancelling a fired
/// id, or re-cancelling one whose tombstone the queue has already
/// reclaimed internally, is outside the contract — the legacy heap
/// reclaimed tombstones lazily at pop, the wheel reclaims them eagerly
/// during cascades, so the answer depends on internal timing in both.
/// The simulators never hit either case: they clear their stored
/// [`EventId`] the moment the event fires or is cancelled. The drive
/// therefore cancels live ids only, where both implementations must
/// say `true` and remove exactly that event.
#[derive(Default)]
struct ReferenceQueue {
    /// `(time_us, seq, state)`
    events: Vec<(u64, u64, State)>,
    now_us: u64,
}

impl ReferenceQueue {
    fn schedule(&mut self, at_us: u64) -> usize {
        assert!(at_us >= self.now_us, "reference never schedules backwards");
        let seq = self.events.len() as u64;
        self.events.push((at_us, seq, State::Live));
        self.events.len() - 1
    }

    fn state(&self, index: usize) -> State {
        self.events[index].2
    }

    fn cancel(&mut self, index: usize) -> bool {
        match self.events[index].2 {
            State::Live => {
                self.events[index].2 = State::Cancelled;
                true
            }
            State::Cancelled | State::Popped => {
                unreachable!("the drive only cancels live events")
            }
        }
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let (index, &(time, seq, _)) = self
            .events
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, state))| state == State::Live)
            .min_by_key(|(_, &(time, seq, _))| (time, seq))?;
        self.events[index].2 = State::Popped;
        self.now_us = time;
        Some((time, seq))
    }

    fn len(&self) -> usize {
        self.events
            .iter()
            .filter(|&&(_, _, state)| state == State::Live)
            .count()
    }
}

/// Drives one op sequence through a wheel of the given depth and the
/// reference side by side. The event payload is the schedule ordinal,
/// so pop equality checks both the timestamp *and* which event won a
/// same-tick tie.
fn drive(levels: u32, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut wheel: EventQueue<u64> = EventQueue::with_levels(levels);
    let mut reference = ReferenceQueue::default();
    // Parallel id stores: ids[i] on the wheel corresponds to ref index
    // ref_ids[i] in the reference.
    let mut ids = Vec::new();
    let mut ref_ids = Vec::new();
    let mut next_ordinal = 0u64;

    for &op in ops {
        match op {
            Op::Schedule { delay_us } => {
                let at = wheel.now() + SimDuration::from_micros(delay_us);
                ids.push(wheel.schedule(at, next_ordinal));
                ref_ids.push(reference.schedule(at.as_micros()));
                next_ordinal += 1;
            }
            Op::Pop => {
                let got = wheel.pop();
                let want = reference.pop();
                match (got, want) {
                    (None, None) => {}
                    (Some((at, ordinal)), Some((want_us, want_seq))) => {
                        prop_assert_eq!(at.as_micros(), want_us, "pop time diverged");
                        prop_assert_eq!(ordinal, want_seq, "same-tick tie order diverged");
                    }
                    (got, want) => {
                        return Err(TestCaseError::fail(format!(
                            "pop presence diverged: wheel {got:?} vs reference {want:?}"
                        )));
                    }
                }
            }
            Op::Cancel { k } => {
                if ids.is_empty() {
                    continue;
                }
                let i = k % ids.len();
                if reference.state(ref_ids[i]) != State::Live {
                    // Cancelling a fired or already-cancelled id has no
                    // specified outcome — see the ReferenceQueue docs.
                    continue;
                }
                let got = wheel.cancel(ids[i]);
                let want = reference.cancel(ref_ids[i]);
                prop_assert_eq!(got, want, "cancel outcome diverged");
                prop_assert!(got, "cancelling a live id must succeed");
            }
        }
        prop_assert_eq!(wheel.len(), reference.len(), "live count diverged");
    }

    // Drain: whatever survives must come out in identical order.
    loop {
        match (wheel.pop(), reference.pop()) {
            (None, None) => break,
            (Some((at, ordinal)), Some((want_us, want_seq))) => {
                prop_assert_eq!(at.as_micros(), want_us);
                prop_assert_eq!(ordinal, want_seq);
            }
            (got, want) => {
                return Err(TestCaseError::fail(format!(
                    "drain diverged: wheel {got:?} vs reference {want:?}"
                )));
            }
        }
    }
    prop_assert!(wheel.is_empty());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full-depth wheel (every delay in-horizon) agrees with the
    /// reference on every interleaving.
    #[test]
    fn wheel_matches_reference_at_default_depth(
        ops in prop::collection::vec(op_strategy(), 1..250),
    ) {
        drive(DEFAULT_LEVELS, &ops)?;
    }

    /// Shallow wheels force the same sequences through the overflow
    /// heap and its refill cascade; order must still match exactly.
    #[test]
    fn wheel_matches_reference_through_overflow(
        ops in prop::collection::vec(op_strategy(), 1..250),
        levels in 1u32..=4,
    ) {
        drive(levels, &ops)?;
    }

    /// The deepest wheel the API allows behaves like every other depth.
    #[test]
    fn wheel_matches_reference_at_max_depth(
        ops in prop::collection::vec(op_strategy(), 1..150),
    ) {
        drive(MAX_LEVELS, &ops)?;
    }
}

/// A million events in waves of 4096: the wheel recycles slots as time
/// advances, so live occupancy never exceeds the wave size and the
/// queue's stored backlog stays bounded — the property that lets the
/// streaming results path run 10M-job simulations in O(in-flight)
/// memory. Also exercises tombstone reclamation at volume: every third
/// event is cancelled instead of popped.
#[test]
fn million_events_stream_through_bounded_occupancy() {
    const TOTAL: u64 = 1_000_000;
    const WAVE: u64 = 4096;

    let mut queue: EventQueue<u64> = EventQueue::with_capacity(WAVE as usize);
    let mut scheduled = 0u64;
    let mut popped = 0u64;
    let mut cancelled = 0u64;
    let mut last = SimTime::ZERO;

    while popped + cancelled < TOTAL {
        while scheduled < TOTAL && queue.len() < WAVE as usize {
            // Pseudo-random in-wave spread from a fixed LCG so the test
            // is deterministic without an RNG dependency.
            let jitter = scheduled.wrapping_mul(6_364_136_223_846_793_005) >> 52;
            queue.schedule_in(SimDuration::from_micros(jitter), scheduled);
            scheduled += 1;
            if scheduled.is_multiple_of(3) {
                let id = queue.schedule_in(SimDuration::from_micros(jitter + 1), u64::MAX);
                assert!(queue.cancel(id), "fresh event must cancel");
                cancelled += 1;
                scheduled += 1;
            }
        }
        // The wheel reports only live events, and the backlog can never
        // exceed what the wave loop admitted.
        assert!(
            queue.len() <= WAVE as usize,
            "live backlog exceeded the wave bound: {}",
            queue.len()
        );
        let (at, _) = queue.pop().expect("wave is non-empty");
        assert!(at >= last, "pops must be time-ordered");
        last = at;
        popped += 1;
    }

    while queue.pop().is_some() {
        popped += 1;
    }
    assert_eq!(popped + cancelled, scheduled);
    assert!(popped + cancelled >= TOTAL);
    assert!(queue.is_empty());
}
