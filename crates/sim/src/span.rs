//! Causal span derivation over the trace stream, with critical-path
//! latency attribution.
//!
//! The simulators emit a flat [`TraceEvent`] stream (see [`crate::trace`]).
//! This module reconstructs, per completed job, a causal span — gateway
//! ingress → dispatch queue wait → governor wake/boot → execute →
//! platform overhead → network response — plus node-scoped lifecycle
//! spans, cross-linked by job id and worker id. Because the trace is a
//! pure function of configuration + seed, the derived spans are too:
//! equal seeds give bit-identical span trees, and the exporters in
//! [`crate::chrome`] preserve that byte-for-byte.
//!
//! Each job's end-to-end latency decomposes *exactly* (in integer
//! microseconds) into five phases:
//!
//! | phase      | interval                                             |
//! |------------|------------------------------------------------------|
//! | `queue`    | enqueue → start, minus any boot overlap              |
//! | `boot`     | portion of the wait the assigned worker spent booting |
//! | `exec`     | pure function execution                              |
//! | `overhead` | platform overhead before the response hits the wire  |
//! | `response` | response-sent → completion (network transfer)        |
//!
//! so `queue + boot + exec + overhead + response == completed - enqueued`
//! for every [`JobSpan`] — the invariant the parity suite property-tests.
//!
//! # Examples
//!
//! ```
//! use microfaas_sim::span::{Phase, SpanTree};
//! use microfaas_sim::trace::{TraceBuffer, TraceEvent, TraceSink, WorkerState};
//! use microfaas_sim::SimTime;
//!
//! let mut t = TraceBuffer::new(64);
//! let us = SimTime::from_micros;
//! t.record(us(0), TraceEvent::JobEnqueued { job: 1, function: "CascSHA" });
//! t.record(us(0), TraceEvent::WakeRequested { worker: 0, reason: "dispatch" });
//! t.record(us(10), TraceEvent::WorkerStateChange { worker: 0, state: WorkerState::Booting });
//! t.record(us(110), TraceEvent::WorkerStateChange { worker: 0, state: WorkerState::Idle });
//! t.record(us(110), TraceEvent::JobStarted { job: 1, function: "CascSHA", worker: 0 });
//! t.record(us(110), TraceEvent::WorkerStateChange { worker: 0, state: WorkerState::Executing });
//! t.record(us(310), TraceEvent::ResponseSent { job: 1, function: "CascSHA", worker: 0 });
//! t.record(
//!     us(330),
//!     TraceEvent::JobCompleted {
//!         job: 1,
//!         function: "CascSHA",
//!         worker: 0,
//!         exec: microfaas_sim::SimDuration::from_micros(190),
//!         overhead: microfaas_sim::SimDuration::from_micros(30),
//!     },
//! );
//!
//! let tree = SpanTree::from_buffer(&t);
//! let span = tree.job(1).unwrap();
//! assert_eq!(span.phase(Phase::Queue).as_micros(), 10); // waiting for power-on
//! assert_eq!(span.phase(Phase::Boot).as_micros(), 100);
//! assert_eq!(span.phase(Phase::Exec).as_micros(), 190);
//! assert_eq!(span.phase(Phase::Overhead).as_micros(), 10);
//! assert_eq!(span.phase(Phase::Response).as_micros(), 20);
//! assert_eq!(span.end_to_end().as_micros(), 330);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;
use crate::stats::Samples;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceBuffer, TraceEvent, TraceRecord, WorkerState};

/// One of the five latency phases a request's end-to-end time
/// decomposes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Time queued at the orchestrator waiting for a worker (excluding
    /// any boot the wait overlapped).
    Queue,
    /// Portion of the wait the assigned worker spent booting or
    /// rebooting — the paper's 1.51 s cold-boot cost surfaces here.
    Boot,
    /// Pure function execution.
    Exec,
    /// Platform overhead between execution end and the response
    /// leaving the worker.
    Overhead,
    /// Network response time: response-sent until the orchestrator
    /// commits the completion.
    Response,
}

impl Phase {
    /// Every phase, in causal order.
    pub const ALL: [Phase; 5] = [
        Phase::Queue,
        Phase::Boot,
        Phase::Exec,
        Phase::Overhead,
        Phase::Response,
    ];

    /// Lower-case label used in reports and exported metrics.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Queue => "queue",
            Phase::Boot => "boot",
            Phase::Exec => "exec",
            Phase::Overhead => "overhead",
            Phase::Response => "response",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Queue => 0,
            Phase::Boot => 1,
            Phase::Exec => 2,
            Phase::Overhead => 3,
            Phase::Response => 4,
        }
    }
}

/// The causal span of one completed job, with its exact phase
/// decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpan {
    /// Job id, unique within the run.
    pub job: u64,
    /// Function name label.
    pub function: &'static str,
    /// Worker that completed the job.
    pub worker: usize,
    /// Whether the job was served by the result cache (a hit or a
    /// coalesced follower). Cached spans never execute: boot, exec,
    /// overhead, and response are all zero, and the queue phase alone
    /// carries the end-to-end time, so the five-phase sum invariant
    /// holds unchanged.
    pub cached: bool,
    /// When the job entered the dispatch queue.
    pub enqueued: SimTime,
    /// When the (final) execution attempt began.
    pub started: SimTime,
    /// When the response left the worker.
    pub response_sent: SimTime,
    /// When the orchestrator committed the completion.
    pub completed: SimTime,
    phases: [SimDuration; 5],
}

impl JobSpan {
    /// Duration of one phase.
    pub fn phase(&self, phase: Phase) -> SimDuration {
        self.phases[phase.index()]
    }

    /// All five phase durations, in [`Phase::ALL`] order.
    pub fn phases(&self) -> [SimDuration; 5] {
        self.phases
    }

    /// End-to-end latency; always equals the sum of the five phases.
    pub fn end_to_end(&self) -> SimDuration {
        self.completed.duration_since(self.enqueued)
    }

    /// Renders a terminal latency waterfall: one bar per phase, offset
    /// to its causal position within the end-to-end window.
    pub fn waterfall(&self) -> String {
        const WIDTH: usize = 48;
        let total = self.end_to_end().as_micros();
        let mut out = format!(
            "job #{} {} · worker {} · end-to-end {:.3} ms\n",
            self.job,
            self.function,
            self.worker,
            self.end_to_end().as_millis_f64()
        );
        let mut offset: u64 = 0;
        for phase in Phase::ALL {
            let dur = self.phase(phase).as_micros();
            let mut bar = [b' '; WIDTH];
            if total > 0 && dur > 0 {
                let a = (offset as usize * WIDTH) / total as usize;
                let mut b = ((offset + dur) as usize * WIDTH) / total as usize;
                let a = a.min(WIDTH - 1);
                if b <= a {
                    b = a + 1;
                }
                for slot in bar.iter_mut().take(b.min(WIDTH)).skip(a) {
                    *slot = b'#';
                }
            }
            let share = if total > 0 {
                100.0 * dur as f64 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<9} |{}| {:>10.3} ms {:>5.1}%",
                phase.label(),
                std::str::from_utf8(&bar).expect("ascii bar"),
                SimDuration::from_micros(dur).as_millis_f64(),
                share
            );
            offset += dur;
        }
        out
    }
}

/// One contiguous stretch a worker spent in a lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleSpan {
    /// Cluster index of the worker.
    pub worker: usize,
    /// The state held over the interval.
    pub state: WorkerState,
    /// Interval start.
    pub start: SimTime,
    /// Interval end (exclusive).
    pub end: SimTime,
}

/// An injected fault, kept as an instant mark for the exporters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMark {
    /// Worker the fault struck.
    pub worker: usize,
    /// Fault kind label.
    pub fault: &'static str,
    /// When it fired.
    pub at: SimTime,
}

/// A power-on request, kept as an instant mark linking governor
/// decisions to the boot spans they cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeMark {
    /// Worker being powered on.
    pub worker: usize,
    /// Why (`"dispatch"`, `"requeue"`, `"prewarm"`).
    pub reason: &'static str,
    /// When the orchestrator actuated the GPIO channel.
    pub at: SimTime,
}

/// Per-worker lifecycle tracking used during derivation.
#[derive(Debug, Default)]
struct Track {
    intervals: Vec<(u64, u64, WorkerState)>,
    current: Option<(WorkerState, u64)>,
}

impl Track {
    fn change(&mut self, at: u64, state: WorkerState) {
        if let Some((prev, since)) = self.current.take() {
            if at > since {
                self.intervals.push((since, at, prev));
            }
        }
        self.current = Some((state, at));
    }

    /// Micros of `[from, until]` the worker spent booting or rebooting.
    fn boot_overlap(&self, from: u64, until: u64) -> u64 {
        let mut total = 0;
        for &(start, end, state) in &self.intervals {
            if start >= until {
                break;
            }
            if matches!(state, WorkerState::Booting | WorkerState::Rebooting) {
                let lo = start.max(from);
                let hi = end.min(until);
                if hi > lo {
                    total += hi - lo;
                }
            }
        }
        if let Some((state, since)) = self.current {
            if matches!(state, WorkerState::Booting | WorkerState::Rebooting) {
                let lo = since.max(from);
                if until > lo {
                    total += until - lo;
                }
            }
        }
        total
    }
}

/// In-flight bookkeeping for one job during derivation. The function
/// label is read off the completion event, so it is not held here.
#[derive(Debug)]
struct Pending {
    enqueued: u64,
    started: Option<(u64, usize)>,
    response: Option<u64>,
    cached: bool,
}

/// The derived causal structure of one traced run: per-job spans,
/// per-worker lifecycle spans, and instant marks, all cross-linked by
/// job id and worker id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTree {
    jobs: Vec<JobSpan>,
    lifecycle: Vec<LifecycleSpan>,
    faults: Vec<FaultMark>,
    wakes: Vec<WakeMark>,
    end: SimTime,
    workers: usize,
    skipped: u64,
}

impl SpanTree {
    /// Derives the span tree from trace records in emission order.
    ///
    /// Completed jobs whose start anchor was lost (e.g. overwritten in
    /// a saturated ring buffer) are counted in [`SpanTree::skipped`]
    /// rather than guessed at.
    pub fn derive<'a, I>(records: I) -> SpanTree
    where
        I: IntoIterator<Item = &'a TraceRecord>,
    {
        let mut tracks: BTreeMap<usize, Track> = BTreeMap::new();
        let mut pending: BTreeMap<u64, Pending> = BTreeMap::new();
        let mut tree = SpanTree::default();

        for record in records {
            let at = record.at.as_micros();
            tree.end = tree.end.max(record.at);
            match record.event {
                TraceEvent::WorkerStateChange { worker, state } => {
                    tree.workers = tree.workers.max(worker + 1);
                    tracks.entry(worker).or_default().change(at, state);
                }
                TraceEvent::JobEnqueued { job, .. } => {
                    pending.entry(job).or_insert(Pending {
                        enqueued: at,
                        started: None,
                        response: None,
                        cached: false,
                    });
                }
                TraceEvent::JobStarted { job, worker, .. } => {
                    tree.workers = tree.workers.max(worker + 1);
                    let p = pending.entry(job).or_insert(Pending {
                        enqueued: at,
                        started: None,
                        response: None,
                        cached: false,
                    });
                    // A retried job restarts its serving phases: the
                    // last start wins and any earlier response copy is
                    // discarded.
                    p.started = Some((at, worker));
                    p.response = None;
                }
                TraceEvent::ResponseSent { job, .. } => {
                    if let Some(p) = pending.get_mut(&job) {
                        if p.started.is_some() && p.response.is_none() {
                            p.response = Some(at);
                        }
                    }
                }
                TraceEvent::CacheHit { job, .. } | TraceEvent::Coalesced { job, .. } => {
                    if let Some(p) = pending.get_mut(&job) {
                        p.cached = true;
                    }
                }
                TraceEvent::JobCompleted {
                    job,
                    function,
                    worker,
                    exec,
                    ..
                } => {
                    tree.workers = tree.workers.max(worker + 1);
                    match pending.remove(&job) {
                        Some(p) if p.started.is_some() => {
                            let track = tracks.entry(worker).or_default();
                            tree.jobs
                                .push(build_span(job, function, worker, at, exec, &p, track));
                        }
                        // A job the cache served never starts: its whole
                        // end-to-end time is queue wait, with zero boot,
                        // exec, overhead, and response — the sum invariant
                        // holds trivially.
                        Some(p) if p.cached => {
                            let enqueued = p.enqueued.min(at);
                            tree.jobs.push(JobSpan {
                                job,
                                function,
                                worker,
                                cached: true,
                                enqueued: SimTime::from_micros(enqueued),
                                started: SimTime::from_micros(at),
                                response_sent: SimTime::from_micros(at),
                                completed: SimTime::from_micros(at),
                                phases: [
                                    SimDuration::from_micros(at - enqueued),
                                    SimDuration::ZERO,
                                    SimDuration::ZERO,
                                    SimDuration::ZERO,
                                    SimDuration::ZERO,
                                ],
                            });
                        }
                        _ => tree.skipped += 1,
                    }
                }
                TraceEvent::JobTimedOut { job, .. }
                | TraceEvent::JobShed { job, .. }
                | TraceEvent::JobFailed { job, .. } => {
                    // Terminal non-completions never become spans.
                    pending.remove(&job);
                }
                TraceEvent::FaultInjected { worker, fault } => {
                    tree.workers = tree.workers.max(worker + 1);
                    tree.faults.push(FaultMark {
                        worker,
                        fault,
                        at: record.at,
                    });
                }
                TraceEvent::WakeRequested { worker, reason } => {
                    tree.workers = tree.workers.max(worker + 1);
                    tree.wakes.push(WakeMark {
                        worker,
                        reason,
                        at: record.at,
                    });
                }
                TraceEvent::JobRequeued { .. }
                | TraceEvent::JobRetryScheduled { .. }
                | TraceEvent::PowerSample { .. }
                | TraceEvent::NetTransfer { .. }
                | TraceEvent::PlacementDecision { .. }
                | TraceEvent::CacheMiss { .. }
                | TraceEvent::GovernorTransition { .. }
                | TraceEvent::BudgetBreach { .. }
                | TraceEvent::BudgetAction { .. } => {}
            }
        }

        // Close open lifecycle intervals at the trace horizon, then
        // flatten per worker in (worker, start) order — BTreeMap
        // iteration plus in-order appends make this canonical.
        let end = tree.end.as_micros();
        for (&worker, track) in &mut tracks {
            if let Some((state, since)) = track.current.take() {
                if end > since {
                    track.intervals.push((since, end, state));
                }
            }
            for &(start, stop, state) in &track.intervals {
                tree.lifecycle.push(LifecycleSpan {
                    worker,
                    state,
                    start: SimTime::from_micros(start),
                    end: SimTime::from_micros(stop),
                });
            }
        }
        tree.jobs.sort_by_key(|s| s.job);
        tree
    }

    /// Derives the span tree from a ring buffer's retained records.
    pub fn from_buffer(buffer: &TraceBuffer) -> SpanTree {
        SpanTree::derive(buffer.iter())
    }

    /// Completed-job spans, sorted by job id.
    pub fn jobs(&self) -> &[JobSpan] {
        &self.jobs
    }

    /// The span of one job, if it completed inside the trace.
    pub fn job(&self, id: u64) -> Option<&JobSpan> {
        self.jobs
            .binary_search_by_key(&id, |s| s.job)
            .ok()
            .map(|i| &self.jobs[i])
    }

    /// Worker lifecycle spans, sorted by (worker, start).
    pub fn lifecycle(&self) -> &[LifecycleSpan] {
        &self.lifecycle
    }

    /// Injected-fault marks, in trace order.
    pub fn faults(&self) -> &[FaultMark] {
        &self.faults
    }

    /// Power-on request marks, in trace order.
    pub fn wakes(&self) -> &[WakeMark] {
        &self.wakes
    }

    /// The latest instant observed in the trace.
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Number of worker tracks (max worker index + 1).
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Completed jobs whose causal anchors were missing from the trace
    /// (dropped by a saturated ring buffer), skipped rather than
    /// mis-attributed.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

fn build_span(
    job: u64,
    function: &'static str,
    worker: usize,
    completed: u64,
    exec: SimDuration,
    p: &Pending,
    track: &Track,
) -> JobSpan {
    let (started, _) = p.started.expect("caller checked");
    let enqueued = p.enqueued.min(started);
    let wait = started - enqueued;
    let boot = track.boot_overlap(enqueued, started).min(wait);
    let queue = wait - boot;
    let serve = completed.saturating_sub(started);
    let exec_us = exec.as_micros().min(serve);
    // A missing response anchor collapses the response phase to zero;
    // clamping keeps every phase non-negative even on odd traces.
    let response_at = p
        .response
        .unwrap_or(completed)
        .clamp(started + exec_us, completed);
    let overhead = response_at - started - exec_us;
    let response = completed - response_at;
    JobSpan {
        job,
        function,
        worker,
        cached: false,
        enqueued: SimTime::from_micros(enqueued),
        started: SimTime::from_micros(started),
        response_sent: SimTime::from_micros(response_at),
        completed: SimTime::from_micros(completed),
        phases: [
            SimDuration::from_micros(queue),
            SimDuration::from_micros(boot),
            SimDuration::from_micros(exec_us),
            SimDuration::from_micros(overhead),
            SimDuration::from_micros(response),
        ],
    }
}

/// Upper bucket bounds (seconds) for the exported per-phase latency
/// histograms: sub-millisecond overheads up to multi-second boot and
/// queueing tails.
pub const PHASE_BUCKETS: [f64; 14] = [
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
];

/// Phase statistics over a set of spans (one scope: a cluster or one
/// function), retaining exact samples in milliseconds.
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    jobs: usize,
    phases: [Samples; 5],
    end_to_end: Samples,
}

impl PhaseStats {
    fn record(&mut self, span: &JobSpan) {
        self.jobs += 1;
        for phase in Phase::ALL {
            self.phases[phase.index()].record(span.phase(phase).as_millis_f64());
        }
        self.end_to_end.record(span.end_to_end().as_millis_f64());
    }

    /// Number of spans aggregated.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Exact nearest-rank (p50, p95, p99) of one phase, in ms.
    pub fn phase_percentiles_ms(&mut self, phase: Phase) -> Option<(f64, f64, f64)> {
        let s = &mut self.phases[phase.index()];
        Some((
            s.percentile(50.0)?,
            s.percentile(95.0)?,
            s.percentile(99.0)?,
        ))
    }

    /// Mean of one phase, in ms (0 if empty).
    pub fn phase_mean_ms(&self, phase: Phase) -> f64 {
        self.phases[phase.index()].mean().unwrap_or(0.0)
    }

    /// Exact nearest-rank (p50, p95, p99) of the end-to-end latency,
    /// in ms.
    pub fn end_to_end_percentiles_ms(&mut self) -> Option<(f64, f64, f64)> {
        Some((
            self.end_to_end.percentile(50.0)?,
            self.end_to_end.percentile(95.0)?,
            self.end_to_end.percentile(99.0)?,
        ))
    }

    /// This phase's share of total attributed time, in percent.
    pub fn phase_share(&self, phase: Phase) -> f64 {
        let total: f64 = self.end_to_end.values().iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let part: f64 = self.phases[phase.index()].values().iter().sum();
        100.0 * part / total
    }
}

/// Critical-path latency attribution over a [`SpanTree`]: where did
/// each request's end-to-end time go, per cluster and per function.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    overall: PhaseStats,
    per_function: BTreeMap<&'static str, PhaseStats>,
}

impl CriticalPath {
    /// Aggregates every span in `tree`.
    pub fn analyze(tree: &SpanTree) -> CriticalPath {
        let mut cp = CriticalPath::default();
        for span in tree.jobs() {
            cp.overall.record(span);
            cp.per_function
                .entry(span.function)
                .or_default()
                .record(span);
        }
        cp
    }

    /// Cluster-wide phase statistics.
    pub fn overall(&mut self) -> &mut PhaseStats {
        &mut self.overall
    }

    /// Per-function phase statistics, sorted by function name.
    pub fn functions(&mut self) -> impl Iterator<Item = (&'static str, &mut PhaseStats)> {
        self.per_function.iter_mut().map(|(&name, s)| (name, s))
    }

    /// Renders the cluster-level per-phase breakdown table: p50/p95/p99
    /// plus mean and share of total attributed time.
    pub fn cluster_breakdown(&mut self, label: &str) -> String {
        let mut out = format!(
            "{label}: {} spans — critical-path phase breakdown (ms)\n",
            self.overall.jobs()
        );
        let _ = writeln!(
            out,
            "  {:<10} {:>10} {:>10} {:>10} {:>10} {:>7}",
            "phase", "p50", "p95", "p99", "mean", "share"
        );
        for phase in Phase::ALL {
            let (p50, p95, p99) = self
                .overall
                .phase_percentiles_ms(phase)
                .unwrap_or((0.0, 0.0, 0.0));
            let _ = writeln!(
                out,
                "  {:<10} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>6.1}%",
                phase.label(),
                p50,
                p95,
                p99,
                self.overall.phase_mean_ms(phase),
                self.overall.phase_share(phase)
            );
        }
        let (p50, p95, p99) = self
            .overall
            .end_to_end_percentiles_ms()
            .unwrap_or((0.0, 0.0, 0.0));
        let mean = self.overall.end_to_end.mean().unwrap_or(0.0);
        let _ = writeln!(
            out,
            "  {:<10} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>6.1}%",
            "end-to-end", p50, p95, p99, mean, 100.0
        );
        out
    }

    /// Renders the per-function table: mean per phase plus end-to-end
    /// p50/p95/p99.
    pub fn function_breakdown(&mut self) -> String {
        let mut out = format!(
            "  {:<12} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "function", "jobs", "queue", "boot", "exec", "ovhd", "resp", "p50", "p95", "p99"
        );
        for (name, stats) in self.per_function.iter_mut() {
            let (p50, p95, p99) = stats.end_to_end_percentiles_ms().unwrap_or((0.0, 0.0, 0.0));
            let _ = writeln!(
                out,
                "  {:<12} {:>5} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                name,
                stats.jobs(),
                stats.phase_mean_ms(Phase::Queue),
                stats.phase_mean_ms(Phase::Boot),
                stats.phase_mean_ms(Phase::Exec),
                stats.phase_mean_ms(Phase::Overhead),
                stats.phase_mean_ms(Phase::Response),
                p50,
                p95,
                p99
            );
        }
        out
    }

    /// Publishes every phase observation into `metrics` as the
    /// fixed-bucket histograms `{prefix}_span_phase_seconds{phase=...}`
    /// plus `{prefix}_span_end_to_end_seconds` and a
    /// `{prefix}_spans_total` counter, so the breakdown rides the
    /// existing Prometheus exposition (percentiles recoverable with
    /// [`MetricsRegistry::histogram_quantile`]).
    pub fn publish_metrics(&self, metrics: &mut MetricsRegistry, prefix: &str) {
        for phase in Phase::ALL {
            let h = metrics.histogram(
                &format!("{prefix}_span_phase_seconds{{phase=\"{}\"}}", phase.label()),
                &PHASE_BUCKETS,
            );
            for &ms in self.overall.phases[phase.index()].values() {
                metrics.observe(h, ms / 1e3);
            }
        }
        let e2e = metrics.histogram(&format!("{prefix}_span_end_to_end_seconds"), &PHASE_BUCKETS);
        for &ms in self.overall.end_to_end.values() {
            metrics.observe(e2e, ms / 1e3);
        }
        let total = metrics.counter(&format!("{prefix}_spans_total"));
        metrics.add(total, self.overall.jobs() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSink;

    fn us(at: u64) -> SimTime {
        SimTime::from_micros(at)
    }

    fn simple_trace() -> TraceBuffer {
        let mut t = TraceBuffer::new(256);
        t.record(
            us(0),
            TraceEvent::JobEnqueued {
                job: 1,
                function: "CascSHA",
            },
        );
        t.record(
            us(0),
            TraceEvent::WakeRequested {
                worker: 0,
                reason: "dispatch",
            },
        );
        t.record(
            us(5),
            TraceEvent::WorkerStateChange {
                worker: 0,
                state: WorkerState::Booting,
            },
        );
        t.record(
            us(105),
            TraceEvent::WorkerStateChange {
                worker: 0,
                state: WorkerState::Idle,
            },
        );
        t.record(
            us(105),
            TraceEvent::JobStarted {
                job: 1,
                function: "CascSHA",
                worker: 0,
            },
        );
        t.record(
            us(105),
            TraceEvent::WorkerStateChange {
                worker: 0,
                state: WorkerState::Executing,
            },
        );
        t.record(
            us(305),
            TraceEvent::ResponseSent {
                job: 1,
                function: "CascSHA",
                worker: 0,
            },
        );
        t.record(
            us(325),
            TraceEvent::JobCompleted {
                job: 1,
                function: "CascSHA",
                worker: 0,
                exec: SimDuration::from_micros(180),
                overhead: SimDuration::from_micros(40),
            },
        );
        t
    }

    #[test]
    fn phases_decompose_exactly() {
        let tree = SpanTree::from_buffer(&simple_trace());
        assert_eq!(tree.jobs().len(), 1);
        assert_eq!(tree.skipped(), 0);
        let span = tree.job(1).unwrap();
        assert_eq!(span.phase(Phase::Queue).as_micros(), 5);
        assert_eq!(span.phase(Phase::Boot).as_micros(), 100);
        assert_eq!(span.phase(Phase::Exec).as_micros(), 180);
        assert_eq!(span.phase(Phase::Overhead).as_micros(), 20);
        assert_eq!(span.phase(Phase::Response).as_micros(), 20);
        let sum: u64 = Phase::ALL.iter().map(|&p| span.phase(p).as_micros()).sum();
        assert_eq!(sum, span.end_to_end().as_micros());
        assert_eq!(tree.wakes().len(), 1);
        assert_eq!(tree.worker_count(), 1);
    }

    #[test]
    fn lifecycle_spans_close_at_trace_end() {
        let tree = SpanTree::from_buffer(&simple_trace());
        let states: Vec<(WorkerState, u64, u64)> = tree
            .lifecycle()
            .iter()
            .map(|s| (s.state, s.start.as_micros(), s.end.as_micros()))
            .collect();
        assert_eq!(
            states,
            vec![
                (WorkerState::Booting, 5, 105),
                // Idle -> Executing at the same instant collapses the
                // zero-length Idle interval away.
                (WorkerState::Executing, 105, 325),
            ]
        );
    }

    #[test]
    fn retried_job_uses_its_final_attempt() {
        let mut t = TraceBuffer::new(256);
        t.record(
            us(0),
            TraceEvent::JobEnqueued {
                job: 3,
                function: "AES128",
            },
        );
        t.record(
            us(10),
            TraceEvent::JobStarted {
                job: 3,
                function: "AES128",
                worker: 0,
            },
        );
        t.record(
            us(40),
            TraceEvent::ResponseSent {
                job: 3,
                function: "AES128",
                worker: 0,
            },
        );
        // Worker crashed mid-transfer: requeue and run again elsewhere.
        t.record(
            us(50),
            TraceEvent::JobRequeued {
                job: 3,
                function: "AES128",
                worker: 0,
            },
        );
        t.record(
            us(100),
            TraceEvent::JobStarted {
                job: 3,
                function: "AES128",
                worker: 1,
            },
        );
        t.record(
            us(130),
            TraceEvent::ResponseSent {
                job: 3,
                function: "AES128",
                worker: 1,
            },
        );
        t.record(
            us(140),
            TraceEvent::JobCompleted {
                job: 3,
                function: "AES128",
                worker: 1,
                exec: SimDuration::from_micros(25),
                overhead: SimDuration::from_micros(15),
            },
        );
        let tree = SpanTree::from_buffer(&t);
        let span = tree.job(3).unwrap();
        assert_eq!(span.started.as_micros(), 100);
        assert_eq!(
            span.response_sent.as_micros(),
            130,
            "first attempt's response discarded"
        );
        assert_eq!(span.worker, 1);
        // queue = 100 (no boot tracked), exec = 25, overhead = 5, response = 10.
        assert_eq!(span.phase(Phase::Queue).as_micros(), 100);
        assert_eq!(span.phase(Phase::Exec).as_micros(), 25);
        assert_eq!(span.phase(Phase::Overhead).as_micros(), 5);
        assert_eq!(span.phase(Phase::Response).as_micros(), 10);
        let sum: u64 = Phase::ALL.iter().map(|&p| span.phase(p).as_micros()).sum();
        assert_eq!(sum, span.end_to_end().as_micros());
    }

    #[test]
    fn cache_hit_spans_decompose_to_pure_queue_time() {
        let mut t = TraceBuffer::new(256);
        t.record(
            us(100),
            TraceEvent::JobEnqueued {
                job: 9,
                function: "CascSHA",
            },
        );
        t.record(
            us(100),
            TraceEvent::CacheHit {
                job: 9,
                function: "CascSHA",
                key: 7,
            },
        );
        t.record(
            us(100),
            TraceEvent::JobCompleted {
                job: 9,
                function: "CascSHA",
                worker: 0,
                exec: SimDuration::ZERO,
                overhead: SimDuration::ZERO,
            },
        );
        // A coalesced follower completes later, at its leader's finish.
        t.record(
            us(200),
            TraceEvent::JobEnqueued {
                job: 10,
                function: "CascSHA",
            },
        );
        t.record(
            us(200),
            TraceEvent::Coalesced {
                job: 10,
                leader: 8,
                function: "CascSHA",
            },
        );
        t.record(
            us(450),
            TraceEvent::JobCompleted {
                job: 10,
                function: "CascSHA",
                worker: 2,
                exec: SimDuration::ZERO,
                overhead: SimDuration::ZERO,
            },
        );
        let tree = SpanTree::from_buffer(&t);
        assert_eq!(tree.skipped(), 0);

        let hit = tree.job(9).unwrap();
        assert!(hit.cached);
        for phase in Phase::ALL {
            assert_eq!(hit.phase(phase).as_micros(), 0);
        }
        assert_eq!(hit.end_to_end().as_micros(), 0);

        let follower = tree.job(10).unwrap();
        assert!(follower.cached);
        assert_eq!(follower.phase(Phase::Queue).as_micros(), 250);
        assert_eq!(follower.phase(Phase::Boot).as_micros(), 0);
        assert_eq!(follower.phase(Phase::Exec).as_micros(), 0);
        let sum: u64 = Phase::ALL
            .iter()
            .map(|&p| follower.phase(p).as_micros())
            .sum();
        assert_eq!(sum, follower.end_to_end().as_micros());
    }

    #[test]
    fn completed_job_without_anchors_is_skipped_not_guessed() {
        let mut t = TraceBuffer::new(256);
        t.record(
            us(99),
            TraceEvent::JobCompleted {
                job: 42,
                function: "MatMul",
                worker: 0,
                exec: SimDuration::from_micros(10),
                overhead: SimDuration::from_micros(5),
            },
        );
        let tree = SpanTree::from_buffer(&t);
        assert!(tree.jobs().is_empty());
        assert_eq!(tree.skipped(), 1);
    }

    #[test]
    fn terminal_non_completions_never_become_spans() {
        let mut t = TraceBuffer::new(256);
        t.record(
            us(0),
            TraceEvent::JobEnqueued {
                job: 5,
                function: "MatMul",
            },
        );
        t.record(
            us(1),
            TraceEvent::JobStarted {
                job: 5,
                function: "MatMul",
                worker: 0,
            },
        );
        t.record(
            us(9),
            TraceEvent::JobTimedOut {
                job: 5,
                function: "MatMul",
                worker: 0,
            },
        );
        let tree = SpanTree::from_buffer(&t);
        assert!(tree.jobs().is_empty());
        assert_eq!(tree.skipped(), 0);
    }

    #[test]
    fn waterfall_renders_offset_bars() {
        let tree = SpanTree::from_buffer(&simple_trace());
        let art = tree.job(1).unwrap().waterfall();
        assert!(art.contains("job #1 CascSHA"), "{art}");
        for phase in Phase::ALL {
            assert!(art.contains(phase.label()), "{art}");
        }
        assert!(art.contains('#'), "{art}");
    }

    #[test]
    fn critical_path_aggregates_and_publishes_histograms() {
        let tree = SpanTree::from_buffer(&simple_trace());
        let mut cp = CriticalPath::analyze(&tree);
        assert_eq!(cp.overall().jobs(), 1);
        let (p50, p95, p99) = cp.overall().phase_percentiles_ms(Phase::Exec).unwrap();
        assert_eq!((p50, p95, p99), (0.18, 0.18, 0.18));
        let table = cp.cluster_breakdown("micro");
        assert!(table.contains("end-to-end"), "{table}");
        let funcs = cp.function_breakdown();
        assert!(funcs.contains("CascSHA"), "{funcs}");

        let mut metrics = MetricsRegistry::new();
        cp.publish_metrics(&mut metrics, "micro");
        let expo = metrics.render_prometheus();
        assert!(
            expo.contains("micro_span_phase_seconds_bucket{phase=\"exec\",le=\"0.001\"} 1"),
            "{expo}"
        );
        assert!(expo.contains("micro_spans_total 1"), "{expo}");
    }

    #[test]
    fn shares_sum_to_one_hundred_percent() {
        let tree = SpanTree::from_buffer(&simple_trace());
        let mut cp = CriticalPath::analyze(&tree);
        let total: f64 = Phase::ALL
            .iter()
            .map(|&p| cp.overall().phase_share(p))
            .sum();
        assert!((total - 100.0).abs() < 1e-9, "{total}");
    }
}
