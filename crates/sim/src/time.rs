//! Simulated time.
//!
//! The simulator counts microseconds in a [`SimTime`] newtype, with
//! [`SimDuration`] for spans. Microsecond resolution is fine enough to
//! resolve NIC serialization delays (a 64-byte frame at 100 Mb/s lasts
//! ~5 µs) while leaving headroom for multi-day TCO horizons in a `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant in simulated time, in microseconds since the start
/// of the simulation.
///
/// # Examples
///
/// ```
/// use microfaas_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(1_500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use microfaas_sim::SimDuration;
///
/// let d = SimDuration::from_millis(250) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 250_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `micros` microseconds after the simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Returns the instant as microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as (possibly fractional) seconds since start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; event handlers should
    /// never observe time running backwards.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since called with a later instant ({earlier} > {self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Returns the duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration scaled by `factor`, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(
            rhs.0 <= self.0,
            "duration subtraction underflow ({self} - {rhs})"
        );
        SimDuration(self.0 - rhs.0)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d).as_micros(), 5_250);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_since_is_exact() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_millis(500);
        assert_eq!(a.duration_since(b), SimDuration::from_millis(1_500));
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_backwards_time() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn from_secs_f64_rounds_to_micros() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(250));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_micros(42).to_string(), "42us");
        assert_eq!(SimDuration::from_millis(42).to_string(), "42.000ms");
        assert_eq!(SimDuration::from_secs(42).to_string(), "42.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn time_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
