//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-for-bit reproducible across runs and platforms,
//! so we implement our own small generators rather than depending on an
//! external crate whose stream might change between versions:
//!
//! * [`SplitMix64`] — used to seed other generators from a single `u64`.
//! * [`Rng`] (xoshiro256\*\*) — the general-purpose generator used by every
//!   stochastic model (arrival processes, runtime jitter, input generation).

/// SplitMix64 generator (Steele, Lea & Flood), used for seeding.
///
/// # Examples
///
/// ```
/// use microfaas_sim::SplitMix64;
///
/// let mut sm = SplitMix64::new(42);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* generator (Blackman & Vigna): fast, high-quality, and
/// fully deterministic for a given seed.
///
/// # Examples
///
/// ```
/// use microfaas_sim::Rng;
///
/// let mut rng = Rng::new(7);
/// let roll = rng.range_u64(1, 7); // a six-sided die
/// assert!((1..=6).contains(&roll));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator, expanding `seed` with [`SplitMix64`].
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[lo, hi)` using rejection
    /// sampling (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Rejection zone to remove modulo bias.
        let zone = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }

    /// Returns a uniformly distributed `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// Draws from an exponential distribution with the given mean
    /// (inter-arrival times of a Poisson process).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive, got {mean}"
        );
        // Inverse-CDF; 1 - u avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Draws from a normal distribution via Box–Muller.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "bad normal parameters ({mean}, {std_dev})"
        );
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        mean + std_dev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Chooses `k` distinct indices from `[0, n)` (a uniform random sample
    /// without replacement), in selection order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        // Partial Fisher–Yates over an index vector.
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// Draws an index from a discrete distribution given as a cumulative
    /// weight table: entry `i` holds the total weight of items `0..=i`,
    /// so the table is non-decreasing and ends at the total weight.
    /// Weights need not be normalized. Consumes exactly one `f64` draw
    /// regardless of table size (binary search), which keeps multi-way
    /// choices — function popularity, tenant classes — a fixed cost on
    /// the RNG stream.
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas_sim::Rng;
    ///
    /// // 80% item 0, 20% item 1.
    /// let mut rng = Rng::new(7);
    /// let cdf = [0.8, 1.0];
    /// let hits = (0..10_000).filter(|_| rng.cdf_index(&cdf) == 0).count();
    /// assert!((7_700..8_300).contains(&hits), "got {hits}");
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, non-monotone, or its total weight
    /// is not positive and finite.
    pub fn cdf_index(&mut self, cdf: &[f64]) -> usize {
        let total = *cdf.last().expect("cumulative table must be non-empty");
        assert!(
            total.is_finite() && total > 0.0,
            "total weight must be positive, got {total}"
        );
        assert!(
            cdf.windows(2).all(|w| w[0] <= w[1]),
            "cumulative table must be non-decreasing"
        );
        let target = self.next_f64() * total;
        // First entry strictly above the target; the final entry catches
        // target == total only when rounding produces it (next_f64 < 1).
        cdf.partition_point(|&w| w <= target).min(cdf.len() - 1)
    }

    /// Derives an independent child generator; useful for giving each model
    /// component its own stream so component order never perturbs results.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(9);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng::new(4);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_hits_all_values() {
        let mut rng = Rng::new(5);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.range_u64(0, 6) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some die faces never rolled");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = Rng::new(11);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| rng.exponential(2.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean} too far from 2.0");
    }

    #[test]
    fn normal_moments_converge() {
        let mut rng = Rng::new(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = Rng::new(17);
        for _ in 0..100 {
            let sample = rng.sample_indices(10, 4);
            assert_eq!(sample.len(), 4);
            let mut sorted = sample.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicate indices in {sample:?}");
            assert!(sample.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn sample_full_population_is_permutation() {
        let mut rng = Rng::new(19);
        let mut sample = rng.sample_indices(8, 8);
        sample.sort_unstable();
        assert_eq!(sample, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(23);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Rng::new(29);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn cdf_index_respects_weights() {
        let mut rng = Rng::new(37);
        // Weights 1 : 3 : 6 (unnormalized).
        let cdf = [1.0, 4.0, 10.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[rng.cdf_index(&cdf)] += 1;
        }
        assert!((800..1_200).contains(&counts[0]), "{counts:?}");
        assert!((2_700..3_300).contains(&counts[1]), "{counts:?}");
        assert!((5_700..6_300).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn cdf_index_handles_zero_weight_prefix() {
        let mut rng = Rng::new(41);
        // Item 0 carries no mass; it must never be drawn.
        let cdf = [0.0, 1.0];
        assert!((0..1_000).all(|_| rng.cdf_index(&cdf) == 1));
    }

    #[test]
    #[should_panic(expected = "must be non-decreasing")]
    fn cdf_index_rejects_non_monotone_tables() {
        Rng::new(1).cdf_index(&[2.0, 1.0, 3.0]);
    }

    #[test]
    fn forked_rngs_are_independent_of_parent_use() {
        let mut parent1 = Rng::new(31);
        let child1 = parent1.fork();
        let mut parent2 = Rng::new(31);
        let child2 = parent2.fork();
        assert_eq!(child1, child2);
    }
}
