//! Deterministic fault injection for the cluster simulators.
//!
//! A [`FaultPlan`] describes *what goes wrong* during a run: scheduled
//! node crashes, probabilistic boot failures, stuck-executing hangs,
//! and network-transfer losses. The plan carries its own RNG seed, and
//! a [`FaultInjector`] draws every probabilistic decision from that
//! private stream — never from the simulation's RNG — so an empty plan
//! is *structurally* identical to no plan at all: zero draws, zero
//! scheduled events, bit-identical results.
//!
//! Plans are written as JSON (see [`FaultPlan::from_json`]) and parsed
//! by the in-crate recursive-descent parser ([`crate::json`]),
//! preserving the workspace's zero-runtime-dependency policy. The
//! failure taxonomy and each cluster's recovery semantics are
//! documented in `docs/FAILURE_MODEL.md` at the repository root.

use std::fmt;

use crate::json;
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// The kinds of faults a plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A node loses power mid-run (scheduled, per worker).
    Crash,
    /// A worker-OS boot attempt fails and must be redone
    /// (probabilistic, drawn at every boot completion).
    BootFailure,
    /// An invocation wedges and never finishes on its own
    /// (probabilistic, drawn at job start).
    Hang,
    /// A result transfer is lost on the wire and must be retransmitted
    /// (probabilistic, drawn per transfer).
    NetLoss,
}

impl FaultKind {
    /// Lower-case wire label used in plan JSON and trace events.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::BootFailure => "boot_failure",
            FaultKind::Hang => "hang",
            FaultKind::NetLoss => "net_loss",
        }
    }

    fn from_label(label: &str) -> Option<FaultKind> {
        match label {
            "crash" => Some(FaultKind::Crash),
            "boot_failure" => Some(FaultKind::BootFailure),
            "hang" => Some(FaultKind::Hang),
            "net_loss" => Some(FaultKind::NetLoss),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// When a fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// At an absolute simulated instant (crashes).
    At(SimTime),
    /// With this probability at every exposure site (boot completions,
    /// job starts, transfers).
    Probability(f64),
}

/// One fault in a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Which worker it strikes; `None` exposes every worker
    /// (probabilistic kinds only).
    pub worker: Option<usize>,
    /// When it fires.
    pub trigger: FaultTrigger,
}

/// Error from parsing or validating a fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError(pub String);

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan: {}", self.0)
    }
}

impl std::error::Error for FaultPlanError {}

/// A seeded, validated-on-use fault schedule.
///
/// # Examples
///
/// ```
/// use microfaas_sim::faults::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::from_json(
///     r#"{"seed": 99, "faults": [
///         {"kind": "crash", "worker": 3, "at_s": 10.0},
///         {"kind": "net_loss", "p": 0.05}
///     ]}"#,
/// ).expect("valid plan");
/// assert_eq!(plan.seed, 99);
/// assert_eq!(plan.faults.len(), 2);
/// assert_eq!(plan.faults[0].kind, FaultKind::Crash);
/// assert!(FaultPlan::empty().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// The faults to inject.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan that injects nothing. Runs with an empty plan are
    /// bit-identical to runs with no fault support at all.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Checks every fault's shape: crashes need a worker and a
    /// scheduled time; probabilistic kinds need `p` in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError`] naming the first malformed fault.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for (i, fault) in self.faults.iter().enumerate() {
            match (fault.kind, fault.trigger) {
                (FaultKind::Crash, FaultTrigger::At(_)) => {
                    if fault.worker.is_none() {
                        return Err(FaultPlanError(format!(
                            "fault {i}: a crash needs a target worker"
                        )));
                    }
                }
                (FaultKind::Crash, FaultTrigger::Probability(_)) => {
                    return Err(FaultPlanError(format!(
                        "fault {i}: crashes are scheduled (use \"at_s\"), not probabilistic"
                    )));
                }
                (_, FaultTrigger::Probability(p)) => {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(FaultPlanError(format!(
                            "fault {i}: probability {p} outside [0, 1]"
                        )));
                    }
                }
                (kind, FaultTrigger::At(_)) => {
                    return Err(FaultPlanError(format!(
                        "fault {i}: {kind} is probabilistic (use \"p\"), not scheduled"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Parses a plan from its JSON form:
    ///
    /// ```json
    /// {
    ///   "seed": 99,
    ///   "faults": [
    ///     {"kind": "crash", "worker": 3, "at_s": 10.0},
    ///     {"kind": "boot_failure", "p": 0.2},
    ///     {"kind": "hang", "worker": 2, "p": 0.05},
    ///     {"kind": "net_loss", "p": 0.01}
    ///   ]
    /// }
    /// ```
    ///
    /// `seed` defaults to 0; `worker` is optional for probabilistic
    /// kinds (absent = every worker). Unknown keys are rejected so
    /// typos cannot silently disable a fault.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError`] on malformed JSON, unknown keys or
    /// kinds, and any [`FaultPlan::validate`] failure.
    pub fn from_json(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let value = json::parse(text).map_err(FaultPlanError)?;
        let object = value
            .as_object()
            .ok_or_else(|| FaultPlanError("top level must be an object".to_string()))?;
        let mut plan = FaultPlan::empty();
        for (key, value) in object {
            match key.as_str() {
                "seed" => {
                    plan.seed = value.as_u64().ok_or_else(|| {
                        FaultPlanError("\"seed\" must be a non-negative integer".to_string())
                    })?;
                }
                "faults" => {
                    let list = value
                        .as_array()
                        .ok_or_else(|| FaultPlanError("\"faults\" must be an array".to_string()))?;
                    for (i, entry) in list.iter().enumerate() {
                        plan.faults.push(parse_fault(i, entry)?);
                    }
                }
                other => {
                    return Err(FaultPlanError(format!("unknown top-level key \"{other}\"")));
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

fn parse_fault(i: usize, value: &json::Value) -> Result<FaultSpec, FaultPlanError> {
    let object = value
        .as_object()
        .ok_or_else(|| FaultPlanError(format!("fault {i} must be an object")))?;
    let mut kind = None;
    let mut worker = None;
    let mut trigger = None;
    for (key, value) in object {
        match key.as_str() {
            "kind" => {
                let label = value.as_str().ok_or_else(|| {
                    FaultPlanError(format!("fault {i}: \"kind\" must be a string"))
                })?;
                kind = Some(FaultKind::from_label(label).ok_or_else(|| {
                    FaultPlanError(format!(
                        "fault {i}: unknown kind \"{label}\" \
                         (crash | boot_failure | hang | net_loss)"
                    ))
                })?);
            }
            "worker" => {
                let w = value.as_u64().ok_or_else(|| {
                    FaultPlanError(format!(
                        "fault {i}: \"worker\" must be a non-negative integer"
                    ))
                })?;
                worker = Some(w as usize);
            }
            "at_s" => {
                let secs = value
                    .as_f64()
                    .filter(|s| s.is_finite() && *s >= 0.0)
                    .ok_or_else(|| {
                        FaultPlanError(format!(
                            "fault {i}: \"at_s\" must be a non-negative number of seconds"
                        ))
                    })?;
                trigger = Some(FaultTrigger::At(
                    SimTime::ZERO + SimDuration::from_secs_f64(secs),
                ));
            }
            "p" => {
                let p = value
                    .as_f64()
                    .ok_or_else(|| FaultPlanError(format!("fault {i}: \"p\" must be a number")))?;
                trigger = Some(FaultTrigger::Probability(p));
            }
            other => {
                return Err(FaultPlanError(format!(
                    "fault {i}: unknown key \"{other}\" (kind | worker | at_s | p)"
                )));
            }
        }
    }
    let kind = kind.ok_or_else(|| FaultPlanError(format!("fault {i}: missing \"kind\"")))?;
    let trigger = trigger
        .ok_or_else(|| FaultPlanError(format!("fault {i}: needs \"at_s\" (crash) or \"p\"")))?;
    Ok(FaultSpec {
        kind,
        worker,
        trigger,
    })
}

/// Draws a fault plan's probabilistic decisions from the plan's own
/// seeded RNG stream, keeping the simulation RNG untouched.
///
/// Construction performs no draws, and a check site whose combined
/// probability is zero performs none either, so an empty plan leaves
/// the injector completely inert.
///
/// # Examples
///
/// ```
/// use microfaas_sim::faults::{FaultInjector, FaultPlan};
///
/// let mut inert = FaultInjector::new(&FaultPlan::empty());
/// assert!(!inert.is_active());
/// assert!(!inert.boot_fails(0), "no plan, no failures");
///
/// let plan = FaultPlan::from_json(
///     r#"{"seed": 7, "faults": [{"kind": "boot_failure", "p": 1.0}]}"#,
/// ).expect("valid");
/// let mut certain = FaultInjector::new(&plan);
/// assert!(certain.boot_fails(0), "p = 1 always fires");
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: Rng,
    active: bool,
    crashes: Vec<(SimTime, usize)>,
    boot_failure: Vec<(Option<usize>, f64)>,
    hang: Vec<(Option<usize>, f64)>,
    net_loss: Vec<(Option<usize>, f64)>,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`]; parse plans
    /// through [`FaultPlan::from_json`] to surface the error instead.
    pub fn new(plan: &FaultPlan) -> Self {
        plan.validate().expect("fault plan must be valid");
        let mut injector = FaultInjector {
            rng: Rng::new(plan.seed),
            active: !plan.is_empty(),
            crashes: Vec::new(),
            boot_failure: Vec::new(),
            hang: Vec::new(),
            net_loss: Vec::new(),
        };
        for fault in &plan.faults {
            match (fault.kind, fault.trigger) {
                (FaultKind::Crash, FaultTrigger::At(at)) => {
                    injector
                        .crashes
                        .push((at, fault.worker.expect("validated: crash has a worker")));
                }
                (FaultKind::BootFailure, FaultTrigger::Probability(p)) => {
                    injector.boot_failure.push((fault.worker, p));
                }
                (FaultKind::Hang, FaultTrigger::Probability(p)) => {
                    injector.hang.push((fault.worker, p));
                }
                (FaultKind::NetLoss, FaultTrigger::Probability(p)) => {
                    injector.net_loss.push((fault.worker, p));
                }
                _ => unreachable!("rejected by validate"),
            }
        }
        injector.crashes.sort_by_key(|&(at, w)| (at, w));
        injector
    }

    /// True if the plan injects at least one fault.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Scheduled `(instant, worker)` crashes, sorted by time.
    pub fn scheduled_crashes(&self) -> &[(SimTime, usize)] {
        &self.crashes
    }

    /// Draws whether `worker`'s current boot attempt fails.
    pub fn boot_fails(&mut self, worker: usize) -> bool {
        let p = combined_probability(&self.boot_failure, worker);
        p > 0.0 && self.rng.chance(p)
    }

    /// Draws whether the job starting on `worker` hangs.
    pub fn hangs(&mut self, worker: usize) -> bool {
        let p = combined_probability(&self.hang, worker);
        p > 0.0 && self.rng.chance(p)
    }

    /// Draws whether `worker`'s current result transfer is lost.
    pub fn transfer_lost(&mut self, worker: usize) -> bool {
        let p = combined_probability(&self.net_loss, worker);
        p > 0.0 && self.rng.chance(p)
    }

    /// A uniform draw in `[0, 1)` from the fault stream, used to jitter
    /// retry backoff without touching the simulation RNG.
    pub fn jitter01(&mut self) -> f64 {
        self.rng.next_f64()
    }
}

/// Combines every matching spec as independent Bernoulli trials:
/// `1 - Π(1 - pᵢ)`, resolved with a single draw at the check site.
fn combined_probability(specs: &[(Option<usize>, f64)], worker: usize) -> f64 {
    let mut miss = 1.0;
    for &(target, p) in specs {
        if target.is_none() || target == Some(worker) {
            miss *= 1.0 - p;
        }
    }
    1.0 - miss
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "seed": 99,
        "faults": [
            {"kind": "crash", "worker": 3, "at_s": 10.0},
            {"kind": "boot_failure", "p": 0.2},
            {"kind": "hang", "worker": 2, "p": 0.05},
            {"kind": "net_loss", "p": 0.01}
        ]
    }"#;

    #[test]
    fn parses_the_full_schema() {
        let plan = FaultPlan::from_json(EXAMPLE).expect("valid");
        assert_eq!(plan.seed, 99);
        assert_eq!(plan.faults.len(), 4);
        assert_eq!(
            plan.faults[0],
            FaultSpec {
                kind: FaultKind::Crash,
                worker: Some(3),
                trigger: FaultTrigger::At(SimTime::from_secs(10)),
            }
        );
        assert_eq!(plan.faults[1].worker, None, "absent worker = all workers");
        assert_eq!(plan.faults[2].trigger, FaultTrigger::Probability(0.05));
    }

    #[test]
    fn seed_defaults_to_zero() {
        let plan = FaultPlan::from_json(r#"{"faults": []}"#).expect("valid");
        assert_eq!(plan.seed, 0);
        assert!(plan.is_empty());
    }

    #[test]
    fn rejects_malformed_plans() {
        for (text, needle) in [
            ("[1, 2]", "top level"),
            (r#"{"sede": 1}"#, "unknown top-level key"),
            (
                r#"{"faults": [{"kind": "meteor", "p": 0.5}]}"#,
                "unknown kind",
            ),
            (
                r#"{"faults": [{"kind": "crash", "worker": 1, "p": 0.5}]}"#,
                "scheduled",
            ),
            (
                r#"{"faults": [{"kind": "hang", "at_s": 5}]}"#,
                "probabilistic",
            ),
            (
                r#"{"faults": [{"kind": "crash", "at_s": 5}]}"#,
                "target worker",
            ),
            (
                r#"{"faults": [{"kind": "hang", "p": 1.5}]}"#,
                "outside [0, 1]",
            ),
            (r#"{"faults": [{"kind": "hang"}]}"#, "needs"),
            (r#"{"faults": [{"p": 0.5}]}"#, "missing \"kind\""),
            (
                r#"{"faults": [{"kind": "hang", "p": 0.1, "when": 3}]}"#,
                "unknown key",
            ),
            (r#"{"seed": -4}"#, "non-negative"),
            (r#"{"seed": 1,}"#, "expected"),
            (r#"{"seed": 1} trailing"#, "trailing"),
        ] {
            let err = FaultPlan::from_json(text).expect_err(text);
            assert!(
                err.to_string().contains(needle),
                "{text}: {err} should mention {needle}"
            );
        }
    }

    #[test]
    fn empty_plan_is_inert() {
        let mut injector = FaultInjector::new(&FaultPlan::empty());
        assert!(!injector.is_active());
        assert!(injector.scheduled_crashes().is_empty());
        for w in 0..8 {
            assert!(!injector.boot_fails(w));
            assert!(!injector.hangs(w));
            assert!(!injector.transfer_lost(w));
        }
        // No draw was consumed: the stream still matches a fresh RNG.
        assert_eq!(injector.jitter01(), Rng::new(0).next_f64());
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let plan = FaultPlan::from_json(EXAMPLE).expect("valid");
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for w in 0..6 {
            assert_eq!(a.boot_fails(w), b.boot_fails(w));
            assert_eq!(a.hangs(w), b.hangs(w));
            assert_eq!(a.transfer_lost(w), b.transfer_lost(w));
        }
        assert_eq!(a.jitter01(), b.jitter01());
    }

    #[test]
    fn worker_filters_apply() {
        let plan = FaultPlan::from_json(
            r#"{"seed": 3, "faults": [{"kind": "hang", "worker": 2, "p": 1.0}]}"#,
        )
        .expect("valid");
        let mut injector = FaultInjector::new(&plan);
        assert!(!injector.hangs(0), "filtered out: no draw, no fault");
        assert!(injector.hangs(2), "targeted worker always hangs at p=1");
    }

    #[test]
    fn probabilities_combine_as_independent_trials() {
        let specs = vec![(None, 0.5), (Some(1), 0.5)];
        assert_eq!(combined_probability(&specs, 0), 0.5);
        assert_eq!(combined_probability(&specs, 1), 0.75);
        assert_eq!(combined_probability(&[], 0), 0.0);
    }

    #[test]
    fn scheduled_crashes_sort_by_time() {
        let plan = FaultPlan::from_json(
            r#"{"faults": [
                {"kind": "crash", "worker": 1, "at_s": 20},
                {"kind": "crash", "worker": 4, "at_s": 5}
            ]}"#,
        )
        .expect("valid");
        let injector = FaultInjector::new(&plan);
        assert_eq!(
            injector.scheduled_crashes(),
            &[(SimTime::from_secs(5), 4), (SimTime::from_secs(20), 1)]
        );
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let value =
            json::parse(r#"{"a": [1, -2.5, true, null, "x\ny"], "b": {}}"#).expect("valid json");
        let object = value.as_object().expect("object");
        assert_eq!(object.len(), 2);
        let items = object[0].1.as_array().expect("array");
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[4].as_str(), Some("x\ny"));
        assert_eq!(items[1].as_u64(), None, "negative is not u64");
    }
}
