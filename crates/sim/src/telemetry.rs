//! Time-resolved telemetry: tumbling windows over simulated time, SLO
//! burn-rate alerting, and EWMA anomaly detection.
//!
//! The streaming results path collapses a whole run into end-of-run
//! aggregates; this module keeps the *when*. Two window taps fold the
//! run into fixed-width tumbling windows with bounded memory:
//!
//! - [`EventWindows`] is a [`TraceSink`]: it watches the trace stream
//!   and integrates piecewise-constant signals (power draw, executing /
//!   booting worker counts, outstanding queue depth) exactly across
//!   window boundaries, and counts discrete events (faults, retries,
//!   shed jobs, budget breaches, cache traffic) into the window they
//!   occurred in.
//! - [`CompletionWindows`] receives per-job completions (throughput,
//!   latency quantiles via [`QuantileSketch`], per-tenant SLO hits).
//!
//! Both keep only the *last* `max_windows` windows (the
//! [`crate::trace::TraceBuffer`] flight-recorder discipline), so a
//! multi-day horizon cannot exhaust memory. [`TelemetrySeries::assemble`]
//! joins the two taps into one immutable series that renders as CSV,
//! Prometheus gauges, or Perfetto counter tracks
//! ([`crate::chrome::export_counter_trace`]).
//!
//! On top of the windows, [`evaluate_alerts`] runs Google-SRE-style
//! multi-window burn-rate rules against each tenant's SLO error budget,
//! an EWMA z-score anomaly detector on latency and power, and an
//! energy-budget breach monitor — emitting typed, deterministic
//! [`Alert`] records. Everything here is a pure fold over the event
//! stream: same seed, same windows, same alerts, byte for byte. See
//! `docs/MONITORING.md` for the handbook.

use std::collections::VecDeque;
use std::fmt;

use crate::metrics::MetricsRegistry;
use crate::stats::QuantileSketch;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceSink, WorkerState};

/// Default tumbling-window width: 1 simulated second.
pub const DEFAULT_WINDOW: SimDuration = SimDuration::from_secs(1);

/// Default flight-recorder depth: enough for an hour of 1 s windows.
pub const DEFAULT_MAX_WINDOWS: usize = 4096;

/// Relative error of the per-window latency sketches.
pub const DEFAULT_TELEMETRY_EPSILON: f64 = 0.01;

/// Configuration for the windowed taps.
///
/// # Examples
///
/// ```
/// use microfaas_sim::telemetry::TelemetryConfig;
/// use microfaas_sim::SimDuration;
///
/// let config = TelemetryConfig {
///     window: SimDuration::from_secs(5),
///     ..TelemetryConfig::default()
/// };
/// assert_eq!(config.window.as_secs_f64(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Tumbling-window width in simulated time.
    pub window: SimDuration,
    /// Maximum windows retained; older windows are evicted (and
    /// counted) flight-recorder style.
    pub max_windows: usize,
    /// Relative error of the per-window latency quantile sketches.
    pub quantile_epsilon: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            window: DEFAULT_WINDOW,
            max_windows: DEFAULT_MAX_WINDOWS,
            quantile_epsilon: DEFAULT_TELEMETRY_EPSILON,
        }
    }
}

impl TelemetryConfig {
    fn validate(&self) {
        assert!(!self.window.is_zero(), "telemetry window must be non-zero");
        assert!(self.max_windows > 0, "must retain at least one window");
        assert!(
            self.quantile_epsilon > 0.0 && self.quantile_epsilon < 1.0,
            "relative error must be in (0, 1), got {}",
            self.quantile_epsilon
        );
    }
}

/// One tenant's identity and latency SLO, as seen by the telemetry
/// layer. An infinite SLO means "never violated" (no burn-rate alerts).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (matches the run's tenant table order).
    pub name: String,
    /// Latency SLO threshold in seconds; a completion at or under it
    /// counts as an SLO hit.
    pub slo_latency_s: f64,
}

/// Per-window integrals and counters folded from the trace stream.
#[derive(Debug, Clone, Default)]
struct EventAcc {
    energy_j: f64,
    exec_worker_s: f64,
    boot_worker_s: f64,
    depth_job_s: f64,
    faults: u64,
    retries: u64,
    shed: u64,
    budget_breaches: u64,
    cache_hits: u64,
    cache_misses: u64,
    coalesced: u64,
}

/// The event-stream tap: a [`TraceSink`] that folds the trace into
/// tumbling windows with exact piecewise integration.
///
/// Continuous signals (total power draw, executing/booting worker
/// counts, outstanding queue depth) are integrated against simulated
/// time, split exactly at window boundaries — a job that executes from
/// 0.8 s to 1.3 s contributes 0.2 worker-seconds to window 0 and 0.3 to
/// window 1. Discrete events are counted into the window containing
/// their timestamp. Memory is bounded: only the last
/// [`TelemetryConfig::max_windows`] windows survive.
#[derive(Debug, Clone)]
pub struct EventWindows {
    width_us: u64,
    limit: usize,
    /// Window index of `wins[0]`.
    base: u64,
    wins: VecDeque<EventAcc>,
    dropped: u64,
    /// Integration frontier, in microseconds.
    cursor_us: u64,
    /// End instant of the newest window, cached so the per-event hot
    /// path needs no division or multiplication.
    boundary_us: u64,
    /// Integrals of the *open* window, kept as scalars so the hot path
    /// never reaches into the ring; flushed into the accumulator when
    /// the window closes (or at seal/assemble time).
    cur_energy_j: f64,
    cur_exec_worker_s: f64,
    cur_boot_worker_s: f64,
    cur_depth_job_s: f64,
    /// Per-worker draw and occupancy class, one cache line per pair of
    /// adjacent workers (state changes and power samples arrive
    /// back-to-back for the same worker, so the second touch is warm).
    cells: Vec<WorkerCell>,
    total_w: f64,
    executing: usize,
    booting: usize,
    /// Jobs enqueued but not yet completed, shed, or failed.
    outstanding: u64,
}

/// One worker's live telemetry state: current draw in watts plus the
/// occupancy class (0 = other, 1 = executing, 2 = booting).
#[derive(Debug, Clone, Copy, Default)]
struct WorkerCell {
    watts: f64,
    state: u8,
}

impl EventWindows {
    /// Creates the tap; window 0 starts at `SimTime::ZERO`.
    pub fn new(config: &TelemetryConfig) -> Self {
        config.validate();
        let mut wins = VecDeque::with_capacity(16);
        wins.push_back(EventAcc::default());
        EventWindows {
            width_us: config.window.as_micros(),
            limit: config.max_windows,
            base: 0,
            wins,
            dropped: 0,
            cursor_us: 0,
            boundary_us: config.window.as_micros(),
            cur_energy_j: 0.0,
            cur_exec_worker_s: 0.0,
            cur_boot_worker_s: 0.0,
            cur_depth_job_s: 0.0,
            cells: Vec::new(),
            total_w: 0.0,
            executing: 0,
            booting: 0,
            outstanding: 0,
        }
    }

    /// Closes the integrals at the run's true end instant, so idle tail
    /// time (after the last event) is accounted.
    pub fn seal(&mut self, end: SimTime) {
        let end_us = end.as_micros();
        if end_us > self.cursor_us {
            self.integrate_to(end_us);
        }
        self.flush_cur();
    }

    /// Adds the open window's scalar integrals into its ring slot and
    /// zeroes them. Idempotent between events.
    fn flush_cur(&mut self) {
        let acc = self.wins.back_mut().expect("ring is never empty");
        acc.energy_j += self.cur_energy_j;
        acc.exec_worker_s += self.cur_exec_worker_s;
        acc.boot_worker_s += self.cur_boot_worker_s;
        acc.depth_job_s += self.cur_depth_job_s;
        self.cur_energy_j = 0.0;
        self.cur_exec_worker_s = 0.0;
        self.cur_boot_worker_s = 0.0;
        self.cur_depth_job_s = 0.0;
    }

    fn push_window(&mut self) {
        self.flush_cur();
        self.wins.push_back(EventAcc::default());
        self.boundary_us += self.width_us;
        if self.wins.len() > self.limit {
            self.wins.pop_front();
            self.base += 1;
            self.dropped += 1;
        }
    }

    /// Advances the integration frontier to `to_us`, splitting exactly
    /// at window boundaries.
    fn integrate_to(&mut self, to_us: u64) {
        while self.cursor_us < to_us {
            let seg_end = to_us.min(self.boundary_us);
            let dt_s = (seg_end - self.cursor_us) as f64 / 1e6;
            if dt_s > 0.0 {
                self.cur_energy_j += self.total_w * dt_s;
                self.cur_exec_worker_s += self.executing as f64 * dt_s;
                self.cur_boot_worker_s += self.booting as f64 * dt_s;
                self.cur_depth_job_s += self.outstanding as f64 * dt_s;
            }
            self.cursor_us = seg_end;
            if seg_end == self.boundary_us && self.cursor_us < to_us {
                self.push_window();
            }
        }
    }

    /// Integrates up to `at_us`, opening the window containing it
    /// (events arrive in time order, so that is always the newest
    /// window). The common cases — another event at the frontier
    /// instant, or a short in-window advance — take the early branches
    /// and never reach into the ring; only a boundary crossing walks
    /// the split loop.
    #[inline]
    fn advance(&mut self, at_us: u64) {
        if at_us >= self.boundary_us {
            self.integrate_to(at_us);
            // An event landing exactly on the final boundary belongs
            // to the next window, which the integration loop did not
            // need to open.
            while at_us >= self.boundary_us {
                self.push_window();
            }
        } else if at_us > self.cursor_us {
            let dt_s = (at_us - self.cursor_us) as f64 / 1e6;
            self.cur_energy_j += self.total_w * dt_s;
            self.cur_exec_worker_s += self.executing as f64 * dt_s;
            self.cur_boot_worker_s += self.booting as f64 * dt_s;
            self.cur_depth_job_s += self.outstanding as f64 * dt_s;
            self.cursor_us = at_us;
        }
    }

    /// [`Self::advance`], then the open window's accumulator — for the
    /// rare discrete-count events.
    fn touch(&mut self, at_us: u64) -> &mut EventAcc {
        self.advance(at_us);
        self.wins.back_mut().expect("ring is never empty")
    }

    fn grow(&mut self, worker: usize) {
        if worker >= self.cells.len() {
            self.cells.resize(worker + 1, WorkerCell::default());
        }
    }
}

impl TraceSink for EventWindows {
    // Inline(always) so engines monomorphized over
    // `TypedObserver<EventWindows>` collapse the match per emission
    // site's statically-known variant — events the windows ignore
    // (~40% of the stream) then cost nothing at all.
    #[inline(always)]
    fn record(&mut self, at: SimTime, event: TraceEvent) {
        // Fast-exit for event kinds the windows ignore, before paying
        // for integration: this tap rides the hot event loop.
        match event {
            TraceEvent::PowerSample { worker, watts } => {
                self.advance(at.as_micros());
                self.grow(worker);
                let cell = &mut self.cells[worker];
                self.total_w += watts - cell.watts;
                cell.watts = watts;
            }
            TraceEvent::WorkerStateChange { worker, state } => {
                self.advance(at.as_micros());
                self.grow(worker);
                let class = match state {
                    WorkerState::Executing => 1,
                    WorkerState::Booting | WorkerState::Rebooting => 2,
                    _ => 0,
                };
                let old = self.cells[worker].state;
                if old != class {
                    match old {
                        1 => self.executing -= 1,
                        2 => self.booting -= 1,
                        _ => {}
                    }
                    match class {
                        1 => self.executing += 1,
                        2 => self.booting += 1,
                        _ => {}
                    }
                    self.cells[worker].state = class;
                }
            }
            TraceEvent::JobEnqueued { .. } => {
                self.advance(at.as_micros());
                self.outstanding += 1;
            }
            TraceEvent::JobCompleted { .. } => {
                self.advance(at.as_micros());
                self.outstanding = self.outstanding.saturating_sub(1);
            }
            TraceEvent::JobShed { .. } => {
                let acc = self.touch(at.as_micros());
                acc.shed += 1;
                self.outstanding = self.outstanding.saturating_sub(1);
            }
            TraceEvent::BudgetAction { action: "shed", .. } => {
                let acc = self.touch(at.as_micros());
                acc.shed += 1;
                self.outstanding = self.outstanding.saturating_sub(1);
            }
            TraceEvent::JobFailed { .. } | TraceEvent::JobTimedOut { .. } => {
                self.advance(at.as_micros());
                self.outstanding = self.outstanding.saturating_sub(1);
            }
            TraceEvent::FaultInjected { .. } => {
                self.touch(at.as_micros()).faults += 1;
            }
            TraceEvent::JobRetryScheduled { .. } => {
                self.touch(at.as_micros()).retries += 1;
            }
            TraceEvent::BudgetBreach { .. } => {
                self.touch(at.as_micros()).budget_breaches += 1;
            }
            TraceEvent::CacheHit { .. } => {
                self.touch(at.as_micros()).cache_hits += 1;
            }
            TraceEvent::CacheMiss { .. } => {
                self.touch(at.as_micros()).cache_misses += 1;
            }
            TraceEvent::Coalesced { .. } => {
                self.touch(at.as_micros()).coalesced += 1;
            }
            _ => {}
        }
    }
}

/// Per-window completion statistics.
#[derive(Debug, Clone)]
struct CompAcc {
    completed: u64,
    served_from_cache: u64,
    latency_sum: f64,
    latency_max: f64,
    sketch: QuantileSketch,
    tenant_completed: Vec<u64>,
    tenant_slo_hits: Vec<u64>,
}

impl CompAcc {
    fn new(epsilon: f64, tenants: usize) -> Self {
        CompAcc {
            completed: 0,
            served_from_cache: 0,
            latency_sum: 0.0,
            latency_max: 0.0,
            sketch: QuantileSketch::with_relative_error(epsilon),
            tenant_completed: vec![0; tenants],
            tenant_slo_hits: vec![0; tenants],
        }
    }
}

/// The completion-stream tap: folds per-job completions into the same
/// tumbling windows as [`EventWindows`] (throughput, latency quantiles,
/// per-tenant SLO attainment).
///
/// Engines feed it through their streaming-sink plumbing; completions
/// arrive in simulated-time order, so each record lands in the newest
/// window.
#[derive(Debug, Clone)]
pub struct CompletionWindows {
    width_us: u64,
    limit: usize,
    base: u64,
    wins: VecDeque<CompAcc>,
    dropped: u64,
    /// End instant of the newest window, cached so the per-completion
    /// hot path needs no division.
    boundary_us: u64,
    epsilon: f64,
    tenants: Vec<TenantSpec>,
}

impl CompletionWindows {
    /// Creates the tap. An empty `tenants` table gets a single
    /// catch-all tenant named `all` with an infinite SLO.
    pub fn new(config: &TelemetryConfig, tenants: Vec<TenantSpec>) -> Self {
        config.validate();
        let tenants = if tenants.is_empty() {
            vec![TenantSpec {
                name: "all".to_owned(),
                slo_latency_s: f64::INFINITY,
            }]
        } else {
            tenants
        };
        let epsilon = config.quantile_epsilon;
        let mut wins = VecDeque::with_capacity(16);
        wins.push_back(CompAcc::new(epsilon, tenants.len()));
        CompletionWindows {
            width_us: config.window.as_micros(),
            limit: config.max_windows,
            base: 0,
            wins,
            dropped: 0,
            boundary_us: config.window.as_micros(),
            epsilon,
            tenants,
        }
    }

    fn push_window(&mut self) {
        let acc = CompAcc::new(self.epsilon, self.tenants.len());
        self.wins.push_back(acc);
        self.boundary_us += self.width_us;
        if self.wins.len() > self.limit {
            self.wins.pop_front();
            self.base += 1;
            self.dropped += 1;
        }
    }

    /// Records one completion. `served_from_cache` marks invocations
    /// that never executed (result-cache hits and coalesced followers).
    ///
    /// # Panics
    ///
    /// Panics if `latency_s` is negative or not finite.
    #[inline]
    pub fn record(&mut self, finished: SimTime, latency_s: f64, tenant: u16, from_cache: bool) {
        let at_us = finished.as_micros();
        // Completions arrive in simulated-time order, so nearly every
        // record lands in the newest window — reach it without the
        // index division.
        let pos = if at_us >= self.boundary_us - self.width_us {
            while at_us >= self.boundary_us {
                self.push_window();
            }
            self.wins.len() - 1
        } else {
            let index = at_us / self.width_us;
            debug_assert!(
                index >= self.base,
                "completions must arrive in simulated-time order"
            );
            (index.max(self.base) - self.base) as usize
        };
        let tenant = (tenant as usize).min(self.tenants.len() - 1);
        let acc = &mut self.wins[pos];
        acc.completed += 1;
        if from_cache {
            acc.served_from_cache += 1;
        }
        acc.latency_sum += latency_s;
        acc.latency_max = acc.latency_max.max(latency_s);
        acc.sketch.record(latency_s);
        acc.tenant_completed[tenant] += 1;
        if latency_s <= self.tenants[tenant].slo_latency_s {
            acc.tenant_slo_hits[tenant] += 1;
        }
    }

    fn get(&self, index: u64) -> Option<&CompAcc> {
        if index < self.base {
            return None;
        }
        self.wins.get((index - self.base) as usize)
    }
}

/// One tenant's completions within a single window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantWindow {
    /// Completions attributed to the tenant in this window.
    pub completed: u64,
    /// Of those, how many met the tenant's latency SLO.
    pub slo_hits: u64,
}

impl TenantWindow {
    /// Fraction of this window's completions that met the SLO. A
    /// zero-traffic window counts as full attainment (nothing violated).
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.slo_hits as f64 / self.completed as f64
        }
    }

    /// SLO violations in this window.
    pub fn errors(&self) -> u64 {
        self.completed - self.slo_hits
    }
}

/// One assembled tumbling window: every signal the telemetry layer
/// reports, already reduced to plain numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryWindow {
    /// Zero-based window index (global — stable across eviction).
    pub index: u64,
    /// Window start instant.
    pub start: SimTime,
    /// Covered span: the window width, except for the final partial
    /// window which ends at the run's end instant.
    pub elapsed: SimDuration,
    /// Jobs completed in the window.
    pub completed: u64,
    /// Completions served without executing (cache hits + coalesced).
    pub served_from_cache: u64,
    /// Mean end-to-end latency of the window's completions, seconds.
    pub mean_latency_s: f64,
    /// Median latency (sketch estimate), seconds.
    pub p50_latency_s: f64,
    /// 95th-percentile latency (sketch estimate), seconds.
    pub p95_latency_s: f64,
    /// 99th-percentile latency (sketch estimate), seconds.
    pub p99_latency_s: f64,
    /// Exact maximum latency, seconds.
    pub max_latency_s: f64,
    /// Time-averaged outstanding jobs (enqueued, not yet done).
    pub queue_depth: f64,
    /// Time-averaged workers in the executing state.
    pub executing: f64,
    /// Time-averaged workers booting or rebooting.
    pub booting: f64,
    /// Mean cluster power draw over the window, watts.
    pub power_w: f64,
    /// Energy consumed in the window, joules.
    pub energy_j: f64,
    /// Result-cache lookups that hit.
    pub cache_hits: u64,
    /// Result-cache lookups that missed.
    pub cache_misses: u64,
    /// Invocations coalesced onto an in-flight leader.
    pub coalesced: u64,
    /// Faults injected in the window.
    pub faults: u64,
    /// Retries scheduled in the window.
    pub retries: u64,
    /// Jobs shed (degraded capacity or budget enforcement).
    pub shed: u64,
    /// Energy-budget cap crossings.
    pub budget_breaches: u64,
    /// Per-tenant completions and SLO hits, in tenant-table order.
    pub tenants: Vec<TenantWindow>,
}

impl TelemetryWindow {
    /// Completions per covered second (0 for an empty span).
    pub fn throughput_per_s(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.completed as f64 / s
        } else {
            0.0
        }
    }

    /// Cache lookup hit rate (hits ÷ lookups), 0 when nothing was
    /// looked up in the window.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// A counter track for the Perfetto export: one named time-series whose
/// points become `"ph":"C"` events
/// (see [`crate::chrome::export_counter_trace`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTrack {
    /// Track name as shown in the Perfetto UI.
    pub name: String,
    /// `(instant, value)` points, in time order.
    pub points: Vec<(SimTime, f64)>,
}

/// The assembled time-series for one run: windows plus the tenant table
/// and end-of-run instant, ready to render.
///
/// # Examples
///
/// ```
/// use microfaas_sim::telemetry::{
///     CompletionWindows, EventWindows, TelemetryConfig, TelemetrySeries,
/// };
/// use microfaas_sim::trace::{TraceEvent, TraceSink};
/// use microfaas_sim::SimTime;
///
/// let config = TelemetryConfig::default();
/// let mut events = EventWindows::new(&config);
/// let mut completions = CompletionWindows::new(&config, Vec::new());
/// events.record(
///     SimTime::from_millis(250),
///     TraceEvent::PowerSample { worker: 0, watts: 4.0 },
/// );
/// completions.record(SimTime::from_millis(900), 0.65, 0, false);
/// let end = SimTime::from_secs(2);
/// events.seal(end);
/// let series = TelemetrySeries::assemble(end, events, completions);
/// assert_eq!(series.windows.len(), 2);
/// assert_eq!(series.windows[0].completed, 1);
/// // The integral splits exactly at the window boundary: 4 W over the
/// // last 0.75 s of window 0, then 4 W across all of window 1.
/// assert!((series.windows[0].energy_j - 3.0).abs() < 1e-9);
/// assert!((series.windows[1].energy_j - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySeries {
    /// Tumbling-window width.
    pub window: SimDuration,
    /// The run's end instant (last window may be partial).
    pub end: SimTime,
    /// Windows evicted by the flight-recorder bound (they are *not* in
    /// `windows`; index 0 of `windows` is the oldest survivor).
    pub dropped_windows: u64,
    /// Tenant table the per-window tenant columns refer to.
    pub tenants: Vec<TenantSpec>,
    /// The retained windows, oldest first.
    pub windows: Vec<TelemetryWindow>,
}

impl TelemetrySeries {
    /// Joins the two taps into one series. `end` must be the run's true
    /// end instant (the taps should have been sealed there).
    ///
    /// # Panics
    ///
    /// Panics if the taps were built with different window widths.
    pub fn assemble(
        end: SimTime,
        mut events: EventWindows,
        completions: CompletionWindows,
    ) -> Self {
        assert_eq!(
            events.width_us, completions.width_us,
            "event and completion taps must share a window width"
        );
        // Idempotent after `seal`; covers callers that assemble without
        // sealing first.
        events.flush_cur();
        let width_us = events.width_us;
        let empty = CompAcc::new(completions.epsilon, completions.tenants.len());
        let mut windows = Vec::with_capacity(events.wins.len());
        for (k, acc) in events.wins.iter().enumerate() {
            let index = events.base + k as u64;
            let start_us = index * width_us;
            let end_us = ((index + 1) * width_us).min(end.as_micros()).max(start_us);
            let elapsed = SimDuration::from_micros(end_us - start_us);
            let covered_s = elapsed.as_secs_f64();
            let comp = completions.get(index).unwrap_or(&empty);
            let mean = if comp.completed > 0 {
                comp.latency_sum / comp.completed as f64
            } else {
                0.0
            };
            let q = |p: f64| comp.sketch.quantile(p).unwrap_or(0.0);
            let avg = |integral: f64| {
                if covered_s > 0.0 {
                    integral / covered_s
                } else {
                    0.0
                }
            };
            windows.push(TelemetryWindow {
                index,
                start: SimTime::from_micros(start_us),
                elapsed,
                completed: comp.completed,
                served_from_cache: comp.served_from_cache,
                mean_latency_s: mean,
                p50_latency_s: q(50.0),
                p95_latency_s: q(95.0),
                p99_latency_s: q(99.0),
                max_latency_s: comp.latency_max,
                queue_depth: avg(acc.depth_job_s),
                executing: avg(acc.exec_worker_s),
                booting: avg(acc.boot_worker_s),
                power_w: avg(acc.energy_j),
                energy_j: acc.energy_j,
                cache_hits: acc.cache_hits,
                cache_misses: acc.cache_misses,
                coalesced: acc.coalesced,
                faults: acc.faults,
                retries: acc.retries,
                shed: acc.shed,
                budget_breaches: acc.budget_breaches,
                tenants: (0..completions.tenants.len())
                    .map(|t| TenantWindow {
                        completed: comp.tenant_completed[t],
                        slo_hits: comp.tenant_slo_hits[t],
                    })
                    .collect(),
            });
        }
        TelemetrySeries {
            window: SimDuration::from_micros(width_us),
            end,
            dropped_windows: events.dropped,
            tenants: completions.tenants,
            windows,
        }
    }

    /// Total completions across the retained windows.
    pub fn total_completed(&self) -> u64 {
        self.windows.iter().map(|w| w.completed).sum()
    }

    /// Total energy across the retained windows, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.windows.iter().map(|w| w.energy_j).sum()
    }

    /// Renders the series as CSV: one row per window, a fixed column
    /// set plus three columns per tenant. Floats use fixed six-decimal
    /// formatting, so the output is byte-identical for identical runs.
    pub fn to_csv(&self) -> String {
        use fmt::Write as _;
        let mut out = String::with_capacity(self.windows.len() * 256 + 256);
        out.push_str(
            "window,start_s,elapsed_s,completed,throughput_per_s,mean_latency_s,\
             p50_latency_s,p95_latency_s,p99_latency_s,max_latency_s,queue_depth,\
             executing_workers,booting_workers,power_w,energy_j,cache_hits,\
             cache_misses,coalesced,cache_hit_rate,faults,retries,shed,budget_breaches",
        );
        for tenant in &self.tenants {
            let _ = write!(
                out,
                ",{n}_completed,{n}_slo_hits,{n}_attainment",
                n = tenant.name
            );
        }
        out.push('\n');
        for w in &self.windows {
            let _ = write!(
                out,
                "{},{:.6},{:.6},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},\
                 {:.6},{:.6},{:.6},{:.6},{},{},{},{:.6},{},{},{},{}",
                w.index,
                w.start.as_secs_f64(),
                w.elapsed.as_secs_f64(),
                w.completed,
                w.throughput_per_s(),
                w.mean_latency_s,
                w.p50_latency_s,
                w.p95_latency_s,
                w.p99_latency_s,
                w.max_latency_s,
                w.queue_depth,
                w.executing,
                w.booting,
                w.power_w,
                w.energy_j,
                w.cache_hits,
                w.cache_misses,
                w.coalesced,
                w.cache_hit_rate(),
                w.faults,
                w.retries,
                w.shed,
                w.budget_breaches,
            );
            for t in &w.tenants {
                let _ = write!(out, ",{},{},{:.6}", t.completed, t.slo_hits, t.attainment());
            }
            out.push('\n');
        }
        out
    }

    /// Renders every window as labeled Prometheus gauges
    /// (`telemetry_power_watts{window="17"} ...`), plus scalar gauges
    /// describing the series itself. Registration order is fixed, so
    /// the exposition is deterministic.
    pub fn render_prometheus(&self) -> String {
        let mut m = MetricsRegistry::new();
        let g = m.gauge("telemetry_window_width_seconds");
        m.set_gauge(g, self.window.as_secs_f64());
        let g = m.gauge("telemetry_windows_retained");
        m.set_gauge(g, self.windows.len() as f64);
        let g = m.gauge("telemetry_windows_dropped");
        m.set_gauge(g, self.dropped_windows as f64);
        let g = m.gauge("telemetry_run_end_seconds");
        m.set_gauge(g, self.end.as_secs_f64());
        for w in &self.windows {
            let i = w.index;
            let put = |m: &mut MetricsRegistry, family: &str, value: f64| {
                let id = m.gauge(&format!("{family}{{window=\"{i}\"}}"));
                m.set_gauge(id, value);
            };
            put(&mut m, "telemetry_completed", w.completed as f64);
            put(
                &mut m,
                "telemetry_throughput_per_second",
                w.throughput_per_s(),
            );
            put(&mut m, "telemetry_mean_latency_seconds", w.mean_latency_s);
            put(&mut m, "telemetry_p95_latency_seconds", w.p95_latency_s);
            put(&mut m, "telemetry_queue_depth", w.queue_depth);
            put(&mut m, "telemetry_executing_workers", w.executing);
            put(&mut m, "telemetry_booting_workers", w.booting);
            put(&mut m, "telemetry_power_watts", w.power_w);
            put(&mut m, "telemetry_energy_joules", w.energy_j);
            put(&mut m, "telemetry_cache_hit_rate", w.cache_hit_rate());
            put(&mut m, "telemetry_faults", w.faults as f64);
            put(
                &mut m,
                "telemetry_budget_breaches",
                w.budget_breaches as f64,
            );
            for (t, tw) in self.tenants.iter().zip(&w.tenants) {
                let id = m.gauge(&format!(
                    "telemetry_slo_attainment{{window=\"{i}\",tenant=\"{}\"}}",
                    t.name
                ));
                m.set_gauge(id, tw.attainment());
            }
        }
        m.render_prometheus()
    }

    /// The series as named counter tracks for the Perfetto export, one
    /// point per window at the window's start instant.
    pub fn counter_tracks(&self) -> Vec<CounterTrack> {
        let point = |f: &dyn Fn(&TelemetryWindow) -> f64| -> Vec<(SimTime, f64)> {
            self.windows.iter().map(|w| (w.start, f(w))).collect()
        };
        let mut tracks = vec![
            CounterTrack {
                name: "throughput_jobs_per_s".to_owned(),
                points: point(&|w| w.throughput_per_s()),
            },
            CounterTrack {
                name: "latency_p95_ms".to_owned(),
                points: point(&|w| w.p95_latency_s * 1e3),
            },
            CounterTrack {
                name: "queue_depth".to_owned(),
                points: point(&|w| w.queue_depth),
            },
            CounterTrack {
                name: "executing_workers".to_owned(),
                points: point(&|w| w.executing),
            },
            CounterTrack {
                name: "booting_workers".to_owned(),
                points: point(&|w| w.booting),
            },
            CounterTrack {
                name: "power_w".to_owned(),
                points: point(&|w| w.power_w),
            },
        ];
        if self
            .windows
            .iter()
            .any(|w| w.cache_hits + w.cache_misses > 0)
        {
            tracks.push(CounterTrack {
                name: "cache_hit_rate".to_owned(),
                points: point(&|w| w.cache_hit_rate()),
            });
        }
        for (t, spec) in self.tenants.iter().enumerate() {
            if spec.slo_latency_s.is_finite() {
                tracks.push(CounterTrack {
                    name: format!("slo_attainment_{}", spec.name),
                    points: point(&|w| w.tenants[t].attainment()),
                });
            }
        }
        tracks
    }
}

/// Alert severity, ordered: `Warning < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertSeverity {
    /// Ticket-grade: investigate during working hours.
    Warning,
    /// Page-grade: the error budget is burning too fast to wait.
    Critical,
}

impl AlertSeverity {
    /// Lower-case wire label.
    pub fn label(self) -> &'static str {
        match self {
            AlertSeverity::Warning => "warning",
            AlertSeverity::Critical => "critical",
        }
    }
}

impl fmt::Display for AlertSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What fired: the typed identity of an alert.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertSignal {
    /// A tenant's SLO error budget is burning faster than the rule's
    /// factor over both its long and short windows.
    BurnRate {
        /// Tenant the budget belongs to.
        tenant: String,
        /// Which [`BurnRateRule`] fired (its label).
        rule: String,
    },
    /// Windowed mean latency deviated from its EWMA baseline.
    LatencyAnomaly,
    /// Windowed power draw deviated from its EWMA baseline.
    PowerAnomaly,
    /// The energy-budget governor recorded cap crossings.
    BudgetBreach,
}

impl fmt::Display for AlertSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertSignal::BurnRate { tenant, rule } => {
                write!(f, "burn-rate {tenant}/{rule}")
            }
            AlertSignal::LatencyAnomaly => f.write_str("latency-anomaly"),
            AlertSignal::PowerAnomaly => f.write_str("power-anomaly"),
            AlertSignal::BudgetBreach => f.write_str("budget-breach"),
        }
    }
}

/// One deterministic alert: when it fired, when (if ever) it resolved,
/// and how bad it got at its peak.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The typed signal.
    pub signal: AlertSignal,
    /// Severity class.
    pub severity: AlertSeverity,
    /// Evaluation instant (window end) at which the condition first held.
    pub fired: SimTime,
    /// Evaluation instant at which it stopped holding; `None` if still
    /// firing when the series ended.
    pub resolved: Option<SimTime>,
    /// Peak of the driving statistic while firing (burn-rate factor,
    /// |z|-score, or breach count).
    pub peak: f64,
}

/// One multi-window burn-rate rule (the Google SRE workbook shape):
/// fire when the error-budget burn rate exceeds `factor` over both a
/// long window (commitment) and a short window (still happening now).
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRateRule {
    /// Rule name, used in [`AlertSignal::BurnRate`].
    pub label: String,
    /// Long lookback, in telemetry windows.
    pub long_windows: usize,
    /// Short lookback, in telemetry windows.
    pub short_windows: usize,
    /// Burn-rate threshold: 1.0 burns the whole budget exactly over
    /// the SLO period; 10.0 burns it ten times too fast.
    pub factor: f64,
    /// Severity when the rule fires.
    pub severity: AlertSeverity,
}

/// Alerting policy: the SLO target shared by every tenant's burn-rate
/// evaluation, the rule set, and the anomaly-detector constants.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertPolicy {
    /// SLO target as a fraction (0.95 = 95% of requests in SLO); the
    /// error budget is `1 - slo_target`.
    pub slo_target: f64,
    /// Multi-window burn-rate rules, evaluated per tenant.
    pub rules: Vec<BurnRateRule>,
    /// EWMA smoothing factor for the anomaly baselines.
    pub ewma_alpha: f64,
    /// |z|-score above which a window is anomalous.
    pub z_threshold: f64,
    /// Observations consumed before the detector may fire (baseline
    /// warm-up).
    pub warmup_windows: usize,
}

impl Default for AlertPolicy {
    /// A fast page-grade rule (10× burn over 12/3 windows) and a slow
    /// ticket-grade rule (2× burn over 48/12 windows), 95% SLO target.
    fn default() -> Self {
        AlertPolicy {
            slo_target: 0.95,
            rules: vec![
                BurnRateRule {
                    label: "fast".to_owned(),
                    long_windows: 12,
                    short_windows: 3,
                    factor: 10.0,
                    severity: AlertSeverity::Critical,
                },
                BurnRateRule {
                    label: "slow".to_owned(),
                    long_windows: 48,
                    short_windows: 12,
                    factor: 2.0,
                    severity: AlertSeverity::Warning,
                },
            ],
            ewma_alpha: 0.3,
            z_threshold: 4.0,
            warmup_windows: 8,
        }
    }
}

impl AlertPolicy {
    fn validate(&self) {
        assert!(
            self.slo_target > 0.0 && self.slo_target < 1.0,
            "SLO target must be in (0, 1), got {}",
            self.slo_target
        );
        assert!(
            self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {}",
            self.ewma_alpha
        );
        assert!(self.z_threshold > 0.0, "z threshold must be positive");
        for rule in &self.rules {
            assert!(rule.long_windows >= rule.short_windows && rule.short_windows > 0);
            assert!(rule.factor > 0.0, "burn-rate factor must be positive");
        }
    }
}

/// Walks a boolean condition over the windows, opening an alert on the
/// rising edge and resolving it on the falling edge. `stat` drives the
/// recorded peak.
fn edge_walk(
    series: &TelemetrySeries,
    signal: AlertSignal,
    severity: AlertSeverity,
    mut eval: impl FnMut(usize, &TelemetryWindow) -> Option<f64>,
    out: &mut Vec<Alert>,
) {
    let mut firing: Option<Alert> = None;
    for (k, w) in series.windows.iter().enumerate() {
        let instant = w.start + w.elapsed;
        match eval(k, w) {
            Some(stat) => {
                let alert = firing.get_or_insert_with(|| Alert {
                    signal: signal.clone(),
                    severity,
                    fired: instant,
                    resolved: None,
                    peak: 0.0,
                });
                alert.peak = alert.peak.max(stat);
            }
            None => {
                if let Some(mut alert) = firing.take() {
                    alert.resolved = Some(instant);
                    out.push(alert);
                }
            }
        }
    }
    out.extend(firing);
}

/// Evaluates the full alert policy against an assembled series:
/// per-tenant multi-window burn rates, EWMA z-score anomalies on
/// latency and power, and energy-budget breach windows. Pure and
/// deterministic — same series and policy, same alerts.
///
/// Alerts are returned sorted by firing time (ties broken by severity,
/// most severe first, then by construction order).
///
/// # Panics
///
/// Panics if the policy is malformed (see field docs on
/// [`AlertPolicy`]).
pub fn evaluate_alerts(series: &TelemetrySeries, policy: &AlertPolicy) -> Vec<Alert> {
    policy.validate();
    let mut out = Vec::new();
    let budget = 1.0 - policy.slo_target;

    // Per-tenant rolling error/request prefix sums for O(1) span sums.
    for (t, spec) in series.tenants.iter().enumerate() {
        if !spec.slo_latency_s.is_finite() {
            continue; // no SLO, no budget to burn
        }
        let n = series.windows.len();
        let mut err_prefix = Vec::with_capacity(n + 1);
        let mut req_prefix = Vec::with_capacity(n + 1);
        err_prefix.push(0u64);
        req_prefix.push(0u64);
        for w in &series.windows {
            let tw = &w.tenants[t];
            err_prefix.push(err_prefix.last().unwrap() + tw.errors());
            req_prefix.push(req_prefix.last().unwrap() + tw.completed);
        }
        let burn = |from: usize, to: usize| -> f64 {
            // Burn over windows [from, to): error fraction ÷ budget.
            let req = req_prefix[to] - req_prefix[from];
            if req == 0 {
                return 0.0;
            }
            let err = err_prefix[to] - err_prefix[from];
            (err as f64 / req as f64) / budget
        };
        for rule in &policy.rules {
            edge_walk(
                series,
                AlertSignal::BurnRate {
                    tenant: spec.name.clone(),
                    rule: rule.label.clone(),
                },
                rule.severity,
                |k, _| {
                    // Spans truncate at the series start: early windows
                    // evaluate over what exists.
                    let long = burn(k.saturating_add(1).saturating_sub(rule.long_windows), k + 1);
                    let short = burn(
                        k.saturating_add(1).saturating_sub(rule.short_windows),
                        k + 1,
                    );
                    (long >= rule.factor && short >= rule.factor).then_some(short)
                },
                &mut out,
            );
        }
    }

    // EWMA z-score anomalies: latency (windows with traffic only) and
    // power (every window). The detector tests each observation against
    // the baseline *before* folding it in.
    for (signal, values) in [
        (
            AlertSignal::LatencyAnomaly,
            series
                .windows
                .iter()
                .map(|w| (w.completed > 0).then_some(w.mean_latency_s))
                .collect::<Vec<_>>(),
        ),
        (
            AlertSignal::PowerAnomaly,
            series.windows.iter().map(|w| Some(w.power_w)).collect(),
        ),
    ] {
        let mut mean = 0.0f64;
        let mut var = 0.0f64;
        let mut seen = 0usize;
        edge_walk(
            series,
            signal,
            AlertSeverity::Warning,
            |k, _| {
                let x = values[k]?;
                let anomalous = if seen >= policy.warmup_windows {
                    // Deviation floor: 5% of the baseline, so a nearly
                    // constant signal's numeric jitter cannot fire.
                    let std = var.sqrt().max(mean.abs() * 0.05 + 1e-9);
                    let z = (x - mean) / std;
                    (z.abs() > policy.z_threshold).then_some(z.abs())
                } else {
                    None
                };
                seen += 1;
                let diff = x - mean;
                let incr = policy.ewma_alpha * diff;
                mean += incr;
                var = (1.0 - policy.ewma_alpha) * (var + diff * incr);
                anomalous
            },
            &mut out,
        );
    }

    // Energy-budget breach windows.
    edge_walk(
        series,
        AlertSignal::BudgetBreach,
        AlertSeverity::Critical,
        |_, w| (w.budget_breaches > 0).then_some(w.budget_breaches as f64),
        &mut out,
    );

    out.sort_by(|a, b| {
        a.fired
            .cmp(&b.fired)
            .then_with(|| b.severity.cmp(&a.severity))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(secs: u64) -> TelemetryConfig {
        TelemetryConfig {
            window: SimDuration::from_secs(secs),
            ..TelemetryConfig::default()
        }
    }

    #[test]
    fn power_integrates_exactly_across_window_boundaries() {
        let mut tap = EventWindows::new(&cfg(1));
        // 2 W from 0.5 s, 6 W from 1.5 s, off at 2.5 s.
        for (ms, watts) in [(500, 2.0), (1500, 6.0), (2500, 0.0)] {
            tap.record(
                SimTime::from_millis(ms),
                TraceEvent::PowerSample { worker: 0, watts },
            );
        }
        tap.seal(SimTime::from_secs(3));
        let series = TelemetrySeries::assemble(
            SimTime::from_secs(3),
            tap,
            CompletionWindows::new(&cfg(1), Vec::new()),
        );
        let energies: Vec<f64> = series.windows.iter().map(|w| w.energy_j).collect();
        // Window 0: 2 W × 0.5 s = 1 J; window 1: 2 W × 0.5 + 6 W × 0.5 = 4 J;
        // window 2: 6 W × 0.5 = 3 J.
        assert_eq!(energies.len(), 3);
        assert!((energies[0] - 1.0).abs() < 1e-9, "{energies:?}");
        assert!((energies[1] - 4.0).abs() < 1e-9, "{energies:?}");
        assert!((energies[2] - 3.0).abs() < 1e-9, "{energies:?}");
        assert!((series.total_energy_j() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_and_queue_depth_are_time_averaged() {
        let mut tap = EventWindows::new(&cfg(1));
        tap.record(
            SimTime::ZERO,
            TraceEvent::JobEnqueued {
                job: 0,
                function: "CascSHA",
            },
        );
        tap.record(
            SimTime::from_millis(500),
            TraceEvent::WorkerStateChange {
                worker: 3,
                state: WorkerState::Executing,
            },
        );
        tap.record(
            SimTime::from_millis(750),
            TraceEvent::JobCompleted {
                job: 0,
                function: "CascSHA",
                worker: 3,
                exec: SimDuration::from_millis(250),
                overhead: SimDuration::ZERO,
            },
        );
        tap.record(
            SimTime::from_millis(750),
            TraceEvent::WorkerStateChange {
                worker: 3,
                state: WorkerState::Rebooting,
            },
        );
        tap.seal(SimTime::from_secs(1));
        let series = TelemetrySeries::assemble(
            SimTime::from_secs(1),
            tap,
            CompletionWindows::new(&cfg(1), Vec::new()),
        );
        let w = &series.windows[0];
        assert!((w.queue_depth - 0.75).abs() < 1e-9, "{w:?}");
        assert!((w.executing - 0.25).abs() < 1e-9, "{w:?}");
        assert!((w.booting - 0.25).abs() < 1e-9, "{w:?}");
    }

    #[test]
    fn ring_keeps_only_the_newest_windows() {
        let config = TelemetryConfig {
            max_windows: 4,
            ..cfg(1)
        };
        let mut tap = EventWindows::new(&config);
        for s in 0..10u64 {
            tap.record(
                SimTime::from_secs(s),
                TraceEvent::FaultInjected {
                    worker: 0,
                    fault: "crash",
                },
            );
        }
        tap.seal(SimTime::from_secs(10));
        let series = TelemetrySeries::assemble(
            SimTime::from_secs(10),
            tap,
            CompletionWindows::new(&config, Vec::new()),
        );
        assert_eq!(series.windows.len(), 4);
        assert_eq!(series.dropped_windows, 6);
        assert_eq!(series.windows[0].index, 6);
        assert!(series.windows.iter().all(|w| w.faults == 1));
    }

    #[test]
    fn completions_land_in_their_windows_with_quantiles() {
        let mut comp = CompletionWindows::new(
            &cfg(1),
            vec![
                TenantSpec {
                    name: "paid".into(),
                    slo_latency_s: 0.5,
                },
                TenantSpec {
                    name: "free".into(),
                    slo_latency_s: 1.0,
                },
            ],
        );
        for i in 0..100u64 {
            let at = SimTime::from_millis(i * 10); // all inside window 0
            comp.record(at, 0.1 + i as f64 * 0.01, (i % 2) as u16, false);
        }
        comp.record(SimTime::from_millis(1500), 2.0, 0, true);
        let mut events = EventWindows::new(&cfg(1));
        events.seal(SimTime::from_secs(2));
        let series = TelemetrySeries::assemble(SimTime::from_secs(2), events, comp);
        let w0 = &series.windows[0];
        assert_eq!(w0.completed, 100);
        assert_eq!(w0.throughput_per_s(), 100.0);
        // Latencies 0.10..=1.09; p95 within sketch error of 1.04.
        assert!((w0.p95_latency_s / 1.04 - 1.0).abs() < 0.02, "{w0:?}");
        assert_eq!(w0.max_latency_s, 1.09);
        // Tenant 0 ("paid", SLO 0.5 s): hits are latencies ≤ 0.5 at even i.
        assert_eq!(w0.tenants[0].completed, 50);
        assert_eq!(w0.tenants[0].slo_hits, 21);
        let w1 = &series.windows[1];
        assert_eq!(w1.completed, 1);
        assert_eq!(w1.served_from_cache, 1);
        assert_eq!(w1.tenants[0].errors(), 1);
    }

    #[test]
    fn csv_is_deterministic_and_has_tenant_columns() {
        let build = || {
            let config = cfg(1);
            let mut events = EventWindows::new(&config);
            let mut comp = CompletionWindows::new(
                &config,
                vec![TenantSpec {
                    name: "paid".into(),
                    slo_latency_s: 0.5,
                }],
            );
            events.record(
                SimTime::from_millis(100),
                TraceEvent::PowerSample {
                    worker: 0,
                    watts: 3.5,
                },
            );
            comp.record(SimTime::from_millis(400), 0.25, 0, false);
            events.seal(SimTime::from_secs(1));
            TelemetrySeries::assemble(SimTime::from_secs(1), events, comp).to_csv()
        };
        let csv = build();
        assert_eq!(csv, build(), "CSV must be byte-identical across builds");
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("window,start_s,"));
        assert!(header.ends_with("paid_completed,paid_slo_hits,paid_attainment"));
        let row = lines.next().unwrap();
        assert_eq!(row.split(',').count(), header.split(',').count());
        assert!(row.ends_with(",1,1,1.000000"), "{row}");
    }

    #[test]
    fn prometheus_export_has_windowed_gauges() {
        let config = cfg(1);
        let mut events = EventWindows::new(&config);
        events.record(
            SimTime::from_millis(0),
            TraceEvent::PowerSample {
                worker: 0,
                watts: 2.0,
            },
        );
        events.seal(SimTime::from_secs(2));
        let comp = CompletionWindows::new(&config, Vec::new());
        let series = TelemetrySeries::assemble(SimTime::from_secs(2), events, comp);
        let text = series.render_prometheus();
        assert!(text.contains("telemetry_window_width_seconds 1"), "{text}");
        assert!(
            text.contains("telemetry_power_watts{window=\"0\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("telemetry_power_watts{window=\"1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("telemetry_slo_attainment{window=\"0\",tenant=\"all\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn counter_tracks_cover_the_series() {
        let config = cfg(1);
        let mut events = EventWindows::new(&config);
        events.record(
            SimTime::from_millis(0),
            TraceEvent::PowerSample {
                worker: 0,
                watts: 2.0,
            },
        );
        events.seal(SimTime::from_secs(3));
        let mut comp = CompletionWindows::new(
            &config,
            vec![TenantSpec {
                name: "paid".into(),
                slo_latency_s: 1.0,
            }],
        );
        comp.record(SimTime::from_millis(200), 0.1, 0, false);
        let series = TelemetrySeries::assemble(SimTime::from_secs(3), events, comp);
        let tracks = series.counter_tracks();
        let names: Vec<&str> = tracks.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"power_w"), "{names:?}");
        assert!(names.contains(&"slo_attainment_paid"), "{names:?}");
        assert!(!names.contains(&"cache_hit_rate"), "no cache configured");
        assert!(tracks.iter().all(|t| t.points.len() == 3));
    }

    /// Hand-builds a series where a flash crowd blows the SLO between
    /// windows `[spike_from, spike_to)`.
    fn slo_series(n: usize, spike_from: usize, spike_to: usize) -> TelemetrySeries {
        let config = cfg(1);
        let mut events = EventWindows::new(&config);
        let mut comp = CompletionWindows::new(
            &config,
            vec![TenantSpec {
                name: "paid".into(),
                slo_latency_s: 0.5,
            }],
        );
        for k in 0..n {
            let in_spike = (spike_from..spike_to).contains(&k);
            for j in 0..20u64 {
                let at = SimTime::from_micros(k as u64 * 1_000_000 + j * 1_000);
                let latency = if in_spike { 2.0 } else { 0.1 };
                comp.record(at, latency, 0, false);
            }
        }
        let end = SimTime::from_secs(n as u64);
        events.seal(end);
        TelemetrySeries::assemble(end, events, comp)
    }

    #[test]
    fn burn_rate_alert_fires_and_resolves_on_a_flash_crowd() {
        let series = slo_series(120, 40, 60);
        let alerts = evaluate_alerts(&series, &AlertPolicy::default());
        let fast: Vec<&Alert> = alerts
            .iter()
            .filter(|a| matches!(&a.signal, AlertSignal::BurnRate { rule, .. } if rule == "fast"))
            .collect();
        assert_eq!(fast.len(), 1, "{alerts:?}");
        let alert = fast[0];
        assert_eq!(alert.severity, AlertSeverity::Critical);
        // Errors start at window 40 at a 100% error rate (burn 20×).
        // The long (12-window) burn clears 10× once more than half its
        // span is inside the spike — at window 46, evaluated at its end.
        assert_eq!(alert.fired, SimTime::from_secs(47));
        let resolved = alert.resolved.expect("resolves after the spike");
        assert!(resolved > SimTime::from_secs(60), "{alert:?}");
        assert!((alert.peak - 20.0).abs() < 1e-9, "{alert:?}");
    }

    #[test]
    fn healthy_series_raises_no_burn_alerts() {
        let series = slo_series(120, 0, 0);
        let alerts = evaluate_alerts(&series, &AlertPolicy::default());
        assert!(
            !alerts
                .iter()
                .any(|a| matches!(a.signal, AlertSignal::BurnRate { .. })),
            "{alerts:?}"
        );
    }

    #[test]
    fn still_firing_alert_has_no_resolved_instant() {
        let series = slo_series(52, 45, 52);
        let alerts = evaluate_alerts(&series, &AlertPolicy::default());
        let fast = alerts
            .iter()
            .find(|a| matches!(&a.signal, AlertSignal::BurnRate { rule, .. } if rule == "fast"))
            .expect("spike at the end must fire");
        assert_eq!(fast.resolved, None);
    }

    #[test]
    fn power_anomaly_detector_flags_a_step() {
        let config = cfg(1);
        let mut events = EventWindows::new(&config);
        // 2 W steady, then a 40 W step at t = 30 s.
        events.record(
            SimTime::ZERO,
            TraceEvent::PowerSample {
                worker: 0,
                watts: 2.0,
            },
        );
        events.record(
            SimTime::from_secs(30),
            TraceEvent::PowerSample {
                worker: 0,
                watts: 40.0,
            },
        );
        let end = SimTime::from_secs(60);
        events.seal(end);
        let series =
            TelemetrySeries::assemble(end, events, CompletionWindows::new(&config, Vec::new()));
        let alerts = evaluate_alerts(&series, &AlertPolicy::default());
        let anomaly = alerts
            .iter()
            .find(|a| a.signal == AlertSignal::PowerAnomaly)
            .expect("step must flag");
        assert_eq!(anomaly.fired, SimTime::from_secs(31));
        assert!(
            anomaly.resolved.is_some(),
            "baseline re-adapts: {anomaly:?}"
        );
    }

    #[test]
    fn budget_breach_windows_raise_critical_alerts() {
        let config = cfg(1);
        let mut events = EventWindows::new(&config);
        events.record(
            SimTime::from_secs(2),
            TraceEvent::BudgetBreach { tenant: 0 },
        );
        events.record(
            SimTime::from_secs(2),
            TraceEvent::BudgetBreach { tenant: 0 },
        );
        let end = SimTime::from_secs(5);
        events.seal(end);
        let series =
            TelemetrySeries::assemble(end, events, CompletionWindows::new(&config, Vec::new()));
        let alerts = evaluate_alerts(&series, &AlertPolicy::default());
        let breach = alerts
            .iter()
            .find(|a| a.signal == AlertSignal::BudgetBreach)
            .expect("breach alert");
        assert_eq!(breach.severity, AlertSeverity::Critical);
        assert_eq!(breach.fired, SimTime::from_secs(3));
        assert_eq!(breach.resolved, Some(SimTime::from_secs(4)));
        assert_eq!(breach.peak, 2.0);
    }

    #[test]
    fn alerts_are_deterministic() {
        let series = slo_series(120, 40, 60);
        let a = evaluate_alerts(&series, &AlertPolicy::default());
        let b = evaluate_alerts(&series, &AlertPolicy::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "SLO target")]
    fn malformed_policy_is_rejected() {
        let series = slo_series(4, 0, 0);
        let policy = AlertPolicy {
            slo_target: 1.5,
            ..AlertPolicy::default()
        };
        evaluate_alerts(&series, &policy);
    }

    #[test]
    fn shed_and_budget_actions_reduce_queue_depth() {
        let mut tap = EventWindows::new(&cfg(1));
        for job in 0..4 {
            tap.record(
                SimTime::ZERO,
                TraceEvent::JobEnqueued {
                    job,
                    function: "MatMul",
                },
            );
        }
        tap.record(
            SimTime::from_millis(500),
            TraceEvent::JobShed {
                job: 0,
                function: "MatMul",
            },
        );
        tap.record(
            SimTime::from_millis(500),
            TraceEvent::BudgetAction {
                tenant: 0,
                action: "shed",
            },
        );
        // Non-shed budget actions must not change the queue.
        tap.record(
            SimTime::from_millis(500),
            TraceEvent::BudgetAction {
                tenant: 0,
                action: "throttle",
            },
        );
        tap.seal(SimTime::from_secs(1));
        let series = TelemetrySeries::assemble(
            SimTime::from_secs(1),
            tap,
            CompletionWindows::new(&cfg(1), Vec::new()),
        );
        let w = &series.windows[0];
        assert_eq!(w.shed, 2);
        // 4 jobs for 0.5 s, then 2 jobs for 0.5 s = 3.0 time-averaged.
        assert!((w.queue_depth - 3.0).abs() < 1e-9, "{w:?}");
    }
}
