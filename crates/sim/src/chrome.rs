//! Chrome trace-event JSON export of a derived [`SpanTree`], loadable
//! directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`, plus a dependency-free JSON parser used to
//! validate the emitted document.
//!
//! Layout: two process tracks per cluster. Process 0 holds the worker
//! lifecycle spans (one thread per worker), process 1 holds the job
//! spans (wait + service slices on the serving worker's thread). Spans
//! are `"ph":"X"` complete events with microsecond `ts`/`dur`; faults
//! and wake requests are `"ph":"i"` instant events; track names ride on
//! `"ph":"M"` metadata events.
//!
//! The export is canonical: events are ordered (metadata, lifecycle by
//! worker and start, jobs by id, wakes, faults) and timestamps are
//! integers, so the same [`SpanTree`] always renders the same bytes —
//! the property the parity suite pins across `--jobs` settings and
//! seed reruns.
//!
//! # Examples
//!
//! ```
//! use microfaas_sim::chrome::{export_chrome_trace, validate_chrome_trace};
//! use microfaas_sim::span::SpanTree;
//! use microfaas_sim::trace::{TraceBuffer, TraceEvent, TraceSink};
//! use microfaas_sim::{SimDuration, SimTime};
//!
//! let mut t = TraceBuffer::new(16);
//! t.record(SimTime::ZERO, TraceEvent::JobEnqueued { job: 1, function: "CascSHA" });
//! t.record(
//!     SimTime::from_micros(10),
//!     TraceEvent::JobStarted { job: 1, function: "CascSHA", worker: 0 },
//! );
//! t.record(
//!     SimTime::from_micros(40),
//!     TraceEvent::JobCompleted {
//!         job: 1,
//!         function: "CascSHA",
//!         worker: 0,
//!         exec: SimDuration::from_micros(25),
//!         overhead: SimDuration::from_micros(5),
//!     },
//! );
//! let json = export_chrome_trace(&SpanTree::from_buffer(&t), "micro");
//! let summary = validate_chrome_trace(&json).expect("schema-valid");
//! assert_eq!(summary.complete, 2); // wait + service slice
//! ```

use std::fmt::Write as _;

use crate::span::{Phase, SpanTree};
use crate::telemetry::CounterTrack;

/// Renders `tree` as a Chrome trace-event JSON document.
///
/// `label` names the cluster (`"micro"`, `"conventional"`) in the
/// process tracks so two clusters can be told apart side by side.
pub fn export_chrome_trace(tree: &SpanTree, label: &str) -> String {
    let mut out = String::with_capacity(256 + tree.jobs().len() * 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;

    // Process + thread name metadata.
    meta_process(&mut out, &mut first, 0, &format!("{label} workers"));
    meta_process(&mut out, &mut first, 1, &format!("{label} jobs"));
    for w in 0..tree.worker_count() {
        meta_thread(&mut out, &mut first, 0, w, &format!("worker {w}"));
        meta_thread(&mut out, &mut first, 1, w, &format!("jobs@worker {w}"));
    }

    // Worker lifecycle tracks.
    for span in tree.lifecycle() {
        event_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":\"{}\",\"cat\":\"lifecycle\",\
             \"ts\":{},\"dur\":{}}}",
            span.worker,
            span.state.label(),
            span.start.as_micros(),
            span.end.duration_since(span.start).as_micros()
        );
    }

    // Job spans: a wait slice (queue + boot) and a service slice
    // (exec + overhead + response), cross-linked by job id.
    for span in tree.jobs() {
        let wait = span.started.duration_since(span.enqueued).as_micros();
        if wait > 0 {
            event_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"wait {} #{}\",\"cat\":\"wait\",\
                 \"ts\":{},\"dur\":{},\"args\":{{\"job\":{},\"queue_us\":{},\"boot_us\":{}}}}}",
                span.worker,
                escape_json(span.function),
                span.job,
                span.enqueued.as_micros(),
                wait,
                span.job,
                span.phase(Phase::Queue).as_micros(),
                span.phase(Phase::Boot).as_micros()
            );
        }
        event_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{} #{}\",\"cat\":\"job\",\
             \"ts\":{},\"dur\":{},\"args\":{{\"job\":{},\"exec_us\":{},\"overhead_us\":{},\
             \"response_us\":{}}}}}",
            span.worker,
            escape_json(span.function),
            span.job,
            span.started.as_micros(),
            span.completed.duration_since(span.started).as_micros(),
            span.job,
            span.phase(Phase::Exec).as_micros(),
            span.phase(Phase::Overhead).as_micros(),
            span.phase(Phase::Response).as_micros()
        );
    }

    // Instant marks: wake requests, then faults, both in trace order.
    for wake in tree.wakes() {
        event_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"name\":\"wake:{}\",\"s\":\"t\",\"ts\":{}}}",
            wake.worker,
            escape_json(wake.reason),
            wake.at.as_micros()
        );
    }
    for fault in tree.faults() {
        event_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"name\":\"fault:{}\",\"s\":\"t\",\"ts\":{}}}",
            fault.worker,
            escape_json(fault.fault),
            fault.at.as_micros()
        );
    }

    out.push_str("\n]}\n");
    out
}

/// Renders telemetry counter tracks as a Chrome trace-event JSON
/// document of `"ph":"C"` counter events, which Perfetto draws as
/// step-line counter tracks alongside span slices.
///
/// Each [`CounterTrack`] becomes one named counter on process 2
/// (processes 0 and 1 are the worker and job tracks of
/// [`export_chrome_trace`], so a merged view keeps all three apart);
/// each `(instant, value)` point becomes one event. The export is
/// canonical — tracks in input order, points in time order, integer
/// timestamps — so the same series always renders the same bytes.
///
/// # Examples
///
/// ```
/// use microfaas_sim::chrome::{export_counter_trace, validate_chrome_trace};
/// use microfaas_sim::telemetry::CounterTrack;
/// use microfaas_sim::SimTime;
///
/// let track = CounterTrack {
///     name: "power_w".to_owned(),
///     points: vec![(SimTime::ZERO, 2.5), (SimTime::from_secs(1), 4.0)],
/// };
/// let json = export_counter_trace(&[track], "micro");
/// let summary = validate_chrome_trace(&json).expect("schema-valid");
/// assert_eq!(summary.counter, 2);
/// ```
pub fn export_counter_trace(tracks: &[CounterTrack], label: &str) -> String {
    let points: usize = tracks.iter().map(|t| t.points.len()).sum();
    let mut out = String::with_capacity(256 + points * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    meta_process(&mut out, &mut first, 2, &format!("{label} telemetry"));
    for track in tracks {
        let name = escape_json(&track.name);
        for &(at, value) in &track.points {
            event_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":\"{name}\",\"ts\":{},\
                 \"args\":{{\"value\":{}}}}}",
                at.as_micros(),
                json_number(value)
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Formats a counter value as a JSON number. `f64` `Display` is already
/// JSON-compatible for finite values; non-finite values (which JSON
/// cannot carry) clamp to 0.
fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_owned()
    }
}

fn event_sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
}

fn meta_process(out: &mut String, first: &mut bool, pid: usize, name: &str) {
    event_sep(out, first);
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape_json(name)
    );
}

fn meta_thread(out: &mut String, first: &mut bool, pid: usize, tid: usize, name: &str) {
    event_sep(out, first);
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape_json(name)
    );
}

fn escape_json(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. The workspace carries no serde, so the
/// round-trip validation of exported traces uses this minimal
/// recursive-descent parser instead.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (duplicate keys preserved).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (object, array, or scalar), rejecting
/// trailing garbage.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing data after document"));
    }
    Ok(value)
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{}'", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{literal}'")))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| err(*pos, "surrogate \\u escape unsupported"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // encoding is already valid).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                if (c as u32) < 0x20 {
                    return Err(err(*pos, "unescaped control character"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number token");
    token
        .parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| err(start, format!("bad number '{token}'")))
}

/// Event tallies from a validated Chrome trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChromeSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// `"ph":"X"` complete (span) events.
    pub complete: usize,
    /// `"ph":"i"` instant events.
    pub instant: usize,
    /// `"ph":"C"` counter events.
    pub counter: usize,
    /// `"ph":"M"` metadata events.
    pub metadata: usize,
}

/// Round-trips an exported document through [`parse_json`] and checks
/// the Chrome trace-event schema: a top-level `traceEvents` array whose
/// members carry `ph`/`pid`/`tid`, with `ts` plus `dur` on `X` spans,
/// `ts` plus `s` on `i` instants, `ts` plus a non-empty all-numeric
/// `args` object on `C` counters, and `name` on every event.
///
/// # Errors
///
/// Returns a description of the first schema violation (or parse
/// error) found.
pub fn validate_chrome_trace(input: &str) -> Result<ChromeSummary, String> {
    let doc = parse_json(input).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing 'traceEvents'")?
        .as_array()
        .ok_or("'traceEvents' is not an array")?;
    let mut summary = ChromeSummary {
        events: events.len(),
        ..ChromeSummary::default()
    };
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing 'ph'"))?;
        event
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing 'name'"))?;
        for field in ["pid", "tid"] {
            event
                .get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("event {i}: missing '{field}'"))?;
        }
        match ph {
            "X" => {
                for field in ["ts", "dur"] {
                    let v = event
                        .get(field)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("event {i}: X without '{field}'"))?;
                    if v < 0.0 {
                        return Err(format!("event {i}: negative '{field}'"));
                    }
                }
                summary.complete += 1;
            }
            "i" => {
                event
                    .get("ts")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("event {i}: i without 'ts'"))?;
                event
                    .get("s")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("event {i}: i without 's'"))?;
                summary.instant += 1;
            }
            "C" => {
                let ts = event
                    .get("ts")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("event {i}: C without 'ts'"))?;
                if ts < 0.0 {
                    return Err(format!("event {i}: negative 'ts'"));
                }
                let args = event
                    .get("args")
                    .ok_or_else(|| format!("event {i}: C without 'args'"))?;
                let series = match args {
                    JsonValue::Object(members) if !members.is_empty() => members,
                    _ => {
                        return Err(format!(
                            "event {i}: counter 'args' must be a non-empty object"
                        ))
                    }
                };
                for (key, value) in series {
                    value.as_f64().filter(|v| v.is_finite()).ok_or_else(|| {
                        format!("event {i}: counter series '{key}' is not a finite number")
                    })?;
                }
                summary.counter += 1;
            }
            "M" => summary.metadata += 1,
            other => return Err(format!("event {i}: unsupported ph '{other}'")),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};
    use crate::trace::{TraceBuffer, TraceEvent, TraceSink, WorkerState};

    fn sample_tree() -> SpanTree {
        let mut t = TraceBuffer::new(64);
        let us = SimTime::from_micros;
        t.record(
            us(0),
            TraceEvent::JobEnqueued {
                job: 1,
                function: "CascSHA",
            },
        );
        t.record(
            us(0),
            TraceEvent::WakeRequested {
                worker: 0,
                reason: "dispatch",
            },
        );
        t.record(
            us(5),
            TraceEvent::WorkerStateChange {
                worker: 0,
                state: WorkerState::Booting,
            },
        );
        t.record(
            us(50),
            TraceEvent::WorkerStateChange {
                worker: 0,
                state: WorkerState::Executing,
            },
        );
        t.record(
            us(50),
            TraceEvent::JobStarted {
                job: 1,
                function: "CascSHA",
                worker: 0,
            },
        );
        t.record(
            us(80),
            TraceEvent::ResponseSent {
                job: 1,
                function: "CascSHA",
                worker: 0,
            },
        );
        t.record(
            us(90),
            TraceEvent::FaultInjected {
                worker: 0,
                fault: "net_loss",
            },
        );
        t.record(
            us(95),
            TraceEvent::JobCompleted {
                job: 1,
                function: "CascSHA",
                worker: 0,
                exec: SimDuration::from_micros(25),
                overhead: SimDuration::from_micros(20),
            },
        );
        SpanTree::from_buffer(&t)
    }

    #[test]
    fn export_is_schema_valid_and_deterministic() {
        let tree = sample_tree();
        let a = export_chrome_trace(&tree, "micro");
        let b = export_chrome_trace(&tree, "micro");
        assert_eq!(a, b, "same tree must render identical bytes");
        let summary = validate_chrome_trace(&a).expect("valid document");
        // 2 process + 2 thread metadata, 2 lifecycle + 2 job slices,
        // 1 wake + 1 fault instant.
        assert_eq!(summary.metadata, 4);
        assert_eq!(summary.complete, 4);
        assert_eq!(summary.instant, 2);
        assert_eq!(summary.events, 10);
        assert!(a.contains("\"name\":\"wake:dispatch\""), "{a}");
        assert!(a.contains("\"name\":\"fault:net_loss\""), "{a}");
        assert!(a.contains("\"name\":\"CascSHA #1\""), "{a}");
    }

    #[test]
    fn parser_handles_scalars_escapes_and_nesting() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"c": "x\"\nA"}, "d": null, "e": true}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(1000.0)
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\"\nA")
        );
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "nulL",
            "{}trailing",
            "{\"a\": 1e}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn validator_flags_schema_violations() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        let missing_dur =
            "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"x\",\"ts\":1}]}";
        let e = validate_chrome_trace(missing_dur).unwrap_err();
        assert!(e.contains("without 'dur'"), "{e}");
    }

    #[test]
    fn counter_export_round_trips() {
        let tracks = [
            CounterTrack {
                name: "power_w".to_owned(),
                points: vec![
                    (SimTime::ZERO, 2.5),
                    (SimTime::from_secs(1), 4.0),
                    (SimTime::from_secs(2), 0.0),
                ],
            },
            CounterTrack {
                name: "queue_depth".to_owned(),
                points: vec![(SimTime::ZERO, 17.0)],
            },
        ];
        let a = export_counter_trace(&tracks, "micro");
        let b = export_counter_trace(&tracks, "micro");
        assert_eq!(a, b, "same tracks must render identical bytes");
        let summary = validate_chrome_trace(&a).expect("valid document");
        assert_eq!(summary.counter, 4);
        assert_eq!(summary.metadata, 1);
        assert_eq!(summary.events, 5);
        assert!(a.contains("\"name\":\"power_w\""), "{a}");
        assert!(a.contains("\"args\":{\"value\":2.5}"), "{a}");
        // Non-finite values must clamp to a valid JSON number.
        let weird = [CounterTrack {
            name: "nan".to_owned(),
            points: vec![(SimTime::ZERO, f64::NAN)],
        }];
        let json = export_counter_trace(&weird, "micro");
        validate_chrome_trace(&json).expect("clamped NaN stays valid");
        assert!(json.contains("\"args\":{\"value\":0}"), "{json}");
    }

    #[test]
    fn validator_rejects_malformed_counters() {
        let wrap = |event: &str| format!("{{\"traceEvents\":[{event}]}}");
        let no_ts =
            wrap("{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":\"x\",\"args\":{\"value\":1}}");
        let e = validate_chrome_trace(&no_ts).unwrap_err();
        assert!(e.contains("C without 'ts'"), "{e}");
        let negative_ts = wrap(
            "{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":\"x\",\"ts\":-1,\"args\":{\"value\":1}}",
        );
        let e = validate_chrome_trace(&negative_ts).unwrap_err();
        assert!(e.contains("negative 'ts'"), "{e}");
        let no_args = wrap("{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":\"x\",\"ts\":1}");
        let e = validate_chrome_trace(&no_args).unwrap_err();
        assert!(e.contains("C without 'args'"), "{e}");
        let empty_args =
            wrap("{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":\"x\",\"ts\":1,\"args\":{}}");
        let e = validate_chrome_trace(&empty_args).unwrap_err();
        assert!(e.contains("non-empty object"), "{e}");
        let string_value = wrap(
            "{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":\"x\",\"ts\":1,\"args\":{\"v\":\"hi\"}}",
        );
        let e = validate_chrome_trace(&string_value).unwrap_err();
        assert!(e.contains("series 'v' is not a finite number"), "{e}");
    }

    #[test]
    fn names_are_escaped() {
        let tree = sample_tree();
        let json = export_chrome_trace(&tree, "quote\"back\\slash");
        validate_chrome_trace(&json).expect("escaped label stays valid");
    }
}
