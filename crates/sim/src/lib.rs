//! # microfaas-sim
//!
//! Deterministic discrete-event simulation kernel used by every model in
//! the MicroFaaS reproduction.
//!
//! The crate provides four small building blocks:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time;
//! * [`EventQueue`] — a deterministic event queue (hierarchical timing
//!   wheel with a far-future overflow heap) with O(1) amortized
//!   schedule/pop/cancel, FIFO tie-breaking, and cancellation — see
//!   `docs/SCALING.md`;
//! * [`Rng`] / [`SplitMix64`] — reproducible pseudo-random generators
//!   implemented in-crate so the stream can never change underneath us;
//! * [`OnlineStats`], [`Samples`], [`QuantileSketch`], [`TimeWeighted`] —
//!   measurement helpers, including the time-weighted integrator that
//!   turns power (watts) into energy (joules) and the relative-error
//!   quantile sketch behind the streaming results path.
//!
//! Two observability modules ride on top of the kernel (see
//! `docs/OBSERVABILITY.md` at the repository root):
//!
//! * [`trace`] — typed [`TraceEvent`]s recorded through an [`Observer`]
//!   into a ring-buffer [`TraceBuffer`], exported as JSON lines;
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges, and
//!   fixed-bucket histograms with Prometheus text exposition;
//! * [`telemetry`] — time-resolved tumbling windows over the trace and
//!   completion streams ([`TelemetrySeries`]) with SLO burn-rate and
//!   EWMA anomaly alerting (see `docs/MONITORING.md`).
//!
//! Two causal-analysis modules derive structure from the trace (see
//! `docs/TRACING.md`):
//!
//! * [`span`] — a deterministic [`SpanTree`] deriver reconstructing
//!   per-job causal spans (queue → boot → exec → overhead → response)
//!   and worker lifecycle spans, plus a [`CriticalPath`] analyzer that
//!   attributes end-to-end latency to phases;
//! * [`chrome`] — a Chrome trace-event JSON exporter (loads in
//!   Perfetto / `chrome://tracing`) with a dependency-free JSON parser
//!   for round-trip validation.
//!
//! And one fault-injection module (see `docs/FAILURE_MODEL.md`):
//!
//! * [`faults`] — seeded [`FaultPlan`]s (node crashes, boot failures,
//!   hangs, transfer losses) drawn through a [`FaultInjector`] whose
//!   private RNG stream keeps fault-free runs bit-identical.
//!
//! The [`json`] module is the shared dependency-free recursive-descent
//! JSON parser behind every spec file (fault plans, workload
//! scenarios).
//!
//! Finally, [`exec`] is the parallel deterministic experiment engine
//! (see `docs/PERFORMANCE.md`): it fans independent runs — sweep
//! points, seed replicates, fault scenarios — across threads with a
//! [`Jobs`] knob while gathering results in canonical submission order,
//! so parallel output is bit-identical to the serial path.
//!
//! # Examples
//!
//! A tiny simulation — a Poisson arrival process counted over one minute:
//!
//! ```
//! use microfaas_sim::{EventQueue, Rng, SimDuration, SimTime};
//!
//! let mut queue = EventQueue::new();
//! let mut rng = Rng::new(42);
//! let horizon = SimTime::from_secs(60);
//!
//! queue.schedule(SimTime::ZERO, "arrival");
//! let mut count = 0;
//! while let Some((now, _event)) = queue.pop() {
//!     if now >= horizon {
//!         break;
//!     }
//!     count += 1;
//!     let gap = SimDuration::from_secs_f64(rng.exponential(1.0));
//!     queue.schedule(now + gap, "arrival");
//! }
//! assert!(count > 30 && count < 100, "~60 arrivals expected, got {count}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod exec;
pub mod faults;
pub mod json;
pub mod metrics;
pub mod queue;
mod rng;
pub mod span;
mod stats;
pub mod telemetry;
mod time;
pub mod trace;

pub use chrome::{
    export_chrome_trace, export_counter_trace, validate_chrome_trace, ChromeSummary, JsonValue,
};
pub use exec::{par_map, par_map_indexed, Jobs};
pub use faults::{FaultInjector, FaultKind, FaultPlan, FaultPlanError, FaultSpec, FaultTrigger};
pub use metrics::{CounterId, GaugeId, HistogramId, MetricsRegistry};
pub use queue::{EventId, EventQueue};
pub use rng::{Rng, SplitMix64};
pub use span::{CriticalPath, JobSpan, LifecycleSpan, Phase, PhaseStats, SpanTree};
pub use stats::{OnlineStats, QuantileSketch, Samples, TimeWeighted};
pub use telemetry::{
    evaluate_alerts, Alert, AlertPolicy, AlertSeverity, AlertSignal, BurnRateRule,
    CompletionWindows, CounterTrack, EventWindows, TelemetryConfig, TelemetrySeries,
    TelemetryWindow, TenantSpec, TenantWindow,
};
pub use time::{SimDuration, SimTime};
pub use trace::{Endpoint, Observer, TraceBuffer, TraceEvent, TraceRecord, TraceSink, WorkerState};
