//! Named counters, gauges, and fixed-bucket histograms with
//! Prometheus-style text exposition.
//!
//! The cluster simulators publish into a [`MetricsRegistry`] through
//! cheap integer handles ([`CounterId`], [`GaugeId`], [`HistogramId`])
//! obtained once per run, so the hot event loop never re-hashes metric
//! names. Rendering happens after the run:
//! [`MetricsRegistry::render_prometheus`] produces the classic
//! `/metrics` text format, and [`MetricsRegistry::flatten`] yields
//! `(sample name, value)` pairs for CSV export.
//!
//! Metric names follow Prometheus conventions: a base name matching
//! `[a-zA-Z_:][a-zA-Z0-9_:]*`, optionally followed by a `{...}` label
//! block that is carried through to the exposition verbatim (e.g.
//! `micro_channel_joules{channel="sbc-0"}`).

use std::fmt::Write as _;

/// Handle to a counter registered in a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a gauge registered in a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a histogram registered in a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A fixed-bucket histogram: one count per upper bound (`value <=
/// bound`, Prometheus `le` semantics) plus an overflow bucket.
#[derive(Debug, Clone, PartialEq)]
struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` entries; the last is the overflow (`+Inf`).
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram bounds must be strictly increasing, got {} then {}",
                pair[0],
                pair[1]
            );
        }
        for &bound in bounds {
            assert!(bound.is_finite(), "histogram bound {bound} is not finite");
        }
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        assert!(value.is_finite(), "observed value {value} is not finite");
        let slot = self
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
        self.count += 1;
    }
}

/// A registry of named metrics, published into by the simulators and
/// rendered to Prometheus text or CSV rows afterwards.
///
/// # Examples
///
/// ```
/// use microfaas_sim::metrics::MetricsRegistry;
///
/// let mut metrics = MetricsRegistry::new();
/// let jobs = metrics.counter("jobs_completed");
/// let latency = metrics.histogram("latency_seconds", &[0.1, 1.0]);
/// metrics.inc(jobs);
/// metrics.observe(latency, 0.25);
///
/// let text = metrics.render_prometheus();
/// assert!(text.contains("jobs_completed 1"));
/// assert!(text.contains("latency_seconds_bucket{le=\"1\"} 1"));
/// assert!(text.contains("latency_seconds_count 1"));
/// ```
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

/// Splits `name` into `(base, labels)` and panics unless the base is a
/// valid Prometheus metric name and the optional label block is
/// `{...}`-delimited.
fn split_name(name: &str) -> (&str, &str) {
    let (base, labels) = match name.find('{') {
        None => (name, ""),
        Some(brace) => {
            let labels = &name[brace..];
            assert!(
                labels.ends_with('}') && labels.len() > 2,
                "label block in metric name '{name}' must be non-empty and end with '}}'"
            );
            (&name[..brace], labels)
        }
    };
    let mut chars = base.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    assert!(
        head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name '{name}': base must match [a-zA-Z_:][a-zA-Z0-9_:]*"
    );
    (base, labels)
}

/// Inserts `extra` into an existing label block (or creates one).
fn with_label(base: &str, labels: &str, suffix: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{base}{suffix}{{{extra}}}")
    } else {
        let inner = &labels[1..labels.len() - 1];
        format!("{base}{suffix}{{{inner},{extra}}}")
    }
}

/// Deterministic `# HELP` text for a metric family: the snake_case
/// name spelled out, prefixed by what the family kind measures.
fn help_text(base: &str, kind: &str) -> String {
    let spaced = base.replace('_', " ");
    match kind {
        "counter" => format!("Monotonic count of {spaced}."),
        "gauge" => format!("Current value of {spaced}."),
        _ => format!("Fixed-bucket distribution of {spaced}."),
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) the counter `name` and returns its handle.
    pub fn counter(&mut self, name: &str) -> CounterId {
        split_name(name);
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increments a counter by `delta`.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Registers (or finds) the gauge `name` and returns its handle.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        split_name(name);
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        assert!(value.is_finite(), "gauge value {value} is not finite");
        self.gauges[id.0].1 = value;
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// Registers (or finds) the histogram `name` with the given upper
    /// bucket bounds (strictly increasing, finite; an overflow bucket
    /// is always appended). Re-registering an existing name requires
    /// identical bounds.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        split_name(name);
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            assert_eq!(
                self.histograms[i].1.bounds, bounds,
                "histogram '{name}' re-registered with different bounds"
            );
            return HistogramId(i);
        }
        self.histograms
            .push((name.to_string(), Histogram::new(bounds)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].1.observe(value);
    }

    /// Total number of observations recorded in a histogram.
    pub fn histogram_count(&self, id: HistogramId) -> u64 {
        self.histograms[id.0].1.count
    }

    /// Sum of all observations recorded in a histogram.
    pub fn histogram_sum(&self, id: HistogramId) -> f64 {
        self.histograms[id.0].1.sum
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the
    /// overflow bucket.
    pub fn bucket_counts(&self, id: HistogramId) -> &[u64] {
        &self.histograms[id.0].1.counts
    }

    /// The upper bounds the histogram was registered with.
    pub fn bucket_bounds(&self, id: HistogramId) -> &[f64] {
        &self.histograms[id.0].1.bounds
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) of a histogram from its
    /// fixed buckets, Prometheus `histogram_quantile` style: the target
    /// rank is located in the cumulative distribution and linearly
    /// interpolated inside its bucket. Observations in the overflow
    /// bucket report the largest finite bound. Returns `None` if the
    /// histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn histogram_quantile(&self, id: HistogramId, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let h = &self.histograms[id.0].1;
        if h.count == 0 {
            return None;
        }
        let target = q * h.count as f64;
        let mut cumulative = 0u64;
        for (i, &bucket) in h.counts.iter().enumerate() {
            let before = cumulative as f64;
            cumulative += bucket;
            if (cumulative as f64) >= target && bucket > 0 {
                if i >= h.bounds.len() {
                    // Overflow bucket: no upper bound to interpolate to.
                    return Some(*h.bounds.last()?);
                }
                let lower = if i == 0 { 0.0 } else { h.bounds[i - 1] };
                let upper = h.bounds[i];
                let fraction = ((target - before) / bucket as f64).clamp(0.0, 1.0);
                return Some(lower + (upper - lower) * fraction);
            }
        }
        h.bounds.last().copied()
    }

    /// Folds every metric from `other` into this registry.
    ///
    /// Counters and histogram buckets are summed; gauges take `other`'s
    /// value (last-write-wins, matching sequential `set_gauge` order).
    /// Metrics not yet present are registered in `other`'s order, so
    /// merging per-run registries in canonical submission order
    /// reproduces the exposition a single sequential registry would
    /// have produced — this is what lets the parallel experiment
    /// engine meter runs into private registries and still render
    /// byte-identical `/metrics` text (see `docs/PERFORMANCE.md`).
    ///
    /// # Panics
    ///
    /// Panics if a histogram exists in both registries with different
    /// bucket bounds.
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas_sim::metrics::MetricsRegistry;
    ///
    /// let mut a = MetricsRegistry::new();
    /// let jobs = a.counter("jobs");
    /// a.add(jobs, 2);
    ///
    /// let mut b = MetricsRegistry::new();
    /// let jobs_b = b.counter("jobs");
    /// b.add(jobs_b, 3);
    ///
    /// a.merge(&b);
    /// assert_eq!(a.counter_value(jobs), 5);
    /// ```
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            let id = self.counter(name);
            self.add(id, *value);
        }
        for (name, value) in &other.gauges {
            let id = self.gauge(name);
            self.set_gauge(id, *value);
        }
        for (name, histogram) in &other.histograms {
            let id = self.histogram(name, &histogram.bounds);
            let ours = &mut self.histograms[id.0].1;
            for (slot, count) in ours.counts.iter_mut().zip(&histogram.counts) {
                *slot += count;
            }
            ours.sum += histogram.sum;
            ours.count += histogram.count;
        }
    }

    /// True if nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (`# HELP` + `# TYPE` comments per family, cumulative
    /// `_bucket{le=...}` samples, `_sum`/`_count` for histograms), in
    /// registration order. Help text is derived deterministically from
    /// the family name, so the exposition stays a pure function of the
    /// registry contents.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: Vec<String> = Vec::new();
        let mut type_line = |out: &mut String, base: &str, kind: &str| {
            if !typed.iter().any(|seen| seen == base) {
                typed.push(base.to_string());
                let _ = writeln!(out, "# HELP {base} {}", help_text(base, kind));
                let _ = writeln!(out, "# TYPE {base} {kind}");
            }
        };
        for (name, value) in &self.counters {
            let (base, _) = split_name(name);
            type_line(&mut out, base, "counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let (base, _) = split_name(name);
            type_line(&mut out, base, "gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, histogram) in &self.histograms {
            let (base, labels) = split_name(name);
            type_line(&mut out, base, "histogram");
            let mut cumulative = 0;
            for (i, &bucket) in histogram.counts.iter().enumerate() {
                cumulative += bucket;
                let le = if i < histogram.bounds.len() {
                    histogram.bounds[i].to_string()
                } else {
                    "+Inf".to_string()
                };
                let sample = with_label(base, labels, "_bucket", &format!("le=\"{le}\""));
                let _ = writeln!(out, "{sample} {cumulative}");
            }
            let _ = writeln!(out, "{base}_sum{labels} {}", histogram.sum);
            let _ = writeln!(out, "{base}_count{labels} {}", histogram.count);
        }
        out
    }

    /// Flattens every metric into `(sample name, value)` rows suitable
    /// for CSV export. Histograms expand into their cumulative buckets
    /// plus `_sum` and `_count`, mirroring [`Self::render_prometheus`].
    pub fn flatten(&self) -> Vec<(String, f64)> {
        let mut rows = Vec::new();
        for (name, value) in &self.counters {
            rows.push((name.clone(), *value as f64));
        }
        for (name, value) in &self.gauges {
            rows.push((name.clone(), *value));
        }
        for (name, histogram) in &self.histograms {
            let (base, labels) = split_name(name);
            let mut cumulative = 0;
            for (i, &bucket) in histogram.counts.iter().enumerate() {
                cumulative += bucket;
                let le = if i < histogram.bounds.len() {
                    histogram.bounds[i].to_string()
                } else {
                    "+Inf".to_string()
                };
                rows.push((
                    with_label(base, labels, "_bucket", &format!("le=\"{le}\"")),
                    cumulative as f64,
                ));
            }
            rows.push((format!("{base}_sum{labels}"), histogram.sum));
            rows.push((format!("{base}_count{labels}"), histogram.count as f64));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_get_or_create_and_accumulate() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("jobs_total");
        let b = m.counter("jobs_total");
        assert_eq!(a, b);
        m.inc(a);
        m.add(b, 4);
        assert_eq!(m.counter_value(a), 5);
    }

    #[test]
    fn gauges_hold_the_last_value() {
        let mut m = MetricsRegistry::new();
        let g = m.gauge("power_watts");
        m.set_gauge(g, 1.5);
        m.set_gauge(g, 0.128);
        assert_eq!(m.gauge_value(g), 0.128);
    }

    #[test]
    fn histogram_boundary_values_land_in_the_le_bucket() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("latency", &[1.0, 2.0]);
        // Exactly on a bound -> that bucket (le semantics); above the
        // last bound -> overflow.
        m.observe(h, 1.0);
        m.observe(h, 1.5);
        m.observe(h, 2.0);
        m.observe(h, 2.000001);
        assert_eq!(m.bucket_counts(h), &[1, 2, 1]);
        assert_eq!(m.histogram_count(h), 4);
        assert!((m.histogram_sum(h) - 6.500001).abs() < 1e-9);
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat_seconds", &[0.5, 1.0]);
        m.observe(h, 0.2);
        m.observe(h, 0.7);
        m.observe(h, 9.0);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count 3"));
    }

    #[test]
    fn labelled_names_share_one_type_line() {
        let mut m = MetricsRegistry::new();
        let a = m.gauge("joules{channel=\"sbc-0\"}");
        let b = m.gauge("joules{channel=\"sbc-1\"}");
        m.set_gauge(a, 1.0);
        m.set_gauge(b, 2.0);
        let text = m.render_prometheus();
        assert_eq!(text.matches("# TYPE joules gauge").count(), 1);
        assert_eq!(text.matches("# HELP joules ").count(), 1);
        assert!(text.contains("joules{channel=\"sbc-0\"} 1"));
        assert!(text.contains("joules{channel=\"sbc-1\"} 2"));
    }

    #[test]
    fn help_lines_precede_type_lines_per_family() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("jobs_completed_total");
        m.inc(c);
        let g = m.gauge("power_watts");
        m.set_gauge(g, 2.0);
        let h = m.histogram("exec_seconds", &[1.0]);
        m.observe(h, 0.5);
        let text = m.render_prometheus();
        assert!(
            text.contains(
                "# HELP jobs_completed_total Monotonic count of jobs completed total.\n\
                 # TYPE jobs_completed_total counter\n"
            ),
            "{text}"
        );
        assert!(
            text.contains("# HELP power_watts Current value of power watts.\n"),
            "{text}"
        );
        assert!(
            text.contains("# HELP exec_seconds Fixed-bucket distribution of exec seconds.\n"),
            "{text}"
        );
    }

    #[test]
    fn histogram_quantile_interpolates_within_buckets() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.5, 3.0] {
            m.observe(h, v);
        }
        // Cumulative: 1, 3, 4. Median target rank 2 lands mid-bucket
        // (1, 2]: lower + (2-1)/2 * width = 1.5.
        assert_eq!(m.histogram_quantile(h, 0.5), Some(1.5));
        assert_eq!(m.histogram_quantile(h, 0.0), Some(0.0));
        assert_eq!(m.histogram_quantile(h, 1.0), Some(4.0));
        // Overflow observations clamp to the largest finite bound.
        m.observe(h, 100.0);
        assert_eq!(m.histogram_quantile(h, 1.0), Some(4.0));
        // Empty histogram has no quantiles.
        let empty = m.histogram("none", &[1.0]);
        assert_eq!(m.histogram_quantile(empty, 0.5), None);
    }

    #[test]
    fn labelled_histogram_buckets_merge_labels() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("exec{cluster=\"micro\"}", &[1.0]);
        m.observe(h, 0.5);
        let text = m.render_prometheus();
        assert!(text.contains("exec_bucket{cluster=\"micro\",le=\"1\"} 1"));
        assert!(text.contains("exec_sum{cluster=\"micro\"} 0.5"));
    }

    #[test]
    fn flatten_mirrors_the_exposition() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("n");
        m.add(c, 7);
        let h = m.histogram("d", &[1.0]);
        m.observe(h, 3.0);
        let rows = m.flatten();
        assert!(rows.contains(&("n".to_string(), 7.0)));
        assert!(rows.contains(&("d_bucket{le=\"+Inf\"}".to_string(), 1.0)));
        assert!(rows.contains(&("d_sum".to_string(), 3.0)));
        assert!(rows.contains(&("d_count".to_string(), 1.0)));
    }

    #[test]
    fn merge_reproduces_sequential_registration() {
        // Publishing into one shared registry...
        let mut sequential = MetricsRegistry::new();
        let c = sequential.counter("micro_jobs");
        sequential.add(c, 4);
        let g = sequential.gauge("micro_watts");
        sequential.set_gauge(g, 2.5);
        let h = sequential.histogram("micro_exec", &[1.0, 5.0]);
        sequential.observe(h, 0.5);
        sequential.observe(h, 3.0);
        let c2 = sequential.counter("conv_jobs");
        sequential.add(c2, 9);

        // ...must render the same bytes as merging two private
        // registries in the same canonical order.
        let mut micro = MetricsRegistry::new();
        let c = micro.counter("micro_jobs");
        micro.add(c, 4);
        let g = micro.gauge("micro_watts");
        micro.set_gauge(g, 2.5);
        let h = micro.histogram("micro_exec", &[1.0, 5.0]);
        micro.observe(h, 0.5);
        micro.observe(h, 3.0);
        let mut conv = MetricsRegistry::new();
        let c2 = conv.counter("conv_jobs");
        conv.add(c2, 9);

        let mut merged = MetricsRegistry::new();
        merged.merge(&micro);
        merged.merge(&conv);
        assert_eq!(merged, sequential);
        assert_eq!(merged.render_prometheus(), sequential.render_prometheus());
    }

    #[test]
    fn merge_sums_overlapping_metrics() {
        let mut a = MetricsRegistry::new();
        let h = a.histogram("lat", &[1.0]);
        a.observe(h, 0.5);
        let mut b = MetricsRegistry::new();
        let hb = b.histogram("lat", &[1.0]);
        b.observe(hb, 2.0);
        a.merge(&b);
        assert_eq!(a.bucket_counts(h), &[1, 1]);
        assert_eq!(a.histogram_count(h), 2);
        assert!((a.histogram_sum(h) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merge_rejects_mismatched_histograms() {
        let mut a = MetricsRegistry::new();
        a.histogram("lat", &[1.0]);
        let mut b = MetricsRegistry::new();
        b.histogram("lat", &[2.0]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        MetricsRegistry::new().histogram("h", &[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        MetricsRegistry::new().counter("9starts_with_digit");
    }
}
