//! Structured event tracing for the cluster simulators.
//!
//! The simulators emit typed [`TraceEvent`]s through an [`Observer`]
//! into any [`TraceSink`]. The sink shipped here, [`TraceBuffer`], is a
//! bounded ring buffer: a capacity-`n` buffer keeps the *last* `n`
//! events of a run and counts what it dropped, so a trillion-event run
//! cannot exhaust memory while the interesting tail stays inspectable.
//!
//! Tracing is pay-for-what-you-use: with [`Observer::disabled`] every
//! emission site reduces to a `None` check and the simulated results
//! are bit-identical to an untraced run (events never touch the
//! simulation RNG).
//!
//! Traces export as JSON lines ([`TraceBuffer::to_json_lines`]): one
//! self-describing object per line, grep- and `jq`-friendly, documented
//! in `docs/OBSERVABILITY.md`.

use std::collections::VecDeque;
use std::fmt;

use crate::metrics::MetricsRegistry;
use crate::time::{SimDuration, SimTime};

/// Lifecycle states a traced worker (SBC or VM) can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Power-gated off, drawing nothing.
    Off,
    /// Cold boot in progress after power-on.
    Booting,
    /// Powered and waiting for work (or parked at standby draw).
    Idle,
    /// Running a function invocation.
    Executing,
    /// Rebooting between jobs for a pristine runtime.
    Rebooting,
    /// Down after an injected fault; drawing nothing until recovered.
    Crashed,
}

impl WorkerState {
    /// Lower-case wire label used in the JSON-lines export.
    pub fn label(self) -> &'static str {
        match self {
            WorkerState::Off => "off",
            WorkerState::Booting => "booting",
            WorkerState::Idle => "idle",
            WorkerState::Executing => "executing",
            WorkerState::Rebooting => "rebooting",
            WorkerState::Crashed => "crashed",
        }
    }
}

impl fmt::Display for WorkerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One end of a traced network transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// A worker node (SBC or VM), by cluster index.
    Worker(usize),
    /// The orchestration node that queues and dispatches jobs.
    Orchestrator,
    /// A backing service node (`"kv"`, `"sql"`, `"cos"`, `"mq"`, ...).
    Service(&'static str),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Worker(w) => write!(f, "worker:{w}"),
            Endpoint::Orchestrator => f.write_str("orchestrator"),
            Endpoint::Service(name) => f.write_str(name),
        }
    }
}

/// A typed simulation event. Function names are `&'static str` labels
/// (from the workload suite) so emission never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A worker moved to a new lifecycle state.
    WorkerStateChange {
        /// Cluster index of the worker.
        worker: usize,
        /// The state it entered.
        state: WorkerState,
    },
    /// A job entered the dispatcher's queue.
    JobEnqueued {
        /// Job id, unique within the run.
        job: u64,
        /// Function name label.
        function: &'static str,
    },
    /// A worker began executing a job.
    JobStarted {
        /// Job id.
        job: u64,
        /// Function name label.
        function: &'static str,
        /// Executing worker.
        worker: usize,
    },
    /// A job finished and its record was committed.
    JobCompleted {
        /// Job id.
        job: u64,
        /// Function name label.
        function: &'static str,
        /// Executing worker.
        worker: usize,
        /// Pure execution time.
        exec: SimDuration,
        /// Platform overhead (orchestration + network) on top of exec.
        overhead: SimDuration,
    },
    /// A job exceeded the invocation timeout and was abandoned.
    JobTimedOut {
        /// Job id.
        job: u64,
        /// Function name label.
        function: &'static str,
        /// Worker the job was running on.
        worker: usize,
    },
    /// A power channel changed its draw.
    PowerSample {
        /// Cluster index of the worker (or 0 for a shared host).
        worker: usize,
        /// New draw in watts.
        watts: f64,
    },
    /// Bytes moved across the cluster network.
    NetTransfer {
        /// Sending node.
        src: Endpoint,
        /// Receiving node.
        dst: Endpoint,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A fault from the active [`crate::faults::FaultPlan`] fired.
    FaultInjected {
        /// Worker the fault struck.
        worker: usize,
        /// Fault kind label (`"crash"`, `"boot_failure"`, ...).
        fault: &'static str,
    },
    /// An in-flight job was pulled back off a failed worker.
    JobRequeued {
        /// Job id.
        job: u64,
        /// Function name label.
        function: &'static str,
        /// Worker the job was running on when it failed.
        worker: usize,
    },
    /// The orchestrator scheduled a bounded retry with backoff.
    JobRetryScheduled {
        /// Job id.
        job: u64,
        /// Function name label.
        function: &'static str,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
        /// Backoff delay before the job re-enters the queue.
        delay: SimDuration,
    },
    /// A queued job was shed to protect degraded capacity.
    JobShed {
        /// Job id.
        job: u64,
        /// Function name label.
        function: &'static str,
    },
    /// A job exhausted its retry budget and was abandoned.
    JobFailed {
        /// Job id.
        job: u64,
        /// Function name label.
        function: &'static str,
        /// Retry attempts consumed before giving up.
        attempts: u32,
    },
    /// The placement policy chose a worker queue for a job. Emitted only
    /// when a non-default scheduling policy is active, so default runs
    /// keep their historical traces byte-for-byte.
    PlacementDecision {
        /// Job id.
        job: u64,
        /// Worker the job was placed on.
        worker: usize,
        /// Placement policy label (`"least-loaded"`, ...).
        policy: &'static str,
    },
    /// A power governor moved a worker between power regimes. Emitted
    /// only when a non-default scheduling policy is active.
    GovernorTransition {
        /// Worker the governor acted on.
        worker: usize,
        /// What the governor did (`"standby"`, `"gate-off"`,
        /// `"prewarm"`).
        action: &'static str,
    },
    /// The orchestrator requested power-on for a gated worker — the
    /// causal anchor that starts a wake/boot span before the worker's
    /// `Booting` state change lands.
    WakeRequested {
        /// Worker being powered on.
        worker: usize,
        /// Why the wake was requested (`"dispatch"`, `"requeue"`,
        /// `"prewarm"`).
        reason: &'static str,
    },
    /// A finished job's response left the worker for the orchestrator —
    /// the causal anchor separating platform overhead from network
    /// response time inside a job's span.
    ResponseSent {
        /// Job id.
        job: u64,
        /// Function name label.
        function: &'static str,
        /// Worker sending the response.
        worker: usize,
    },
    /// An invocation was served from the content-addressed result cache
    /// — no queueing, no boot, no execution. Emitted only when a cache
    /// is configured, so default runs keep their historical traces
    /// byte-for-byte.
    CacheHit {
        /// Job id.
        job: u64,
        /// Function name label.
        function: &'static str,
        /// The content address that hit.
        key: u64,
    },
    /// A cache-enabled invocation found no stored result and proceeded
    /// to normal dispatch. Emitted only when a cache is configured.
    CacheMiss {
        /// Job id.
        job: u64,
        /// Function name label.
        function: &'static str,
        /// The content address that missed.
        key: u64,
    },
    /// An invocation collapsed onto an identical in-flight invocation:
    /// it completes when its leader does, paying queue time only.
    /// Emitted only when a cache is configured.
    Coalesced {
        /// Follower job id.
        job: u64,
        /// Job id of the leader execution it waits on.
        leader: u64,
        /// Function name label.
        function: &'static str,
    },
    /// A tenant's attributed joules crossed its energy-budget cap.
    /// Emitted only when the `EnergyBudget` governor is active, so
    /// default runs keep their historical traces byte-for-byte.
    BudgetBreach {
        /// Tenant index (matches the run's tenant table order).
        tenant: u16,
    },
    /// The energy-budget governor acted on an arrival from a breached
    /// tenant. Emitted only when the `EnergyBudget` governor is active.
    BudgetAction {
        /// Tenant index (matches the run's tenant table order).
        tenant: u16,
        /// What the governor did (`"shed"`, `"defer"`, `"throttle"`).
        action: &'static str,
    },
}

impl TraceEvent {
    /// Snake-case wire name of the event type, as used in the
    /// JSON-lines `"type"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::WorkerStateChange { .. } => "worker_state_change",
            TraceEvent::JobEnqueued { .. } => "job_enqueued",
            TraceEvent::JobStarted { .. } => "job_started",
            TraceEvent::JobCompleted { .. } => "job_completed",
            TraceEvent::JobTimedOut { .. } => "job_timed_out",
            TraceEvent::PowerSample { .. } => "power_sample",
            TraceEvent::NetTransfer { .. } => "net_transfer",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::JobRequeued { .. } => "job_requeued",
            TraceEvent::JobRetryScheduled { .. } => "job_retry_scheduled",
            TraceEvent::JobShed { .. } => "job_shed",
            TraceEvent::JobFailed { .. } => "job_failed",
            TraceEvent::PlacementDecision { .. } => "placement_decision",
            TraceEvent::GovernorTransition { .. } => "governor_transition",
            TraceEvent::WakeRequested { .. } => "wake_requested",
            TraceEvent::ResponseSent { .. } => "response_sent",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::Coalesced { .. } => "coalesced",
            TraceEvent::BudgetBreach { .. } => "budget_breach",
            TraceEvent::BudgetAction { .. } => "budget_action",
        }
    }

    /// The job id this event is about, if it concerns a specific job.
    /// Used by span derivation and the CLI `--job` trace filter.
    pub fn job_id(&self) -> Option<u64> {
        match *self {
            TraceEvent::JobEnqueued { job, .. }
            | TraceEvent::JobStarted { job, .. }
            | TraceEvent::JobCompleted { job, .. }
            | TraceEvent::JobTimedOut { job, .. }
            | TraceEvent::JobRequeued { job, .. }
            | TraceEvent::JobRetryScheduled { job, .. }
            | TraceEvent::JobShed { job, .. }
            | TraceEvent::JobFailed { job, .. }
            | TraceEvent::PlacementDecision { job, .. }
            | TraceEvent::ResponseSent { job, .. }
            | TraceEvent::CacheHit { job, .. }
            | TraceEvent::CacheMiss { job, .. }
            | TraceEvent::Coalesced { job, .. } => Some(job),
            TraceEvent::WorkerStateChange { .. }
            | TraceEvent::PowerSample { .. }
            | TraceEvent::NetTransfer { .. }
            | TraceEvent::FaultInjected { .. }
            | TraceEvent::GovernorTransition { .. }
            | TraceEvent::WakeRequested { .. }
            | TraceEvent::BudgetBreach { .. }
            | TraceEvent::BudgetAction { .. } => None,
        }
    }
}

/// A [`TraceEvent`] stamped with its global sequence number and the
/// simulated instant it occurred.
///
/// Records are fixed-size `Copy` values: every payload field is a
/// scalar or a `&'static str` label, so emitting one is a plain store
/// into the ring buffer's preallocated backing — no per-event heap
/// allocation anywhere on the hot path. JSON rendering happens only at
/// export time ([`TraceRecord::to_json`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Zero-based position in the run's full event stream (stable even
    /// when the ring buffer has dropped earlier records).
    pub seq: u64,
    /// Simulated instant of the event.
    pub at: SimTime,
    /// The event itself.
    pub event: TraceEvent,
}

// Compile-time pins on the packed record layout. Every event in a
// million-event ring costs `size_of::<TraceRecord>()` bytes, so a new
// variant (or a fattened payload) that grows the enum past the pin
// fails the build here instead of silently inflating every buffer by
// `capacity` bytes per added word. 72 B keeps the default 1 Mi-record
// CLI ring at 72 MiB; see docs/SCALING.md.
const _: () = assert!(std::mem::size_of::<TraceEvent>() <= 56);
const _: () = assert!(std::mem::size_of::<TraceRecord>() <= 72);

impl TraceRecord {
    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        use fmt::Write as _;
        let _ = write!(
            out,
            "{{\"seq\":{},\"at_us\":{},\"type\":\"{}\"",
            self.seq,
            self.at.as_micros(),
            self.event.kind()
        );
        match self.event {
            TraceEvent::WorkerStateChange { worker, state } => {
                let _ = write!(out, ",\"worker\":{worker},\"state\":\"{state}\"");
            }
            TraceEvent::JobEnqueued { job, function } => {
                let _ = write!(out, ",\"job\":{job},\"function\":\"{function}\"");
            }
            TraceEvent::JobStarted {
                job,
                function,
                worker,
            } => {
                let _ = write!(
                    out,
                    ",\"job\":{job},\"function\":\"{function}\",\"worker\":{worker}"
                );
            }
            TraceEvent::JobCompleted {
                job,
                function,
                worker,
                exec,
                overhead,
            } => {
                let _ = write!(
                    out,
                    ",\"job\":{job},\"function\":\"{function}\",\"worker\":{worker},\
                     \"exec_us\":{},\"overhead_us\":{}",
                    exec.as_micros(),
                    overhead.as_micros()
                );
            }
            TraceEvent::JobTimedOut {
                job,
                function,
                worker,
            } => {
                let _ = write!(
                    out,
                    ",\"job\":{job},\"function\":\"{function}\",\"worker\":{worker}"
                );
            }
            TraceEvent::PowerSample { worker, watts } => {
                let _ = write!(out, ",\"worker\":{worker},\"watts\":{watts}");
            }
            TraceEvent::NetTransfer { src, dst, bytes } => {
                let _ = write!(
                    out,
                    ",\"src\":\"{src}\",\"dst\":\"{dst}\",\"bytes\":{bytes}"
                );
            }
            TraceEvent::FaultInjected { worker, fault } => {
                let _ = write!(out, ",\"worker\":{worker},\"fault\":\"{fault}\"");
            }
            TraceEvent::JobRequeued {
                job,
                function,
                worker,
            } => {
                let _ = write!(
                    out,
                    ",\"job\":{job},\"function\":\"{function}\",\"worker\":{worker}"
                );
            }
            TraceEvent::JobRetryScheduled {
                job,
                function,
                attempt,
                delay,
            } => {
                let _ = write!(
                    out,
                    ",\"job\":{job},\"function\":\"{function}\",\"attempt\":{attempt},\
                     \"delay_us\":{}",
                    delay.as_micros()
                );
            }
            TraceEvent::JobShed { job, function } => {
                let _ = write!(out, ",\"job\":{job},\"function\":\"{function}\"");
            }
            TraceEvent::JobFailed {
                job,
                function,
                attempts,
            } => {
                let _ = write!(
                    out,
                    ",\"job\":{job},\"function\":\"{function}\",\"attempts\":{attempts}"
                );
            }
            TraceEvent::PlacementDecision {
                job,
                worker,
                policy,
            } => {
                let _ = write!(
                    out,
                    ",\"job\":{job},\"worker\":{worker},\"policy\":\"{policy}\""
                );
            }
            TraceEvent::GovernorTransition { worker, action } => {
                let _ = write!(out, ",\"worker\":{worker},\"action\":\"{action}\"");
            }
            TraceEvent::WakeRequested { worker, reason } => {
                let _ = write!(out, ",\"worker\":{worker},\"reason\":\"{reason}\"");
            }
            TraceEvent::ResponseSent {
                job,
                function,
                worker,
            } => {
                let _ = write!(
                    out,
                    ",\"job\":{job},\"function\":\"{function}\",\"worker\":{worker}"
                );
            }
            TraceEvent::CacheHit { job, function, key }
            | TraceEvent::CacheMiss { job, function, key } => {
                let _ = write!(
                    out,
                    ",\"job\":{job},\"function\":\"{function}\",\"key\":{key}"
                );
            }
            TraceEvent::Coalesced {
                job,
                leader,
                function,
            } => {
                let _ = write!(
                    out,
                    ",\"job\":{job},\"leader\":{leader},\"function\":\"{function}\""
                );
            }
            TraceEvent::BudgetBreach { tenant } => {
                let _ = write!(out, ",\"tenant\":{tenant}");
            }
            TraceEvent::BudgetAction { tenant, action } => {
                let _ = write!(out, ",\"tenant\":{tenant},\"action\":\"{action}\"");
            }
        }
        out.push('}');
    }
}

/// Receiver for the simulators' event stream.
///
/// Implementations must be cheap: `record` is called from the hot event
/// loop for every traced transition.
pub trait TraceSink {
    /// Accepts one event at simulated instant `at`.
    fn record(&mut self, at: SimTime, event: TraceEvent);
}

/// A bounded ring-buffer [`TraceSink`]: keeps the most recent
/// `capacity` records, counts the rest as dropped, and exports
/// chronologically.
///
/// # Examples
///
/// ```
/// use microfaas_sim::trace::{TraceBuffer, TraceEvent, TraceSink};
/// use microfaas_sim::SimTime;
///
/// let mut buffer = TraceBuffer::new(2);
/// for job in 0..5 {
///     buffer.record(
///         SimTime::from_micros(job),
///         TraceEvent::JobEnqueued { job, function: "CascSHA" },
///     );
/// }
/// // Only the last two survive; the three oldest were dropped.
/// assert_eq!(buffer.len(), 2);
/// assert_eq!(buffer.dropped(), 3);
/// assert_eq!(buffer.iter().next().unwrap().seq, 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    capacity: usize,
    next_seq: u64,
    records: VecDeque<TraceRecord>,
}

impl TraceBuffer {
    /// Creates a buffer keeping at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer capacity must be positive");
        TraceBuffer {
            capacity,
            next_seq: 0,
            records: VecDeque::with_capacity(capacity),
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Count of records overwritten because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.records.len() as u64
    }

    /// Iterates the retained records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Renders every retained record as JSON lines (one object per
    /// line, oldest first, trailing newline).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 96);
        for record in &self.records {
            record.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(TraceRecord {
            seq: self.next_seq,
            at,
            event,
        });
        self.next_seq += 1;
    }
}

/// What a simulator reports into: an optional trace sink plus an
/// optional metrics registry, borrowed for the duration of one run.
///
/// [`Observer::disabled`] is the default for every public `run_*`
/// entry point; results are bit-identical whether or not observation is
/// on, because emission never consumes simulation randomness.
///
/// # Examples
///
/// ```
/// use microfaas_sim::metrics::MetricsRegistry;
/// use microfaas_sim::trace::{Observer, TraceBuffer, TraceEvent};
/// use microfaas_sim::SimTime;
///
/// let mut buffer = TraceBuffer::new(1024);
/// let mut metrics = MetricsRegistry::new();
/// let mut observer = Observer::full(&mut buffer, &mut metrics);
///
/// observer.emit(
///     SimTime::ZERO,
///     TraceEvent::JobEnqueued { job: 0, function: "CascSHA" },
/// );
/// if let Some(m) = observer.metrics() {
///     let enqueued = m.counter("jobs_enqueued");
///     m.inc(enqueued);
/// }
///
/// drop(observer);
/// assert_eq!(buffer.len(), 1);
/// assert!(metrics.render_prometheus().contains("jobs_enqueued 1"));
/// ```
#[derive(Default)]
pub struct Observer<'a> {
    trace: Option<&'a mut dyn TraceSink>,
    metrics: Option<&'a mut MetricsRegistry>,
}

impl fmt::Debug for Observer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Observer")
            .field("tracing", &self.trace.is_some())
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

impl<'a> Observer<'a> {
    /// An observer that records nothing; every emission is a no-op.
    pub fn disabled() -> Self {
        Observer {
            trace: None,
            metrics: None,
        }
    }

    /// Observes the trace stream only.
    pub fn tracing(sink: &'a mut dyn TraceSink) -> Self {
        Observer {
            trace: Some(sink),
            metrics: None,
        }
    }

    /// Observes metrics only.
    pub fn metered(metrics: &'a mut MetricsRegistry) -> Self {
        Observer {
            trace: None,
            metrics: Some(metrics),
        }
    }

    /// Observes both the trace stream and metrics.
    pub fn full(sink: &'a mut dyn TraceSink, metrics: &'a mut MetricsRegistry) -> Self {
        Observer {
            trace: Some(sink),
            metrics: Some(metrics),
        }
    }

    /// True if a trace sink is attached.
    pub fn is_tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Sends one event to the trace sink, if any.
    #[inline]
    pub fn emit(&mut self, at: SimTime, event: TraceEvent) {
        if let Some(sink) = self.trace.as_deref_mut() {
            sink.record(at, event);
        }
    }

    /// The metrics registry, if one is attached. Simulators register
    /// their handles through this once per run, then publish into them.
    #[inline]
    pub fn metrics(&mut self) -> Option<&mut MetricsRegistry> {
        self.metrics.as_deref_mut()
    }
}

/// How an engine publishes its trace stream: either the dyn-dispatch
/// [`Observer`] (flexible — any sink, any combination, behind one
/// concrete type), or a [`TypedObserver`] that names the sink type so
/// the engine monomorphizes over it and the compiler inlines the
/// sink's `record` at every emission site. With inlining, each site's
/// statically-known event variant collapses the sink's match to the
/// one relevant arm, which is what keeps always-on telemetry within
/// its wall-clock budget (`docs/MONITORING.md`).
pub trait TraceObserver {
    /// Sends one event to the observer.
    fn emit(&mut self, at: SimTime, event: TraceEvent);

    /// The metrics registry, if one is attached.
    fn metrics(&mut self) -> Option<&mut MetricsRegistry>;
}

impl TraceObserver for Observer<'_> {
    #[inline]
    fn emit(&mut self, at: SimTime, event: TraceEvent) {
        Observer::emit(self, at, event);
    }

    #[inline]
    fn metrics(&mut self) -> Option<&mut MetricsRegistry> {
        Observer::metrics(self)
    }
}

/// A [`TraceObserver`] with the sink type in its signature: engines
/// generic over the observer inline the sink's fold directly into
/// their event loop, eliminating the per-event virtual call and the
/// construction of event payloads the sink ignores.
#[derive(Debug)]
pub struct TypedObserver<'a, T: TraceSink> {
    sink: &'a mut T,
}

impl<'a, T: TraceSink> TypedObserver<'a, T> {
    /// Wraps a mutably-borrowed sink.
    pub fn new(sink: &'a mut T) -> Self {
        TypedObserver { sink }
    }
}

impl<T: TraceSink> TraceObserver for TypedObserver<'_, T> {
    #[inline(always)]
    fn emit(&mut self, at: SimTime, event: TraceEvent) {
        self.sink.record(at, event);
    }

    #[inline]
    fn metrics(&mut self) -> Option<&mut MetricsRegistry> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enqueue(job: u64) -> TraceEvent {
        TraceEvent::JobEnqueued {
            job,
            function: "CascSHA",
        }
    }

    #[test]
    fn ring_buffer_keeps_the_newest_records() {
        let mut buffer = TraceBuffer::new(4);
        for i in 0..10 {
            buffer.record(SimTime::from_micros(i), enqueue(i));
        }
        assert_eq!(buffer.len(), 4);
        assert_eq!(buffer.capacity(), 4);
        assert_eq!(buffer.dropped(), 6);
        let seqs: Vec<u64> = buffer.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        // Chronological: timestamps non-decreasing.
        let times: Vec<u64> = buffer.iter().map(|r| r.at.as_micros()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn under_capacity_nothing_is_dropped() {
        let mut buffer = TraceBuffer::new(100);
        for i in 0..3 {
            buffer.record(SimTime::from_micros(i), enqueue(i));
        }
        assert_eq!(buffer.len(), 3);
        assert_eq!(buffer.dropped(), 0);
        assert!(!buffer.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        TraceBuffer::new(0);
    }

    #[test]
    fn json_lines_are_one_object_per_line() {
        let mut buffer = TraceBuffer::new(8);
        buffer.record(SimTime::from_micros(5), enqueue(1));
        buffer.record(
            SimTime::from_micros(9),
            TraceEvent::JobCompleted {
                job: 1,
                function: "CascSHA",
                worker: 3,
                exec: SimDuration::from_micros(2),
                overhead: SimDuration::from_micros(1),
            },
        );
        let dump = buffer.to_json_lines();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"at_us\":5,\"type\":\"job_enqueued\",\"job\":1,\"function\":\"CascSHA\"}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"at_us\":9,\"type\":\"job_completed\",\"job\":1,\
             \"function\":\"CascSHA\",\"worker\":3,\"exec_us\":2,\"overhead_us\":1}"
        );
    }

    #[test]
    fn every_event_kind_renders_valid_shape() {
        let events = [
            TraceEvent::WorkerStateChange {
                worker: 0,
                state: WorkerState::Booting,
            },
            enqueue(7),
            TraceEvent::JobStarted {
                job: 7,
                function: "AES128",
                worker: 2,
            },
            TraceEvent::JobCompleted {
                job: 7,
                function: "AES128",
                worker: 2,
                exec: SimDuration::from_millis(3),
                overhead: SimDuration::from_millis(1),
            },
            TraceEvent::JobTimedOut {
                job: 8,
                function: "AES128",
                worker: 2,
            },
            TraceEvent::PowerSample {
                worker: 2,
                watts: 1.96,
            },
            TraceEvent::NetTransfer {
                src: Endpoint::Worker(2),
                dst: Endpoint::Service("kv"),
                bytes: 1500,
            },
            TraceEvent::FaultInjected {
                worker: 3,
                fault: "crash",
            },
            TraceEvent::JobRequeued {
                job: 9,
                function: "CascSHA",
                worker: 3,
            },
            TraceEvent::JobRetryScheduled {
                job: 9,
                function: "CascSHA",
                attempt: 1,
                delay: SimDuration::from_millis(250),
            },
            TraceEvent::JobShed {
                job: 10,
                function: "MatMul",
            },
            TraceEvent::JobFailed {
                job: 9,
                function: "CascSHA",
                attempts: 3,
            },
            TraceEvent::PlacementDecision {
                job: 11,
                worker: 4,
                policy: "least-loaded",
            },
            TraceEvent::GovernorTransition {
                worker: 4,
                action: "standby",
            },
            TraceEvent::WakeRequested {
                worker: 5,
                reason: "dispatch",
            },
            TraceEvent::ResponseSent {
                job: 12,
                function: "MatMul",
                worker: 5,
            },
            TraceEvent::CacheHit {
                job: 13,
                function: "CascSHA",
                key: 0xdead_beef,
            },
            TraceEvent::CacheMiss {
                job: 14,
                function: "CascSHA",
                key: 0xdead_beef,
            },
            TraceEvent::Coalesced {
                job: 15,
                leader: 14,
                function: "CascSHA",
            },
            TraceEvent::BudgetBreach { tenant: 1 },
            TraceEvent::BudgetAction {
                tenant: 1,
                action: "shed",
            },
        ];
        let mut buffer = TraceBuffer::new(events.len());
        for (i, &event) in events.iter().enumerate() {
            buffer.record(SimTime::from_micros(i as u64), event);
        }
        for (record, event) in buffer.iter().zip(events.iter()) {
            let json = record.to_json();
            assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
            assert!(
                json.contains(&format!("\"type\":\"{}\"", event.kind())),
                "{json}"
            );
        }
        // Spot-check endpoint rendering.
        let transfer = buffer
            .iter()
            .find(|r| r.event.kind() == "net_transfer")
            .unwrap()
            .to_json();
        assert!(transfer.contains("\"src\":\"worker:2\""), "{transfer}");
        assert!(transfer.contains("\"dst\":\"kv\""), "{transfer}");
        // And fault-event payloads.
        let retry = buffer
            .iter()
            .find(|r| r.event.kind() == "job_retry_scheduled")
            .unwrap()
            .to_json();
        assert!(retry.contains("\"attempt\":1"), "{retry}");
        assert!(retry.contains("\"delay_us\":250000"), "{retry}");
        let fault = buffer
            .iter()
            .find(|r| r.event.kind() == "fault_injected")
            .unwrap()
            .to_json();
        assert!(fault.contains("\"fault\":\"crash\""), "{fault}");
        // And the scheduling-subsystem payloads.
        let placed = buffer
            .iter()
            .find(|r| r.event.kind() == "placement_decision")
            .unwrap()
            .to_json();
        assert!(placed.contains("\"policy\":\"least-loaded\""), "{placed}");
        let gov = buffer
            .iter()
            .find(|r| r.event.kind() == "governor_transition")
            .unwrap()
            .to_json();
        assert!(gov.contains("\"action\":\"standby\""), "{gov}");
        // And the causal span anchors.
        let wake = buffer
            .iter()
            .find(|r| r.event.kind() == "wake_requested")
            .unwrap()
            .to_json();
        assert!(wake.contains("\"reason\":\"dispatch\""), "{wake}");
        let sent = buffer
            .iter()
            .find(|r| r.event.kind() == "response_sent")
            .unwrap()
            .to_json();
        assert!(sent.contains("\"job\":12"), "{sent}");
        assert!(sent.contains("\"worker\":5"), "{sent}");
        // And the result-cache payloads.
        let hit = buffer
            .iter()
            .find(|r| r.event.kind() == "cache_hit")
            .unwrap()
            .to_json();
        assert!(hit.contains("\"key\":3735928559"), "{hit}");
        let coalesced = buffer
            .iter()
            .find(|r| r.event.kind() == "coalesced")
            .unwrap()
            .to_json();
        assert!(coalesced.contains("\"leader\":14"), "{coalesced}");
        // And the energy-budget payloads.
        let breach = buffer
            .iter()
            .find(|r| r.event.kind() == "budget_breach")
            .unwrap()
            .to_json();
        assert!(breach.contains("\"tenant\":1"), "{breach}");
        let action = buffer
            .iter()
            .find(|r| r.event.kind() == "budget_action")
            .unwrap()
            .to_json();
        assert!(action.contains("\"action\":\"shed\""), "{action}");
    }

    #[test]
    fn job_id_extraction_covers_job_scoped_events() {
        assert_eq!(enqueue(7).job_id(), Some(7));
        assert_eq!(
            TraceEvent::CacheHit {
                job: 6,
                function: "AES128",
                key: 1,
            }
            .job_id(),
            Some(6)
        );
        assert_eq!(
            TraceEvent::Coalesced {
                job: 6,
                leader: 5,
                function: "AES128",
            }
            .job_id(),
            Some(6)
        );
        assert_eq!(
            TraceEvent::ResponseSent {
                job: 3,
                function: "AES128",
                worker: 1,
            }
            .job_id(),
            Some(3)
        );
        assert_eq!(
            TraceEvent::WakeRequested {
                worker: 0,
                reason: "prewarm",
            }
            .job_id(),
            None
        );
        assert_eq!(
            TraceEvent::PowerSample {
                worker: 0,
                watts: 1.0,
            }
            .job_id(),
            None
        );
    }

    #[test]
    fn disabled_observer_is_a_no_op() {
        let mut observer = Observer::disabled();
        assert!(!observer.is_tracing());
        observer.emit(SimTime::ZERO, enqueue(0));
        assert!(observer.metrics().is_none());
    }

    #[test]
    fn full_observer_routes_to_both() {
        let mut buffer = TraceBuffer::new(4);
        let mut metrics = MetricsRegistry::new();
        {
            let mut observer = Observer::full(&mut buffer, &mut metrics);
            observer.emit(SimTime::ZERO, enqueue(0));
            let registry = observer.metrics().expect("metrics attached");
            let c = registry.counter("seen");
            registry.inc(c);
        }
        assert_eq!(buffer.len(), 1);
        assert!(metrics.render_prometheus().contains("seen 1"));
    }
}
