//! The discrete-event queue at the heart of the simulator.
//!
//! [`EventQueue`] is generic over the event payload so each simulation
//! defines its own event enum. Events scheduled for the same instant are
//! delivered in scheduling order (FIFO tie-break by sequence number), which
//! keeps runs deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::{SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Order entries so that the *earliest* time (and, within a time, the
// lowest sequence number) is the greatest element of the max-heap.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A deterministic discrete-event queue.
///
/// # Examples
///
/// ```
/// use microfaas_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_in(SimDuration::from_millis(5), "later");
/// q.schedule_in(SimDuration::from_millis(1), "sooner");
///
/// let (t, e) = q.pop().expect("two events queued");
/// assert_eq!((t, e), (SimTime::from_millis(1), "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` pending events
    /// before the backing heap reallocates. Simulators that know their
    /// peak outstanding-event count (roughly jobs in flight plus a few
    /// timers per worker) use this to keep the hot loop allocation-free.
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas_sim::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::with_capacity(128);
    /// q.schedule(SimTime::from_millis(1), "ready");
    /// assert_eq!(q.len(), 1);
    /// ```
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time — the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`Self::now`]).
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < now {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
        EventId(seq)
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event had
    /// not yet fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            // Fast path: most runs cancel nothing (or have already
            // drained their cancellations), so skip the hash lookup
            // entirely when the tombstone set is empty.
            if !self.cancelled.is_empty() && self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Returns the timestamp of the next (non-cancelled) event without
    /// removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if !self.cancelled.is_empty() && self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let keep = q.schedule(SimTime::from_millis(1), "keep");
        let drop = q.schedule(SimTime::from_millis(2), "drop");
        assert!(q.cancel(drop));
        assert!(!q.cancel(drop), "double cancel should report false");
        let _ = keep;
        let events: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(events, vec!["keep"]);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), ());
        let id = q.schedule(SimTime::from_millis(2), ());
        q.cancel(id);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let head = q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(2), "b");
        q.cancel(head);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(64);
        q.reserve(16);
        let keep = q.schedule(SimTime::from_millis(1), "keep");
        let drop = q.schedule(SimTime::from_millis(2), "drop");
        q.cancel(drop);
        let _ = keep;
        let events: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(events, vec!["keep"]);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(5), "second");
        assert_eq!(q.pop().map(|(t, _)| t), Some(SimTime::from_secs(15)));
    }
}
