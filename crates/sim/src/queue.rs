//! The discrete-event queue at the heart of the simulator.
//!
//! [`EventQueue`] is generic over the event payload so each simulation
//! defines its own event enum. Events scheduled for the same instant are
//! delivered in scheduling order (FIFO tie-break by sequence number), which
//! keeps runs deterministic.
//!
//! # Implementation: hierarchical timing wheel
//!
//! The queue is a hashed hierarchical timing wheel (the structure behind
//! kernel timers and tokio's timer driver), not a binary heap. Each of the
//! [`DEFAULT_LEVELS`] levels has 64 slots and resolves six more bits of
//! the microsecond timestamp than the level below, so the default wheel
//! spans `2^36` µs ≈ 19.1 simulated hours ahead of the current anchor.
//! A `u64` occupancy bitmap per level makes "find the earliest slot" a
//! single `trailing_zeros`. Events beyond the wheel's horizon wait in a
//! small overflow [`BinaryHeap`] and migrate into the wheel as simulated
//! time approaches them.
//!
//! Cost model (see `docs/SCALING.md` for the full analysis):
//!
//! * `schedule` — O(1): one XOR + `leading_zeros` to pick the slot, one
//!   `VecDeque::push_back`.
//! * `pop` — O(1) amortized: an event cascades down at most
//!   `levels − 1` times over its whole lifetime.
//! * `cancel` — O(1): sets a bit in a sequence-indexed tombstone bitmap
//!   (no hashing), and the event is reclaimed lazily when its slot drains.
//!
//! Within a level-0 slot every entry shares the *same* timestamp, so the
//! slot's `VecDeque` order is exactly sequence order and FIFO tie-breaking
//! falls out of `push_back`/`pop_front` with no comparisons at all.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::{SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// Bits of timestamp resolved per wheel level; each level has `2^6 = 64`
/// slots so one `u64` bitmap tracks slot occupancy.
const SLOT_BITS: u32 = 6;

/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;

/// Default number of wheel levels. Six levels × six bits = 36 bits of
/// microseconds ≈ 19.1 hours of horizon before events spill to the
/// overflow heap — comfortably past every workload in the repo (the
/// longest TCO horizons are simulated analytically, not event by event).
pub const DEFAULT_LEVELS: u32 = 6;

/// Maximum supported wheel depth (`10 × 6 = 60` bits ≈ 36 557 years).
pub const MAX_LEVELS: u32 = 10;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Order entries so that the *earliest* time (and, within a time, the
// lowest sequence number) is the greatest element of the overflow
// max-heap.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A deterministic discrete-event queue.
///
/// # Examples
///
/// ```
/// use microfaas_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_in(SimDuration::from_millis(5), "later");
/// q.schedule_in(SimDuration::from_millis(1), "sooner");
///
/// let (t, e) = q.pop().expect("two events queued");
/// assert_eq!((t, e), (SimTime::from_millis(1), "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `levels × 64` slot queues, flattened (`level * SLOTS + slot`).
    slots: Vec<VecDeque<Entry<E>>>,
    /// One occupancy bitmap per level; bit `s` set iff slot `s` is
    /// non-empty.
    occupied: Vec<u64>,
    /// Number of wheel levels (the granularity knob; see
    /// [`Self::with_levels`]).
    levels: u32,
    /// `2^(6·levels)` µs — events at or beyond `anchor + span` overflow.
    span: u64,
    /// Far-future events that do not fit the wheel yet, min-ordered by
    /// `(time, seq)`.
    overflow: BinaryHeap<Entry<E>>,
    /// One-entry fast path: when present, holds the global minimum by
    /// `(time, seq)` — strictly earlier than everything in the wheel and
    /// overflow. Serial event chains (schedule an event, pop it next,
    /// repeat — the dominant sparse cluster-sim shape) flow through this
    /// buffer without ever touching a wheel slot.
    front: Option<Entry<E>>,
    /// Tombstone bitmap indexed by sequence number (bit set = cancelled).
    cancelled: Vec<u64>,
    /// Number of set bits in `cancelled` not yet reclaimed.
    tombstones: usize,
    /// Entries physically present in the wheel plus the overflow heap
    /// (including not-yet-reclaimed cancelled ones).
    stored: usize,
    /// The wheel's reference time in µs. Invariant between public calls:
    /// `anchor ≤ now`, and every stored entry satisfies
    /// `time ≥ anchor` with wheel entries within `anchor ^ time < span`.
    anchor: u64,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue sized for `capacity` pending events.
    /// Simulators that know their peak outstanding-event count (roughly
    /// jobs in flight plus a few timers per worker) use this to keep the
    /// hot loop allocation-free: the hint pre-sizes the tombstone bitmap
    /// and the overflow heap, while wheel slots grow lazily on first use
    /// and are reused (their buffers are never freed) thereafter.
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas_sim::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::with_capacity(128);
    /// q.schedule(SimTime::from_millis(1), "ready");
    /// assert_eq!(q.len(), 1);
    /// ```
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::with_levels(DEFAULT_LEVELS);
        q.reserve(capacity);
        q
    }

    /// Creates an empty queue with an explicit wheel depth — the
    /// granularity knob. Each level resolves six bits of the microsecond
    /// timestamp, so `levels` levels give a horizon of `2^(6·levels)` µs
    /// past the current time before events spill to the overflow heap
    /// (which stays correct but costs O(log n) per far-future event).
    /// The default, [`DEFAULT_LEVELS`] = 6, spans ≈ 19.1 simulated hours.
    ///
    /// Shallower wheels save a little memory for very short simulations;
    /// deeper wheels keep multi-day horizons entirely O(1).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is 0 or greater than [`MAX_LEVELS`].
    ///
    /// # Examples
    ///
    /// ```
    /// use microfaas_sim::{EventQueue, SimDuration, SimTime};
    ///
    /// // A 2-level wheel spans 2^12 µs; this event lands in overflow
    /// // first, then migrates into the wheel — delivery is unchanged.
    /// let mut q = EventQueue::with_levels(2);
    /// q.schedule(SimTime::from_secs(60), "far");
    /// assert_eq!(q.pop(), Some((SimTime::from_secs(60), "far")));
    /// ```
    pub fn with_levels(levels: u32) -> Self {
        assert!(
            (1..=MAX_LEVELS).contains(&levels),
            "wheel depth must be between 1 and {MAX_LEVELS} levels, got {levels}"
        );
        let mut slots = Vec::new();
        slots.resize_with(levels as usize * SLOTS, VecDeque::new);
        EventQueue {
            slots,
            occupied: vec![0; levels as usize],
            levels,
            span: 1u64 << (SLOT_BITS * levels),
            overflow: BinaryHeap::new(),
            front: None,
            cancelled: Vec::new(),
            tombstones: 0,
            stored: 0,
            anchor: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Number of wheel levels (see [`Self::with_levels`]).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// How far past the current time an event can be scheduled before it
    /// spills to the overflow heap: `2^(6·levels)` µs.
    pub fn horizon(&self) -> SimDuration {
        SimDuration::from_micros(self.span)
    }

    /// The current simulated time — the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`Self::now`]).
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < now {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry {
            time: at,
            seq,
            event,
        };
        match &self.front {
            // Strictly earlier than the buffered minimum (a time tie
            // loses: the buffered entry has the lower sequence number):
            // displace it into the wheel. Its timestamp is at or past
            // the anchor, so it always fits. The displaced entry held
            // the global minimum, so among pending events that share
            // its timestamp it has the lowest sequence number — it must
            // re-enter its slot at the *front*, ahead of any same-time
            // entry already queued there, to keep FIFO tie order.
            Some(min) if at < min.time => {
                let displaced = self.front.replace(entry).expect("front was just matched");
                self.place_displaced(displaced);
            }
            Some(_) => self.place(entry),
            // Nothing pending at all: the new event is trivially the
            // minimum. (With a non-empty wheel we cannot know the
            // minimum without cascading, so the entry goes to a slot.)
            None if self.stored == 0 => self.front = Some(entry),
            None => self.place(entry),
        }
        self.stored += 1;
        EventId(seq)
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event had
    /// not yet fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        let word = (id.0 / 64) as usize;
        if word >= self.cancelled.len() {
            self.cancelled.resize(word + 1, 0);
        }
        let mask = 1u64 << (id.0 % 64);
        if self.cancelled[word] & mask != 0 {
            return false;
        }
        self.cancelled[word] |= mask;
        self.tombstones += 1;
        true
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            // The front buffer, when occupied, holds the global minimum.
            if let Some(entry) = self.front.take() {
                self.stored -= 1;
                if self.tombstones != 0 && self.is_cancelled(entry.seq) {
                    self.clear_tombstone(entry.seq);
                    continue;
                }
                self.now = entry.time;
                return Some((entry.time, entry.event));
            }
            if self.stored == 0 {
                // Re-anchor the (empty) wheel at the observable clock so
                // future `schedule(at ≥ now)` calls land in the finest
                // levels again.
                self.anchor = self.now.as_micros();
                return None;
            }
            if self.occupied[0] != 0 {
                let slot = self.occupied[0].trailing_zeros() as usize;
                let queue = &mut self.slots[slot];
                let entry = queue.pop_front().expect("occupied level-0 slot is empty");
                if queue.is_empty() {
                    self.occupied[0] &= !(1u64 << slot);
                }
                self.stored -= 1;
                // Fast path: most runs cancel nothing (or have already
                // drained their cancellations), so skip the bitmap probe
                // entirely when no tombstones are outstanding.
                if self.tombstones != 0 && self.is_cancelled(entry.seq) {
                    self.clear_tombstone(entry.seq);
                    continue;
                }
                self.now = entry.time;
                self.anchor = entry.time.as_micros();
                return Some((entry.time, entry.event));
            }
            self.cascade();
        }
    }

    /// Returns the timestamp of the next (non-cancelled) event without
    /// removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // The front buffer holds the minimum when present; reclaim it if
        // it was cancelled (mirroring the old heap's peek, which
        // discarded cancelled heads) and fall through to the wheel.
        if let Some(entry) = &self.front {
            if self.tombstones == 0 || !self.is_cancelled(entry.seq) {
                return Some(entry.time);
            }
            let entry = self.front.take().expect("front was just matched");
            self.stored -= 1;
            self.clear_tombstone(entry.seq);
        }
        // Level 0: reclaim tombstoned slot heads (cheap, and mirrors the
        // old heap's peek, which discarded cancelled heads), then report
        // the earliest occupied slot. Level-0 slots hold a single
        // timestamp each, so the lowest occupied bit is the minimum.
        while self.occupied[0] != 0 {
            let slot = self.occupied[0].trailing_zeros() as usize;
            let Some(front) = self.slots[slot].front() else {
                self.occupied[0] &= !(1u64 << slot);
                continue;
            };
            let (seq, time) = (front.seq, front.time);
            if self.tombstones != 0 && self.is_cancelled(seq) {
                self.slots[slot].pop_front();
                self.stored -= 1;
                self.clear_tombstone(seq);
                if self.slots[slot].is_empty() {
                    self.occupied[0] &= !(1u64 << slot);
                }
                continue;
            }
            return Some(time);
        }
        // Higher levels: scan the earliest occupied slot for its minimum
        // live time. No cascading here — peeking must not advance the
        // wheel anchor, or a later legal `schedule(at ≥ now)` could fall
        // behind it.
        for level in 1..self.levels as usize {
            let mut occ = self.occupied[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= !(1u64 << slot);
                let mut best: Option<SimTime> = None;
                for entry in &self.slots[level * SLOTS + slot] {
                    if self.tombstones != 0 && self.is_cancelled(entry.seq) {
                        continue;
                    }
                    if best.is_none_or(|b| entry.time < b) {
                        best = Some(entry.time);
                    }
                }
                if best.is_some() {
                    return best;
                }
                // Slot is entirely tombstones; `pop` reclaims it later.
            }
        }
        // Overflow: discard cancelled heads exactly like the old heap.
        while let Some(head) = self.overflow.peek() {
            let (seq, time) = (head.seq, head.time);
            if self.tombstones != 0 && self.is_cancelled(seq) {
                self.overflow.pop();
                self.stored -= 1;
                self.clear_tombstone(seq);
                continue;
            }
            return Some(time);
        }
        None
    }

    /// Reserves room for at least `additional` more pending events
    /// (pre-sizes the tombstone bitmap and overflow heap; see
    /// [`Self::with_capacity`]).
    pub fn reserve(&mut self, additional: usize) {
        let target_words = (self.next_seq as usize + additional).div_ceil(64);
        if target_words > self.cancelled.capacity() {
            self.cancelled.reserve(target_words - self.cancelled.len());
        }
        self.overflow.reserve(additional.min(SLOTS));
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.stored - self.tombstones
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an entry into the wheel slot for its timestamp, or into
    /// the overflow heap when it lies past the horizon. Does not touch
    /// `stored`; callers account for it.
    ///
    /// Slot queues stay sequence-ordered within each timestamp because
    /// every caller appends in ascending sequence order: `schedule`
    /// only places fresh (highest-seq) entries here, cascades re-place
    /// a drained slot in its preserved order, and overflow refills pop
    /// the heap in `(time, seq)` order. The one entry that may re-enter
    /// *behind* same-time events already queued — a displaced front
    /// buffer — goes through [`Self::place_displaced`] instead.
    #[inline]
    fn place(&mut self, entry: Entry<E>) {
        let t = entry.time.as_micros();
        debug_assert!(t >= self.anchor, "entry behind the wheel anchor");
        let diff = t ^ self.anchor;
        if diff >= self.span {
            self.overflow.push(entry);
            return;
        }
        let (level, slot) = self.level_and_slot(t, diff);
        self.slots[level * SLOTS + slot].push_back(entry);
        self.occupied[level] |= 1u64 << slot;
    }

    /// Re-inserts a displaced front-buffer entry. It was the global
    /// minimum, so its sequence number is the lowest among pending
    /// events sharing its timestamp — it must sit *ahead* of any
    /// same-time entry already in the slot, or a later pop (or a
    /// cascade min-scan, which takes the first entry at the minimum
    /// timestamp) would break FIFO tie order.
    fn place_displaced(&mut self, entry: Entry<E>) {
        let t = entry.time.as_micros();
        debug_assert!(t >= self.anchor, "entry behind the wheel anchor");
        let diff = t ^ self.anchor;
        if diff >= self.span {
            // The overflow heap orders by `(time, seq)` on its own.
            self.overflow.push(entry);
            return;
        }
        let (level, slot) = self.level_and_slot(t, diff);
        self.slots[level * SLOTS + slot].push_front(entry);
        self.occupied[level] |= 1u64 << slot;
    }

    /// Maps a timestamp to its wheel coordinates. Highest differing bit
    /// picks the level; the timestamp's digit at that level picks the
    /// slot. `diff == 0` (scheduling exactly at the anchor) lands in
    /// level 0's current slot.
    #[inline]
    fn level_and_slot(&self, t: u64, diff: u64) -> (usize, usize) {
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        };
        let slot = ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    /// Advances the wheel anchor to the next occupied window and
    /// redistributes its entries into finer levels. Called by `pop` when
    /// level 0 is empty but events remain. Each entry moves at most
    /// `levels − 1` times over its lifetime, so `pop` stays O(1)
    /// amortized.
    fn cascade(&mut self) {
        for level in 1..self.levels as usize {
            if self.occupied[level] == 0 {
                continue;
            }
            let slot = self.occupied[level].trailing_zeros() as usize;
            self.occupied[level] &= !(1u64 << slot);
            let idx = level * SLOTS + slot;
            if self.slots[idx].len() == 1 {
                // Sparse-queue fast path: a lone entry in the earliest
                // occupied window IS the global minimum, so it goes
                // straight to the front buffer without the drain/min-scan
                // machinery below. Cluster sims with a handful of
                // in-flight timers hit this on most cascades.
                let entry = self.slots[idx].pop_front().expect("occupied slot is empty");
                self.anchor = entry.time.as_micros();
                if self.tombstones != 0 && self.is_cancelled(entry.seq) {
                    self.clear_tombstone(entry.seq);
                    self.stored -= 1;
                } else {
                    self.front = Some(entry);
                }
                return;
            }
            let mut drained = std::mem::take(&mut self.slots[idx]);
            // Jump the anchor to the earliest timestamp in the drained
            // slot, not merely the window start: a lone far-future timer
            // then lands directly in level 0 instead of cascading once
            // per level, which keeps sparse queues (a handful of
            // in-flight timers, the common cluster-sim shape) cheap.
            // This is sound because the drained slot is the earliest
            // occupied window, so its minimum bounds every pending
            // event; and only bits below this level's range change, so
            // every other slot's (level, digit) assignment — and the
            // overflow horizon, which lives in bits ≥ 6·levels — is
            // unaffected.
            self.anchor = drained
                .iter()
                .map(|entry| entry.time.as_micros())
                .min()
                .expect("occupied slot is empty");
            // The first live entry at the minimum timestamp is the global
            // minimum (this was the earliest occupied window, and equal
            // times sit in sequence order), so it can go straight to the
            // front buffer — empty here, since only `pop` cascades and it
            // drains the buffer first — rather than round-tripping
            // through a level-0 slot.
            let mut front_filled = false;
            for entry in drained.drain(..) {
                // Reclaim tombstones here instead of re-placing them, so a
                // cancelled event is touched at most once after its
                // cancellation — this is what keeps cancel-heavy runs
                // (exec + cancelled timeout) fast.
                if self.tombstones != 0 && self.is_cancelled(entry.seq) {
                    self.clear_tombstone(entry.seq);
                    self.stored -= 1;
                    continue;
                }
                if !front_filled && entry.time.as_micros() == self.anchor {
                    self.front = Some(entry);
                    front_filled = true;
                    continue;
                }
                self.place(entry);
            }
            // Give the (empty) buffer back so the slot never reallocates.
            self.slots[idx] = drained;
            return;
        }
        // The wheel is empty: jump the anchor to the earliest overflow
        // event and migrate everything that now fits the horizon. Heap
        // order is (time, seq), so equal-timestamp entries arrive in
        // sequence order and FIFO tie-breaking is preserved.
        let head = self
            .overflow
            .peek()
            .expect("events stored but wheel and overflow are both empty");
        self.anchor = head.time.as_micros();
        while let Some(head) = self.overflow.peek() {
            if head.time.as_micros() ^ self.anchor >= self.span {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry vanished");
            if self.tombstones != 0 && self.is_cancelled(entry.seq) {
                self.clear_tombstone(entry.seq);
                self.stored -= 1;
                continue;
            }
            self.place(entry);
        }
    }

    fn is_cancelled(&self, seq: u64) -> bool {
        self.cancelled
            .get((seq / 64) as usize)
            .is_some_and(|word| word & (1u64 << (seq % 64)) != 0)
    }

    fn clear_tombstone(&mut self, seq: u64) {
        self.cancelled[(seq / 64) as usize] &= !(1u64 << (seq % 64));
        self.tombstones -= 1;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let keep = q.schedule(SimTime::from_millis(1), "keep");
        let drop = q.schedule(SimTime::from_millis(2), "drop");
        assert!(q.cancel(drop));
        assert!(!q.cancel(drop), "double cancel should report false");
        let _ = keep;
        let events: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(events, vec!["keep"]);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), ());
        let id = q.schedule(SimTime::from_millis(2), ());
        q.cancel(id);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let head = q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(2), "b");
        q.cancel(head);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(64);
        q.reserve(16);
        let keep = q.schedule(SimTime::from_millis(1), "keep");
        let drop = q.schedule(SimTime::from_millis(2), "drop");
        q.cancel(drop);
        let _ = keep;
        let events: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(events, vec!["keep"]);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(5), "second");
        assert_eq!(q.pop().map(|(t, _)| t), Some(SimTime::from_secs(15)));
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        // Beyond the 2^36 µs default horizon: lives in the overflow heap
        // until the wheel catches up.
        let mut q = EventQueue::new();
        let far = SimTime::from_micros(1 << 40);
        q.schedule(far, "far");
        q.schedule(SimTime::from_millis(1), "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "near")));
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop(), Some((far, "far")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_ties_still_break_fifo() {
        let mut q = EventQueue::with_levels(2);
        let t = SimTime::from_secs(3600);
        for i in 0..8 {
            q.schedule(t, i);
        }
        // Interleave a near event so the overflow drain happens mid-run.
        q.schedule(SimTime::from_millis(1), 100);
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 100)));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_after_empty_pop_reanchors() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), "first");
        q.pop();
        assert!(q.pop().is_none());
        // The wheel must accept anything at or after the observable clock.
        q.schedule(SimTime::from_secs(7), "again");
        assert_eq!(q.pop(), Some((SimTime::from_secs(7), "again")));
    }

    #[test]
    fn peek_does_not_disturb_schedulability() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), "first");
        q.pop();
        q.schedule(SimTime::from_secs(3600), "later");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3600)));
        // Peeking must not advance the wheel: scheduling between now and
        // the peeked time stays legal and is delivered first.
        q.schedule(SimTime::from_secs(10), "soon");
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), "soon")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3600), "later")));
    }

    #[test]
    fn deep_and_shallow_wheels_agree() {
        for levels in [1, 2, 6, MAX_LEVELS] {
            let mut q = EventQueue::with_levels(levels);
            assert_eq!(q.levels(), levels);
            assert_eq!(q.horizon().as_micros(), 1u64 << (6 * levels));
            let times = [0u64, 63, 64, 4095, 4096, 1 << 20, (1 << 36) + 5];
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(t), i);
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..times.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "wheel depth")]
    fn zero_level_wheel_is_rejected() {
        let _ = EventQueue::<()>::with_levels(0);
    }
}
