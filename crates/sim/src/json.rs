//! A minimal JSON value parser — just enough for the repo's spec files
//! (fault plans, workload scenarios), written in-crate to keep the
//! workspace dependency-free.
//!
//! The grammar is standard JSON minus `\uXXXX` escapes. Objects keep
//! their entries in source order so callers can reject unknown keys
//! with a deterministic "first offender" error.
//!
//! # Examples
//!
//! ```
//! use microfaas_sim::json;
//!
//! let value = json::parse(r#"{"name": "steady", "rate": 1.5}"#).unwrap();
//! let object = value.as_object().unwrap();
//! assert_eq!(object[0].0, "name");
//! assert_eq!(object[1].1.as_f64(), Some(1.5));
//! ```

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escape sequences resolved).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's entries in source order, or `None` for any other
    /// value kind.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array's items, or `None` for any other value kind.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string's contents, or `None` for any other value kind.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, or `None` for any other value kind.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, or `None` if it is
    /// negative, fractional, out of `u64` range, or not a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parses `text` as a single JSON value.
///
/// # Errors
///
/// Returns a message naming the first offending byte position on
/// malformed input, unsupported escapes, or trailing content.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing input at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => {
                            return Err(format!(
                                "unsupported escape '\\{}' at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let ch = text.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("malformed number \"{text}\" at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let value = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#).unwrap();
        let object = value.as_object().unwrap();
        assert_eq!(object.len(), 2);
        let items = object[0].1.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("x"));
        let inner = object[1].1.as_object().unwrap();
        assert_eq!(inner[0].1, Value::Bool(true));
        assert_eq!(inner[1].1, Value::Null);
    }

    #[test]
    fn rejects_trailing_input() {
        assert!(parse("{} x").unwrap_err().contains("trailing"));
    }

    #[test]
    fn rejects_negative_as_u64() {
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_f64(), Some(-3.0));
    }

    #[test]
    fn resolves_escapes() {
        assert_eq!(
            parse(r#""a\n\t\"b\"""#).unwrap().as_str(),
            Some("a\n\t\"b\"")
        );
    }
}
