//! Measurement helpers: online summary statistics, sample sets with
//! percentiles, and time-weighted values (the basis of energy metering).

use crate::time::{SimDuration, SimTime};

/// Streaming mean/variance via Welford's algorithm.
///
/// # Examples
///
/// ```
/// use microfaas_sim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 6.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    /// Same as [`OnlineStats::new`]. (A derived `Default` would
    /// zero-initialize `min`/`max`, poisoning the first comparison.)
    fn default() -> Self {
        OnlineStats::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "cannot record non-finite value {value}");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std dev ÷ mean), the scale-free
    /// burstiness measure: exponential inter-arrival gaps give CV ≈ 1,
    /// a fixed tick gives 0, and bursty (MMPP) traffic gives CV > 1.
    /// `NaN` when the mean is zero or nothing was recorded.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.count == 0 || self.mean == 0.0 {
            f64::NAN
        } else {
            self.std_dev() / self.mean
        }
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A sample collection that retains observations for exact percentiles.
///
/// # Examples
///
/// ```
/// use microfaas_sim::Samples;
///
/// let mut s = Samples::new();
/// s.extend((1..=100).map(f64::from));
/// assert_eq!(s.percentile(50.0), Some(50.0));
/// assert_eq!(s.percentile(99.0), Some(99.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Records one observation.
    ///
    /// The sort cache used by [`Samples::percentile`] survives
    /// monotone appends: recording a value no smaller than the current
    /// maximum of an already-sorted set keeps the set sorted, so
    /// percentile queries interleaved with in-order inserts never
    /// re-sort.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "cannot record non-finite value {value}");
        if self.sorted {
            if let Some(&last) = self.values.last() {
                if value < last {
                    self.sorted = false;
                }
            }
        }
        self.values.push(value);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// The `p`-th percentile (nearest-rank), `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.values.len() as f64).ceil() as usize;
        Some(self.values[rank.saturating_sub(1)])
    }

    /// Immutable view of the recorded values (unspecified order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Extend<f64> for Samples {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        s.extend(iter);
        s
    }
}

/// A streaming quantile estimator with bounded relative error and O(1)
/// memory — the log-bucketed histogram behind the simulator's
/// streaming results path (the DDSketch idea).
///
/// Values map to geometric buckets `γ^i ≤ v < γ^(i+1)` where
/// `γ = (1+ε)/(1−ε)`; a quantile query walks the cumulative counts and
/// returns the matched bucket's midpoint, which is within `ε` relative
/// error of the exact nearest-rank answer. A day-long run's latencies
/// (µs to hours, nine decades) fit in ~2100 buckets at ε = 1%, so
/// memory stays constant no matter how many observations stream
/// through — this is what lets a 10M-job open-loop run report p95
/// without materializing a per-job vector (see `docs/SCALING.md`).
///
/// Recording and querying are fully deterministic: same observations,
/// same answers, on every platform.
///
/// # Examples
///
/// ```
/// use microfaas_sim::QuantileSketch;
///
/// let mut sketch = QuantileSketch::with_relative_error(0.01);
/// for v in 1..=1000 {
///     sketch.record(f64::from(v));
/// }
/// let p95 = sketch.quantile(95.0).expect("non-empty");
/// assert!((p95 / 950.0 - 1.0).abs() <= 0.01, "±1% of exact: {p95}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Bucket value ratio `(1+ε)/(1−ε)`: the spread a bucket's true
    /// value range may cover while midpoint reporting stays within ε.
    gamma: f64,
    /// Buckets per octave: a value's index is `floor(s(v) · mult)`
    /// where `s` approximates `log2` (see [`Self::index_of`]). On the
    /// fast path `mult` is inflated so the approximation error still
    /// keeps every bucket's value spread within `gamma`.
    mult: f64,
    /// Lower bound of bucket `i` is `2^(i / mult) · low_bias`
    /// (`2^−δ`, the approximation slack; 1 on the exact path).
    low_bias: f64,
    /// Whether the cubic bit-twiddled `log2` is in use (true unless
    /// `epsilon` is so small that its error budget would swamp γ).
    fast: bool,
    /// Geometric bucket counts for indices `offset + i`. The vector is
    /// kept exact-fit to the observed index range (first and last
    /// slots are always non-zero), so two sketches over the same
    /// observations compare equal regardless of insertion or merge
    /// order, and a quantile walk is a linear scan in value order with
    /// no sort.
    offset: i32,
    counts: Vec<u64>,
    /// Exact zeros (no logarithm to take).
    zeros: u64,
    total: u64,
}

/// Cubic minimax fit of `log2(1+f)` on `[0, 1]` with the endpoints
/// pinned (`q(0) = 0`, `q(1) = 1`, so the mantissa spline glues
/// continuously and monotonically across octaves):
/// `q(f) = f + f(f−1)(A + Bf)`, max absolute error < [`CUBIC_LOG2_ERR`]
/// (asserted over a dense grid in the tests).
const CUBIC_LOG2_A: f64 = -0.422_862_587;
const CUBIC_LOG2_B: f64 = 0.159_212_608_3;
/// Upper bound on the cubic's `log2` error, with margin.
const CUBIC_LOG2_ERR: f64 = 0.0009;

impl QuantileSketch {
    /// Creates a sketch whose quantile answers are within `epsilon`
    /// relative error of exact (`0 < epsilon < 1`; 0.01 is the usual
    /// choice).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `(0, 1)`.
    pub fn with_relative_error(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "relative error must be in (0, 1), got {epsilon}"
        );
        let gamma = (1.0 + epsilon) / (1.0 - epsilon);
        let log2_gamma = gamma.ln() / std::f64::consts::LN_2;
        // The approximate log2 widens each bucket's true value range
        // by 2^(2δ); shrinking the target octave fraction by 2δ keeps
        // the range within γ. Fall back to the exact logarithm when ε
        // is so tight the compensation would dominate.
        let fast = log2_gamma > 4.0 * CUBIC_LOG2_ERR;
        let delta = if fast { CUBIC_LOG2_ERR } else { 0.0 };
        QuantileSketch {
            gamma,
            mult: 1.0 / (log2_gamma - 2.0 * delta),
            low_bias: (-delta).exp2(),
            fast,
            offset: 0,
            counts: Vec::new(),
            zeros: 0,
            total: 0,
        }
    }

    /// The bucket index of a positive finite value:
    /// `floor(s(value) · mult)` with `s ≈ log2`. On the fast path `s`
    /// splits the float into exponent and mantissa and runs the cubic
    /// spline on the mantissa — no libm call per observation
    /// (subnormals, which the exponent split cannot decode, take
    /// `log2` directly; `s` stays within δ of `log2` either way).
    #[inline]
    fn index_of(&self, value: f64) -> i32 {
        const EXP_MASK: u64 = 0x7FF0_0000_0000_0000;
        const MANT_MASK: u64 = 0x000F_FFFF_FFFF_FFFF;
        const ONE_BITS: u64 = 0x3FF0_0000_0000_0000;
        let bits = value.to_bits();
        let s = if self.fast && (bits & EXP_MASK) != 0 {
            let e = ((bits >> 52) as i32 - 1023) as f64;
            let f = f64::from_bits((bits & MANT_MASK) | ONE_BITS) - 1.0;
            e + f + f * (f - 1.0) * (CUBIC_LOG2_A + CUBIC_LOG2_B * f)
        } else {
            value.log2()
        };
        // floor() without the libm call the x86-64 baseline would
        // emit: shift into positive range (exact — the bias is an
        // integer power of two), truncate, shift back. The 2^-32
        // quantization this adds near bucket edges is orders of
        // magnitude inside the spline's compensated error budget.
        const FLOOR_BIAS: i64 = 1 << 20;
        ((s * self.mult + FLOOR_BIAS as f64) as i64 - FLOOR_BIAS) as i32
    }

    /// The bucket slot for `index`, growing the exact-fit range as
    /// needed. Growth always lands a non-zero count in the new extreme
    /// slot, so the first/last-non-zero invariant holds.
    fn bucket_mut(&mut self, index: i32) -> &mut u64 {
        if self.counts.is_empty() {
            self.offset = index;
            self.counts.push(0);
        } else if index < self.offset {
            let pad = (self.offset - index) as usize;
            self.counts.splice(0..0, std::iter::repeat_n(0, pad));
            self.offset = index;
        } else if index - self.offset >= self.counts.len() as i32 {
            self.counts.resize((index - self.offset) as usize + 1, 0);
        }
        &mut self.counts[(index - self.offset) as usize]
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn record(&mut self, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "sketch values must be finite and non-negative, got {value}"
        );
        self.total += 1;
        if value == 0.0 {
            self.zeros += 1;
            return;
        }
        let index = self.index_of(value);
        *self.bucket_mut(index) += 1;
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `p`-th percentile (nearest-rank over buckets), within the
    /// configured relative error of the exact answer. `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        if rank <= self.zeros {
            return Some(0.0);
        }
        let mut seen = self.zeros;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if count > 0 && seen >= rank {
                // The bucket's true value range spans at most a γ
                // ratio, so the arithmetic midpoint is within ε of any
                // value that hashed into it.
                let low = ((self.offset + i as i32) as f64 / self.mult).exp2() * self.low_bias;
                return Some(low * (1.0 + self.gamma) / 2.0);
            }
        }
        unreachable!("cumulative bucket counts must reach the total");
    }

    /// Merges another sketch into this one.
    ///
    /// # Panics
    ///
    /// Panics if the sketches were built with different `epsilon`.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.gamma == other.gamma,
            "cannot merge sketches with different relative errors"
        );
        // Skipping empty slots keeps the exact-fit invariant: the
        // merged extent is the union of observed extents, exactly what
        // sequential recording would have produced.
        for (i, &count) in other.counts.iter().enumerate() {
            if count > 0 {
                *self.bucket_mut(other.offset + i as i32) += count;
            }
        }
        self.zeros += other.zeros;
        self.total += other.total;
    }
}

/// A piecewise-constant value tracked over simulated time, with exact
/// integration — used to turn a power trace (watts) into energy (joules).
///
/// # Examples
///
/// ```
/// use microfaas_sim::{SimTime, TimeWeighted};
///
/// let mut power = TimeWeighted::new(SimTime::ZERO, 0.0);
/// power.set(SimTime::from_secs(1), 10.0); // 10 W from t=1s
/// power.set(SimTime::from_secs(3), 0.0);  // off at t=3s
/// assert_eq!(power.integral(SimTime::from_secs(3)), 20.0); // 10 W x 2 s
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeighted {
    last_time: SimTime,
    value: f64,
    integral: f64,
    weighted_duration: SimDuration,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `start` with the given initial value.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is not finite.
    pub fn new(start: SimTime, initial: f64) -> Self {
        assert!(initial.is_finite(), "initial value must be finite");
        TimeWeighted {
            last_time: start,
            value: initial,
            integral: 0.0,
            weighted_duration: SimDuration::ZERO,
            start,
        }
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Updates the value at instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous update or `value` is not finite.
    pub fn set(&mut self, at: SimTime, value: f64) {
        assert!(value.is_finite(), "value must be finite, got {value}");
        self.accumulate(at);
        self.value = value;
    }

    /// Adds `delta` to the current value at instant `at`.
    pub fn add(&mut self, at: SimTime, delta: f64) {
        let next = self.value + delta;
        self.set(at, next);
    }

    fn accumulate(&mut self, at: SimTime) {
        let dt = at.duration_since(self.last_time);
        self.integral += self.value * dt.as_secs_f64();
        self.weighted_duration += dt;
        self.last_time = at;
    }

    /// The integral of the value from the start instant to `until`
    /// (value × seconds).
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes the last update.
    pub fn integral(&self, until: SimTime) -> f64 {
        let dt = until.duration_since(self.last_time);
        self.integral + self.value * dt.as_secs_f64()
    }

    /// Time-weighted average of the value from start to `until`.
    /// Returns the current value if no time has elapsed.
    pub fn time_average(&self, until: SimTime) -> f64 {
        let total = until.duration_since(self.start);
        if total.is_zero() {
            self.value
        } else {
            self.integral(until) / total.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_accumulator_tracks_min_and_max_like_new() {
        let mut via_default = OnlineStats::default();
        via_default.record(140.0);
        via_default.record(158.0);
        assert_eq!(via_default.min(), Some(140.0));
        assert_eq!(via_default.max(), Some(158.0));

        let mut negative = OnlineStats::default();
        negative.record(-3.0);
        assert_eq!(negative.max(), Some(-3.0));
    }

    #[test]
    fn coefficient_of_variation_separates_fixed_from_bursty() {
        let mut fixed = OnlineStats::new();
        for _ in 0..100 {
            fixed.record(2.0);
        }
        assert_eq!(fixed.coefficient_of_variation(), 0.0);

        let mut bursty = OnlineStats::new();
        for v in [0.1, 0.1, 0.1, 0.1, 0.1, 9.5] {
            bursty.record(v);
        }
        assert!(bursty.coefficient_of_variation() > 1.5);

        assert!(OnlineStats::new().coefficient_of_variation().is_nan());
    }

    #[test]
    fn online_stats_mean_and_variance() {
        let mut s = OnlineStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut combined = OnlineStats::new();
        for &v in &all {
            combined.record(v);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &v in &all[..37] {
            left.record(v);
        }
        for &v in &all[37..] {
            right.record(v);
        }
        left.merge(&right);
        assert!((left.mean() - combined.mean()).abs() < 1e-9);
        assert!((left.variance() - combined.variance()).abs() < 1e-9);
        assert_eq!(left.count(), combined.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.record(3.0);
        let before = s.clone();
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s: Samples = (1..=10).map(f64::from).collect();
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(10.0), Some(1.0));
        assert_eq!(s.percentile(50.0), Some(5.0));
        assert_eq!(s.percentile(100.0), Some(10.0));
    }

    #[test]
    fn percentile_of_empty_is_none() {
        let mut s = Samples::new();
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn percentile_sort_cache_survives_monotone_appends() {
        // Out-of-order inserts dirty the cache; the first percentile
        // query sorts once.
        let mut s = Samples::new();
        s.record(3.0);
        s.record(1.0);
        assert!(!s.sorted);
        assert_eq!(s.percentile(50.0), Some(1.0));
        assert!(s.sorted);

        // In-order appends (>= current max) must not invalidate it...
        s.record(3.0);
        s.record(7.0);
        assert!(s.sorted, "monotone append re-dirtied the sort cache");
        assert_eq!(s.percentile(100.0), Some(7.0));

        // ...while an out-of-order append must, and the next query
        // must still be correct.
        s.record(2.0);
        assert!(!s.sorted);
        assert_eq!(s.percentile(0.0), Some(1.0));
        // Sorted view is now [1, 2, 3, 3, 7]; nearest-rank p50 is the
        // 3rd element.
        assert_eq!(s.percentile(50.0), Some(3.0));
        let sorted_view = s.values();
        assert!(sorted_view.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn time_weighted_integral_piecewise() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 5.0);
        tw.set(SimTime::from_secs(2), 10.0);
        tw.set(SimTime::from_secs(4), 0.0);
        // 5 W x 2 s + 10 W x 2 s + 0 W x 6 s = 30 J
        assert_eq!(tw.integral(SimTime::from_secs(10)), 30.0);
        assert_eq!(tw.time_average(SimTime::from_secs(10)), 3.0);
    }

    #[test]
    fn time_weighted_add_tracks_deltas() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.add(SimTime::from_secs(1), 2.0);
        tw.add(SimTime::from_secs(2), 2.0);
        tw.add(SimTime::from_secs(3), -4.0);
        assert_eq!(tw.value(), 0.0);
        // 0x1 + 2x1 + 4x1 = 6
        assert_eq!(tw.integral(SimTime::from_secs(3)), 6.0);
    }

    #[test]
    fn time_average_at_start_is_current_value() {
        let tw = TimeWeighted::new(SimTime::from_secs(5), 7.5);
        assert_eq!(tw.time_average(SimTime::from_secs(5)), 7.5);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn recording_nan_panics() {
        OnlineStats::new().record(f64::NAN);
    }

    #[test]
    fn sketch_tracks_exact_percentiles_within_relative_error() {
        let mut sketch = QuantileSketch::with_relative_error(0.01);
        let mut exact = Samples::new();
        // A spread resembling latencies: three decades, skewed tail.
        for i in 1..=10_000u32 {
            let v = f64::from(i).sqrt() * 0.37 + f64::from(i % 97) * 0.01;
            sketch.record(v);
            exact.record(v);
        }
        assert_eq!(sketch.count(), 10_000);
        for p in [10.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
            let approx = sketch.quantile(p).expect("non-empty");
            let truth = exact.percentile(p).expect("non-empty");
            assert!(
                (approx / truth - 1.0).abs() <= 0.011,
                "p{p}: sketch {approx} vs exact {truth}"
            );
        }
    }

    #[test]
    fn sketch_handles_zeros_and_empty() {
        let mut sketch = QuantileSketch::with_relative_error(0.05);
        assert_eq!(sketch.quantile(50.0), None);
        sketch.record(0.0);
        sketch.record(0.0);
        sketch.record(8.0);
        assert_eq!(sketch.quantile(50.0), Some(0.0));
        let p100 = sketch.quantile(100.0).expect("non-empty");
        assert!((p100 / 8.0 - 1.0).abs() <= 0.05);
    }

    #[test]
    fn sketch_merge_matches_sequential() {
        let values: Vec<f64> = (1..500).map(|i| f64::from(i) * 0.013).collect();
        let mut combined = QuantileSketch::with_relative_error(0.01);
        for &v in &values {
            combined.record(v);
        }
        let mut left = QuantileSketch::with_relative_error(0.01);
        let mut right = QuantileSketch::with_relative_error(0.01);
        for &v in &values[..200] {
            left.record(v);
        }
        for &v in &values[200..] {
            right.record(v);
        }
        left.merge(&right);
        assert_eq!(left, combined, "merge is exact on bucket counts");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn sketch_rejects_negative_values() {
        QuantileSketch::with_relative_error(0.01).record(-1.0);
    }

    #[test]
    fn cubic_log2_spline_error_is_within_documented_bound() {
        // The fast bucket mapping leans on |q(f) − log2(1+f)| ≤ δ; the
        // multiplier compensation is sized from this constant, so the
        // ε guarantee is only as good as the bound.
        let n = 500_000;
        let mut worst = 0.0f64;
        for i in 0..=n {
            let f = i as f64 / n as f64;
            let q = f + f * (f - 1.0) * (CUBIC_LOG2_A + CUBIC_LOG2_B * f);
            worst = worst.max((q - (1.0 + f).log2()).abs());
        }
        assert!(
            worst < CUBIC_LOG2_ERR,
            "cubic log2 spline error {worst} exceeds documented bound {CUBIC_LOG2_ERR}"
        );
    }

    #[test]
    fn sketch_accuracy_holds_on_the_exact_log_fallback() {
        // An ε below the spline's error budget takes the libm path;
        // the guarantee must be identical.
        let mut sketch = QuantileSketch::with_relative_error(0.0005);
        let mut exact = Samples::new();
        for i in 1..=5_000u32 {
            let v = f64::from(i) * 0.004 + 0.3;
            sketch.record(v);
            exact.record(v);
        }
        for p in [10.0, 50.0, 99.0] {
            let approx = sketch.quantile(p).expect("non-empty");
            let truth = exact.percentile(p).expect("non-empty");
            assert!(
                (approx / truth - 1.0).abs() <= 0.0006,
                "p{p}: sketch {approx} vs exact {truth}"
            );
        }
    }

    mod merge_props {
        use super::*;
        use proptest::prelude::*;

        const EPSILON: f64 = 0.01;

        fn sketch_of(values: &[f64]) -> QuantileSketch {
            let mut s = QuantileSketch::with_relative_error(EPSILON);
            for &v in values {
                s.record(v);
            }
            s
        }

        fn stats_of(values: &[f64]) -> OnlineStats {
            let mut s = OnlineStats::new();
            for &v in values {
                s.record(v);
            }
            s
        }

        /// |a - b| within `tol` relative to the larger magnitude.
        fn close(a: f64, b: f64, tol: f64) -> bool {
            (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-12)
        }

        proptest! {
            #[test]
            fn online_stats_merge_matches_sequential(
                xs in prop::collection::vec(-1.0e6f64..1.0e6, 0..200),
                split in 0usize..=200,
            ) {
                let k = split.min(xs.len());
                let sequential = stats_of(&xs);
                let mut merged = stats_of(&xs[..k]);
                merged.merge(&stats_of(&xs[k..]));
                prop_assert_eq!(merged.count(), sequential.count());
                prop_assert_eq!(merged.min(), sequential.min());
                prop_assert_eq!(merged.max(), sequential.max());
                prop_assert!(close(merged.mean(), sequential.mean(), 1e-9));
                prop_assert!(close(merged.variance(), sequential.variance(), 1e-6));
            }

            #[test]
            fn online_stats_merge_commutes_on_disjoint_streams(
                lows in prop::collection::vec(0.001f64..1.0, 1..100),
                highs in prop::collection::vec(10.0f64..1000.0, 1..100),
            ) {
                let (a, b) = (stats_of(&lows), stats_of(&highs));
                let mut ab = a.clone();
                ab.merge(&b);
                let mut ba = b.clone();
                ba.merge(&a);
                prop_assert_eq!(ab.count(), ba.count());
                prop_assert_eq!(ab.min(), ba.min());
                prop_assert_eq!(ab.max(), ba.max());
                prop_assert!(close(ab.mean(), ba.mean(), 1e-9));
                prop_assert!(close(ab.variance(), ba.variance(), 1e-9));
            }

            #[test]
            fn sketch_merge_matches_sequential(
                xs in prop::collection::vec(0.0f64..1.0e4, 0..300),
                split in 0usize..=300,
            ) {
                let k = split.min(xs.len());
                let sequential = sketch_of(&xs);
                let mut merged = sketch_of(&xs[..k]);
                merged.merge(&sketch_of(&xs[k..]));
                // Bucket counts are integers, so the merge is exact.
                prop_assert_eq!(merged, sequential);
            }

            #[test]
            fn sketch_merge_commutes_on_disjoint_streams(
                lows in prop::collection::vec(0.0001f64..1.0, 1..100),
                highs in prop::collection::vec(100.0f64..10000.0, 1..100),
            ) {
                let (a, b) = (sketch_of(&lows), sketch_of(&highs));
                let mut ab = a.clone();
                ab.merge(&b);
                let mut ba = b;
                ba.merge(&a);
                prop_assert_eq!(ab, ba);
            }

            #[test]
            fn sketch_merge_preserves_relative_error_bound(
                xs in prop::collection::vec(0.0001f64..1.0e4, 1..300),
                split in 0usize..=300,
            ) {
                let k = split.min(xs.len());
                let mut merged = sketch_of(&xs[..k]);
                merged.merge(&sketch_of(&xs[k..]));
                let mut sorted = xs.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for p in [50.0, 95.0, 99.0] {
                    let estimate = merged.quantile(p).expect("non-empty");
                    // The estimate must sit within ε (relative) of the
                    // nearest-rank neighborhood of the exact answer.
                    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
                    let lower = sorted[rank.saturating_sub(2).min(sorted.len() - 1)];
                    let upper = sorted[rank.min(sorted.len() - 1)];
                    prop_assert!(
                        estimate >= lower * (1.0 - 1.5 * EPSILON) - 1e-12
                            && estimate <= upper * (1.0 + 1.5 * EPSILON) + 1e-12,
                        "p{}: estimate {} outside [{}, {}]",
                        p, estimate, lower, upper
                    );
                }
            }
        }
    }
}
