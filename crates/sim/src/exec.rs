//! Parallel deterministic experiment engine.
//!
//! Figure sweeps, seed replicates, and fault Monte-Carlo studies are all
//! embarrassingly parallel: every point is an independent simulation
//! with its own seed-derived RNG stream. This module fans such
//! independent runs across OS threads while keeping the output
//! **bit-identical to the serial path**:
//!
//! * work is self-scheduled — each worker thread repeatedly claims the
//!   next unclaimed index from a shared atomic counter (a degenerate but
//!   effective form of work stealing that load-balances uneven run
//!   times without per-item locks);
//! * results are gathered into their **canonical submission slots**, so
//!   the returned `Vec` is ordered exactly as a `for` loop would have
//!   produced it, regardless of which thread finished when;
//! * with [`Jobs`] resolved to 1 (or a single item) no thread is
//!   spawned at all — the closure runs inline on the caller's stack,
//!   which *is* the serial reference path the parity tests compare
//!   against.
//!
//! Because each closure invocation derives all randomness from its own
//! index/seed (never from shared mutable state), the only way
//! parallelism could change a result is through gather order — and the
//! slotted gather removes that. `docs/PERFORMANCE.md` at the repository
//! root documents the execution model and the determinism guarantee.
//!
//! # Examples
//!
//! ```
//! use microfaas_sim::exec::{par_map_indexed, Jobs};
//!
//! let serial = par_map_indexed(Jobs::serial(), 8, |i| i * i);
//! let parallel = par_map_indexed(Jobs::new(4), 8, |i| i * i);
//! assert_eq!(serial, parallel);
//! assert_eq!(serial, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted by [`Jobs::auto`]: set
/// `MICROFAAS_JOBS=N` to pin every auto-resolved runner to `N` worker
/// threads (the CLI's `--jobs` flag overrides it per invocation).
pub const JOBS_ENV: &str = "MICROFAAS_JOBS";

/// How many runs may execute concurrently. `1` is the serial reference
/// path; anything higher fans independent runs across scoped threads.
///
/// # Examples
///
/// ```
/// use microfaas_sim::exec::Jobs;
///
/// assert_eq!(Jobs::serial().get(), 1);
/// assert_eq!(Jobs::new(4).get(), 4);
/// assert!(Jobs::auto().get() >= 1);
/// assert_eq!("6".parse::<Jobs>().unwrap().get(), 6);
/// assert!("0".parse::<Jobs>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jobs(NonZeroUsize);

impl Jobs {
    /// Exactly one worker: runs inline with no threads — the serial
    /// reference every parallel result must match bit-for-bit.
    pub fn serial() -> Self {
        Jobs(NonZeroUsize::MIN)
    }

    /// Exactly `n` workers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        Jobs(NonZeroUsize::new(n).expect("jobs must be at least 1"))
    }

    /// The sane default: `MICROFAAS_JOBS` when set to a positive
    /// integer, otherwise the host's available parallelism (1 when the
    /// host will not say).
    pub fn auto() -> Self {
        if let Ok(raw) = std::env::var(JOBS_ENV) {
            if let Some(n) = raw.trim().parse::<usize>().ok().and_then(NonZeroUsize::new) {
                return Jobs(n);
            }
        }
        Jobs(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// True for the one-worker serial path.
    pub fn is_serial(self) -> bool {
        self.get() == 1
    }
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs::auto()
    }
}

impl std::str::FromStr for Jobs {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.trim()
            .parse::<usize>()
            .ok()
            .and_then(NonZeroUsize::new)
            .map(Jobs)
            .ok_or_else(|| format!("jobs must be a positive integer, got '{s}'"))
    }
}

impl std::fmt::Display for Jobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runs `f(0..count)` with up to `jobs` concurrent workers and returns
/// the results in index order — bit-identical to
/// `(0..count).map(f).collect()` whenever each `f(i)` depends only on
/// `i` (the contract every simulation sweep in this workspace obeys:
/// per-run RNG streams are derived from the index or a per-run seed,
/// never shared).
///
/// Work is claimed dynamically, so wildly uneven run times (a 1-VM
/// sweep point finishes long before the 20-VM point) still keep every
/// core busy. A panic in any `f(i)` propagates to the caller once the
/// scope joins.
///
/// # Examples
///
/// ```
/// use microfaas_sim::exec::{par_map_indexed, Jobs};
///
/// let squares = par_map_indexed(Jobs::new(8), 5, |i| (i * i) as u64);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn par_map_indexed<U, F>(jobs: Jobs, count: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = jobs.get().min(count);
    if workers <= 1 {
        // The serial reference path: no threads, no locks, no
        // allocation beyond the result vector.
        return (0..count).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<U>>> = Mutex::new((0..count).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Claims batch locally and commits once at the end, so
                // the mutex is taken `workers` times per map, not
                // `count` times.
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    local.push((i, f(i)));
                }
                let mut slots = slots.lock().unwrap_or_else(|e| e.into_inner());
                for (i, value) in local {
                    slots[i] = Some(value);
                }
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

/// [`par_map_indexed`] over a slice: runs `f` on every element with up
/// to `jobs` workers, returning results in the slice's order.
///
/// # Examples
///
/// ```
/// use microfaas_sim::exec::{par_map, Jobs};
///
/// let doubled = par_map(Jobs::new(2), &[10, 20, 30], |&x| x * 2);
/// assert_eq!(doubled, vec![20, 40, 60]);
/// ```
pub fn par_map<T, U, F>(jobs: Jobs, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(jobs, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_on_order() {
        for jobs in [1, 2, 3, 8, 64] {
            let out = par_map_indexed(Jobs::new(jobs), 100, |i| i as u64 * 3);
            assert_eq!(
                out,
                (0..100).map(|i| i * 3).collect::<Vec<u64>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn empty_and_single_item_maps_work() {
        let empty: Vec<u32> = par_map_indexed(Jobs::new(8), 0, |_| unreachable!());
        assert!(empty.is_empty());
        assert_eq!(par_map_indexed(Jobs::new(8), 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn uneven_work_is_load_balanced_and_ordered() {
        // Early indices sleep longest; a static split would finish them
        // last, but the gather must still come back in index order.
        let out = par_map_indexed(Jobs::new(4), 12, |i| {
            std::thread::sleep(std::time::Duration::from_millis((12 - i) as u64));
            i
        });
        assert_eq!(out, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_borrows_items() {
        let labels = ["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens = par_map(Jobs::new(2), &labels, |s| s.len());
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn jobs_parsing_and_bounds() {
        assert!(Jobs::serial().is_serial());
        assert!(!Jobs::new(2).is_serial());
        assert_eq!(Jobs::new(7).to_string(), "7");
        assert!(" 3 ".parse::<Jobs>().is_ok());
        assert!("-1".parse::<Jobs>().is_err());
        assert!("lots".parse::<Jobs>().is_err());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_jobs_panics() {
        Jobs::new(0);
    }

    #[test]
    fn panics_in_workers_propagate() {
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(Jobs::new(4), 8, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
    }
}
